"""Quickstart: the model management engine in ten minutes.

Walks the engine's core loop on the paper's Figure 4 scenario:
match two schemas, interpret the correspondences as constraints,
generate and run the transformation, then answer queries and track
provenance through the mapping.

Run:  python examples/quickstart.py
"""

from repro import ModelManagementEngine
from repro.instances import Instance
from repro.logic import parse_query
from repro.operators.match import MatchConfig
from repro.runtime.provenance import lineage
from repro.workloads import paper


def main() -> None:
    engine = ModelManagementEngine()

    # ------------------------------------------------------------------
    # 1. Two schemas that need to be related (paper, Figure 4).
    # ------------------------------------------------------------------
    source = paper.figure4_source_schema()   # Empl ⋈ Addr
    target = paper.figure4_target_schema()   # Staff
    print("=== Source schema ===")
    print(source.describe())
    print("\n=== Target schema ===")
    print(target.describe())

    # ------------------------------------------------------------------
    # 2. Match: propose top-k correspondence candidates (§3.1.1).
    # ------------------------------------------------------------------
    candidates = engine.match(source, target, MatchConfig(top_k=2))
    print("\n=== Match: top-2 candidates per element ===")
    print(candidates.describe())

    # The data architect reviews candidates and confirms the mapping —
    # here we take the paper's own correspondences.
    confirmed = paper.figure4_correspondences()

    # ------------------------------------------------------------------
    # 3. Interpret correspondences as mapping constraints (§3.1.2).
    # ------------------------------------------------------------------
    snowflake = engine.interpret(confirmed, style="snowflake")
    print("\n=== Snowflake interpretation (Figure 4 constraints) ===")
    for constraint in snowflake.equalities:
        print(" ", constraint.name, ":", constraint.source_expr)

    tgd_mapping = engine.interpret(confirmed, style="tgd")
    print("\n=== Clio-style st-tgd interpretation ===")
    for tgd in tgd_mapping.tgds:
        print(" ", tgd)

    # ------------------------------------------------------------------
    # 4. TransGen + execute: move data (§4).
    # ------------------------------------------------------------------
    source_db = paper.figure4_source_instance()
    staff = engine.exchange(tgd_mapping, source_db)
    print("\n=== Exchanged target data ===")
    print(staff.show("Staff"))

    # ------------------------------------------------------------------
    # 5. Query the target through the mapping (certain answers, §4).
    # ------------------------------------------------------------------
    processor = engine.query_processor(tgd_mapping, source_db)
    answers = processor.answer_cq(
        parse_query("q(n, c) :- Staff(SID=s, Name=n, City=c)")
    )
    print("\n=== Certain answers to q(Name, City) ===")
    for name, city in sorted(answers):
        print(f"  {name} lives in {city}")

    # BirthDate is invented by the mapping (labeled null): a query for
    # it has no certain answers.
    no_answers = processor.answer_cq(
        parse_query("q(b) :- Staff(SID=s, BirthDate=b)")
    )
    print(f"  certain BirthDate answers: {no_answers}  (invented values "
          "are never returned)")

    # ------------------------------------------------------------------
    # 6. Provenance: why is this row in the target? (§5)
    # ------------------------------------------------------------------
    row = staff.rows("Staff")[0]
    explained = lineage(row, "Staff", source_db, tgd_mapping.tgds)
    print(f"\n=== Provenance of {dict((k, v) for k, v in row.items() if k != 'BirthDate')} ===")
    for entry in explained:
        print(" ", entry.describe())

    # ------------------------------------------------------------------
    # 7. Save everything in the metadata repository (Figure 1).
    # ------------------------------------------------------------------
    engine.repository.save_schema(source)
    engine.repository.save_schema(target)
    engine.repository.save_mapping(tgd_mapping, name="empl_to_staff")
    print("\n=== Repository contents ===")
    print("  schemas:", engine.repository.list_schemas())
    print("  mappings:", engine.repository.list_mappings())


if __name__ == "__main__":
    main()
