"""Data-warehouse loading — the paper's ETL scenario (§1.1, §5).

Two operational sources (a sales system and a subscriptions system)
feed one warehouse star schema through engineered mappings.  The
example exercises:

* an ETL pipeline with cleaning, mini-batch staging and deduplication;
* a *materialized* warehouse maintained incrementally as sources
  change, with change notifications (§5 "Notifications");
* a report written against the warehouse through a mediator.

Run:  python examples/data_warehouse_etl.py
"""

from repro import ModelManagementEngine
from repro.algebra import Aggregate, Col, Scan
from repro.instances import Instance, InstanceGenerator
from repro.logic import parse_tgd
from repro.mappings import Mapping
from repro.metamodel import DATE, INT, STRING, SchemaBuilder
from repro.runtime import MaterializedTarget, UpdateSet
from repro.tools import EtlPipeline, QueryMediator
from repro.workloads import paper


def build_schemas():
    sales = (
        SchemaBuilder("SalesDB", metamodel="relational")
        .entity("Sale", key=["sale_id"])
        .attribute("sale_id", INT)
        .attribute("product", STRING)
        .attribute("amount", INT)
        .attribute("region", STRING)
        .build()
    )
    subscriptions = (
        SchemaBuilder("SubsDB", metamodel="relational")
        .entity("Subscription", key=["sub_id"])
        .attribute("sub_id", INT)
        .attribute("plan", STRING)
        .attribute("monthly_fee", INT)
        .attribute("market", STRING)
        .build()
    )
    warehouse = (
        SchemaBuilder("Warehouse", metamodel="relational")
        .entity("Revenue", key=["source_id", "channel"])
        .attribute("source_id", INT)
        .attribute("channel", STRING)
        .attribute("value", INT)
        .attribute("region", STRING)
        .build()
    )
    return sales, subscriptions, warehouse


def main() -> None:
    engine = ModelManagementEngine()
    sales, subscriptions, warehouse = build_schemas()

    map_sales = Mapping(sales, warehouse, [
        parse_tgd(
            "Sale(sale_id=i, product=p, amount=a, region=r) -> "
            "Revenue(source_id=i, channel='sales', value=a, region=r)"
        )
    ], name="sales_to_wh")
    map_subs = Mapping(subscriptions, warehouse, [
        parse_tgd(
            "Subscription(sub_id=i, plan=p, monthly_fee=f, market=m) -> "
            "Revenue(source_id=i, channel='subs', value=f, region=m)"
        )
    ], name="subs_to_wh")

    # ------------------------------------------------------------------
    # 1. Initial load with cleaning + mini-batches.
    # ------------------------------------------------------------------
    sales_db = Instance(sales)
    for i in range(1, 21):
        sales_db.add("Sale", sale_id=i, product=f"P{i % 3}",
                     amount=(i - 3) * 25, region="EU" if i % 2 else "US")

    def non_positive_filter(relation, row):
        return None if row.get("amount", 0) <= 0 else row

    pipeline = EtlPipeline("sales_load").add_step(
        map_sales, cleaner=non_positive_filter, name="extract-clean-load"
    )
    loaded, stats = pipeline.run(sales_db, batch_size=8)
    print("=== ETL run statistics ===")
    for stat in stats:
        print(" ", stat)
    print(f"\nwarehouse rows after initial load: "
          f"{loaded.cardinality('Revenue')}")

    # ------------------------------------------------------------------
    # 2. A live materialized warehouse with notifications.
    # ------------------------------------------------------------------
    materialized = MaterializedTarget(map_sales, sales_db)
    notifications = []
    materialized.subscribe(
        lambda delta: notifications.append(
            f"warehouse +{delta.size()} rows "
            f"({'recomputed' if delta.recomputed else 'incremental'})"
        )
    )
    print("\n=== Source changes stream in ===")
    for i in range(21, 26):
        materialized.on_source_change(
            UpdateSet().insert("Sale", sale_id=i, product="P9",
                               amount=100 + i, region="APAC")
        )
    for note in notifications:
        print(" ", note)
    print("  maintenance stats:", materialized.maintenance_stats)

    # ------------------------------------------------------------------
    # 3. Mediate both sources under the warehouse schema and report.
    # ------------------------------------------------------------------
    subs_db = Instance(subscriptions)
    for i in range(1, 6):
        subs_db.add("Subscription", sub_id=i, plan="pro",
                    monthly_fee=50 * i, market="EU")

    mediator = QueryMediator(warehouse)
    mediator.add_source("sales", map_sales, materialized.source)
    mediator.add_source("subs", map_subs, subs_db)

    report_query = Aggregate(
        Scan("Revenue"),
        group_by=["region", "channel"],
        aggregations=[("total", "sum", Col("value")),
                      ("n", "count", None)],
    )
    print("\n=== Revenue by region and channel (mediated) ===")
    rows = mediator.answer(report_query)
    for row in sorted(rows, key=lambda r: (r["region"], r["channel"])):
        print(f"  {row['region']:5s} {row['channel']:6s} "
              f"total={row['total']:>6} ({row['n']} rows)")


if __name__ == "__main__":
    main()
