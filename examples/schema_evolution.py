"""Schema evolution — the paper's Figures 5 & 6 and Section 6, end to
end.

The Students view V is defined over schema S (Names, Addresses).  S
evolves into S′: Addresses is split into Local (US) and Foreign.  The
engine copes exactly as the paper prescribes:

1. express the change as mapS-S′ and *migrate* the database;
2. *compose* mapV-S ∘ mapS-S′ to re-target the view (Figure 6);
3. when S′ gains genuinely new information, *Diff* finds it, and
   *Merge* folds it into the view (Sections 6.2–6.3);
4. when the migration was a mistake, compute a *(quasi-)inverse* and
   roll back (Section 6.4).

Run:  python examples/schema_evolution.py
"""

from repro import ModelManagementEngine
from repro.algebra import evaluate
from repro.core.scripts import evolve_view_script, migrate_script
from repro.instances import Instance
from repro.logic import parse_tgd
from repro.mappings import Mapping
from repro.metamodel import Attribute, STRING
from repro.workloads import paper


def main() -> None:
    engine = ModelManagementEngine()

    map_v_s = paper.figure6_map_v_s()
    map_s_sprime = paper.figure6_map_s_sprime()
    database = paper.figure6_s_instance()

    print("=== Before: schema S and the Students view ===")
    print(database.show())

    # ------------------------------------------------------------------
    # Step 1+2: migrate and recompose (Figure 5's script).
    # ------------------------------------------------------------------
    result = migrate_script(map_v_s, map_s_sprime, database)
    print("\n=== Script log ===")
    print(result.describe())

    migrated = result.artifacts["database"]
    print("\n=== Migrated database (S′) ===")
    print(migrated.show())

    composed = result.artifacts["mapping"]
    print("\n=== Composed view mapping mapV-S′ (Figure 6's result) ===")
    constraint = composed.equalities[0]
    print("  Students =", repr(constraint.target_expr))

    # The composed view evaluates over S′ exactly as the paper states:
    rows = evaluate(constraint.target_expr, migrated)
    print("\n=== Students via the composed mapping ===")
    for row in sorted(rows, key=lambda r: r["Name"]):
        print(f"  {row['Name']:6s} {row['Address']:14s} {row['Country']}")

    # ------------------------------------------------------------------
    # Step 3: S′ gains a new column; Diff + Merge extend the view.
    # ------------------------------------------------------------------
    print("\n=== S′ evolves again: Foreign gains a Visa column ===")
    s_prime2 = paper.figure6_s_prime_schema()
    s_prime2.entity("Foreign").add_attribute(
        Attribute("Visa", STRING, nullable=True)
    )
    map_to_evolved = Mapping(
        paper.figure6_s_schema(), s_prime2,
        paper.figure6_map_s_sprime().constraints, name="mapS-Sprime2",
    )
    evolution = evolve_view_script(
        paper.figure6_view_schema(), map_v_s, map_to_evolved
    )
    print(evolution.describe())
    merged_schema = evolution.artifacts["merged"].schema
    print("\n=== View schema after merging in the new parts ===")
    print(merged_schema.describe())

    # ------------------------------------------------------------------
    # Interlude: the same evolution, *derived* from a change script.
    # The paper assumes mapS-S′ is written by hand; the engine can also
    # derive it from structured changes.
    # ------------------------------------------------------------------
    from repro.operators import RenameEntity, SplitByValue, evolve

    derived = engine.evolve(paper.figure6_s_schema(), [
        RenameEntity("Names", "NamesP"),
        SplitByValue("Addresses", "Country", "US", "Local", "Foreign"),
    ])
    print("\n=== The same change, as a script ===")
    for constraint in derived.mapping.equalities:
        print(f"  [{constraint.name}]")
    derived_composed = engine.compose(map_v_s, derived.mapping)
    same = evaluate(derived_composed.equalities[0].target_expr, migrated)
    print(f"  composed view over derived mapping returns "
          f"{len(same)} students — matches the hand-written mapping")

    # ------------------------------------------------------------------
    # Step 4: the migration was a mistake — roll it back (§6.4).
    # ------------------------------------------------------------------
    print("\n=== Rolling back with a quasi-inverse ===")
    forward = Mapping(
        paper.figure6_s_schema(), paper.figure6_s_prime_schema(),
        [
            parse_tgd("Names(SID=s, Name=n) -> NamesP(SID=s, Name=n)"),
            parse_tgd("Addresses(SID=s, Address=a, Country='US') -> "
                      "Local(SID=s, Address=a)"),
            parse_tgd("Addresses(SID=s, Address=a, Country=c) -> "
                      "Foreign(SID=s, Address=a, Country=c)"),
        ],
        name="tgd_migration",
    )
    backward = engine.quasi_inverse(forward)
    print("  inverse constraints:")
    for tgd in backward.tgds:
        print("   ", tgd)
    recovered = engine.exchange(backward, migrated)
    print("\n=== Recovered S data ===")
    print(recovered.show("Names"))
    print()
    print(recovered.show("Addresses"))
    print("\n(The rollback is exact here: the forward tgds carry the "
          "constant Country='US', so the reversed tgds restore it. "
          "Had the split *dropped* a value instead, the quasi-inverse "
          "would bring it back as a labeled null — the information-loss "
          "the paper's §6.4 characterizes; see "
          "tests/test_operator_evolution.py for that case.)")


if __name__ == "__main__":
    main()
