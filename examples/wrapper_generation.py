"""Object-to-relational wrapper generation — the paper's Figures 2 & 3.

The scenario of Sections 3.1.2 and 4 (and of ADO.NET): an ER is-a
hierarchy (Person ⊇ Employee, Customer) is mapped onto relational
tables HR, Empl, Client by three equality constraints (Figure 2).
TransGen compiles them into a *query view* — the Figure 3 query that
populates the Persons entity set — and an *update view*, verified to
roundtrip.  The wrapper generator then wraps the whole thing into an
object API with incremental updates and translated errors.

Run:  python examples/wrapper_generation.py
"""

from repro import ModelManagementEngine
from repro.algebra import to_sql
from repro.operators import InheritanceStrategy
from repro.tools import WrapperGenerator
from repro.workloads import paper


def main() -> None:
    engine = ModelManagementEngine()
    mapping = paper.figure2_mapping()

    print("=== Figure 2: the mapping constraints ===")
    for constraint in mapping.equalities:
        print(f"  [{constraint.name}]")
        print(f"    tables : {constraint.source_expr!r}")
        print(f"    objects: {constraint.target_expr!r}")

    # ------------------------------------------------------------------
    # TransGen: derive the Figure 3 query view + the update view.
    # ------------------------------------------------------------------
    views = engine.transgen(mapping)
    relation, query_expr = views.query_view.rules[0]
    print(f"\n=== Generated query view for entity set {relation!r} ===")
    print(to_sql(query_expr)[:2000])

    print("\n=== Roundtrip verification (the views must be lossless) ===")
    views.verify_roundtrip(paper.figure2_er_instance())
    print("  query(update(D)) = D  ✓")

    # ------------------------------------------------------------------
    # The wrapper: an object API over the relational database.
    # ------------------------------------------------------------------
    database = paper.figure2_sql_instance()
    wrapper, dataclass_source = WrapperGenerator().generate_from_mapping(
        mapping, database
    )
    print("\n=== Generated object model ===")
    print(dataclass_source)

    print("=== Reading polymorphically ===")
    for person in wrapper.all("Person"):
        kind = person["$type"]
        print(f"  #{person['Id']} {person['Name']} [{kind}]")

    print("\n=== Incremental update: hire an employee ===")
    wrapper.insert("Employee", Id=10, Name="Frank", Dept="Support")
    print("  HR table  :", [r["Id"] for r in database.rows("HR")])
    print("  Empl table:", [r["Id"] for r in database.rows("Empl")])

    print("\n=== Incremental update: customer #4 leaves ===")
    wrapper.delete("Customer", Id=4)
    print("  Client table:", [r["Id"] for r in database.rows("Client")])

    # ------------------------------------------------------------------
    # Error translation (§5): failures surface in object vocabulary.
    # ------------------------------------------------------------------
    translator = engine.error_translator(mapping)
    low_level = KeyError("duplicate key on table Client, column Score")
    translated = translator.translate(low_level, operation="save Customer")
    print("\n=== Error translation ===")
    print("  raw       :", low_level)
    print("  translated:", translated)

    # ------------------------------------------------------------------
    # §5's integrity example: which target constraints must the
    # runtime enforce, per inheritance strategy?
    # ------------------------------------------------------------------
    print("\n=== Constraints the source cannot express (per strategy) ===")
    for strategy in InheritanceStrategy:
        derived = engine.modelgen(paper.figure2_er_schema(), "relational",
                                  strategy)
        flagged = engine.runtime_enforced_constraints(derived.mapping)
        verdict = (
            "; ".join(f.constraint.describe() for f in flagged)
            if flagged else "none — all enforceable relationally"
        )
        print(f"  {strategy.value:28s}: {verdict}")


if __name__ == "__main__":
    main()
