"""Message mapping and peer-to-peer chains — the paper's EAI scenario
(§1.1 "message mapping tools", §5 "peer-to-peer").

A purchase-order message format is translated into an invoice format
(nested documents flattened, exchanged, re-nested), then the invoice
peer forwards to an archival peer — and the runtime compares executing
the chain hop-by-hop against collapsing it by composition.

Run:  python examples/message_translation.py
"""

import json

from repro import ModelManagementEngine
from repro.instances import Instance
from repro.logic import parse_tgd
from repro.mappings import Mapping
from repro.metamodel import INT, STRING, SchemaBuilder
from repro.metamodels import emit_xsd
from repro.tools import MessageMapper


def build_message_schemas():
    purchase = (
        SchemaBuilder("PO", metamodel="nested")
        .entity("PurchaseOrder", key=["po"]).attribute("po", INT)
        .attribute("buyer", STRING)
        .entity("Item", key=["sku"]).attribute("sku", STRING)
        .attribute("qty", INT)
        .containment("PurchaseOrder", "Item", name="items")
        .build()
    )
    invoice = (
        SchemaBuilder("Invoices", metamodel="nested")
        .entity("Invoice", key=["inv"]).attribute("inv", INT)
        .attribute("customer", STRING)
        .entity("Line", key=["code"]).attribute("code", STRING)
        .attribute("count", INT)
        .containment("Invoice", "Line", name="lines")
        .build()
    )
    # Flattened forms carry the containment link columns.
    from repro.metamodel import Attribute

    purchase.entity("Item").add_attribute(Attribute("PurchaseOrder_po", INT))
    invoice.entity("Line").add_attribute(Attribute("Invoice_inv", INT))
    return purchase, invoice


def main() -> None:
    engine = ModelManagementEngine()
    purchase, invoice = build_message_schemas()

    print("=== Source message format (as XSD) ===")
    print(emit_xsd(purchase))

    mapping = Mapping(purchase, invoice, [
        parse_tgd("PurchaseOrder(po=p, buyer=b) -> Invoice(inv=p, customer=b)"),
        parse_tgd(
            "Item(sku=s, qty=q, PurchaseOrder_po=p) -> "
            "Line(code=s, count=q, Invoice_inv=p)"
        ),
    ], name="po_to_invoice")

    mapper = MessageMapper(purchase, "PurchaseOrder", invoice, "Invoice",
                           mapping)
    messages = [
        {"po": 1001, "buyer": "ACME Corp", "items": [
            {"sku": "WIDGET-9", "qty": 12},
            {"sku": "SPROCKET-3", "qty": 4},
        ]},
        {"po": 1002, "buyer": "Globex", "items": [
            {"sku": "WIDGET-9", "qty": 1},
        ]},
    ]
    print("=== Incoming purchase orders ===")
    print(json.dumps(messages, indent=2))
    translated = mapper.translate(messages)
    print("\n=== Translated invoices ===")
    print(json.dumps(translated, indent=2, sort_keys=True))

    # ------------------------------------------------------------------
    # Peer-to-peer: invoices flow onward to an archive peer; the
    # engine both propagates hop-by-hop and collapses the chain.
    # ------------------------------------------------------------------
    archive = (
        SchemaBuilder("Archive", metamodel="relational")
        .entity("Doc", key=["doc_id"]).attribute("doc_id", INT)
        .attribute("party", STRING)
        .build()
    )
    onward = Mapping(invoice, archive, [
        parse_tgd("Invoice(inv=i, customer=c) -> Doc(doc_id=i, party=c)")
    ], name="invoice_to_archive")

    network = engine.peer_network()
    po_data = Instance(purchase)
    from repro.metamodels import flatten_documents

    network.add_peer("orders", purchase,
                     flatten_documents(purchase, "PurchaseOrder", messages))
    network.add_peer("billing", invoice)
    network.add_peer("archive", archive)
    network.add_mapping("orders", "billing", mapping)
    network.add_mapping("billing", "archive", onward)

    print("=== Peer-to-peer propagation (orders → billing → archive) ===")
    hop_by_hop = network.propagate("orders", "archive")
    print(hop_by_hop.show("Doc"))

    collapsed_mapping = network.collapse_chain("orders", "archive")
    print("\n=== Collapsed chain (one composed mapping) ===")
    for tgd in collapsed_mapping.tgds:
        print(" ", tgd)
    collapsed = network.propagate_collapsed("orders", "archive")
    match = {tuple(sorted(r.items())) for r in collapsed.rows("Doc")} == {
        tuple(sorted(r.items())) for r in hop_by_hop.rows("Doc")
    }
    print(f"\ncollapsed result equals hop-by-hop: {match}")


if __name__ == "__main__":
    main()
