"""A data portal over mapped sources — §1.1's "portal design tools"
scenario, combining three §5 runtime services: keyword indexing,
access control, and business-logic pushdown.

A support portal exposes the Figure 2 object model (Person / Employee /
Customer) over the relational HR database.  The portal needs:

* keyword search over the objects, served by an index built on the
  *source* tables (the paper's §5 "Indexing" recommendation);
* per-user access control enforced on the source relations a portal
  query actually touches, with row-level filters pushed into the views;
* a "VIP signup" business rule attached to the object model, pushed
  down to fire on source-level changes.

Run:  python examples/portal_search.py
"""

from repro import ModelManagementEngine
from repro.algebra import Col, IsOf, Select, EntityScan, ge, project_names
from repro.errors import AccessDenied
from repro.runtime import TriggerSet, UpdateSet, pushdown
from repro.runtime.access_control import Permission
from repro.workloads import paper


def main() -> None:
    engine = ModelManagementEngine()
    mapping = paper.figure2_mapping()
    database = paper.figure2_sql_instance()

    # ------------------------------------------------------------------
    # 1. Keyword search: index the tables, answer in object terms.
    # ------------------------------------------------------------------
    index = engine.keyword_index(mapping, database)
    print("=== Keyword search (index over source tables, hits in "
          "object context) ===")
    for query in ("Engineering", "Elm", "eve"):
        print(f"\n  ?{query}")
        for hit in index.search(query):
            print("   ", hit.describe())

    # ------------------------------------------------------------------
    # 2. Access control: footprint checking + row-filter pushdown.
    # ------------------------------------------------------------------
    print("\n=== Access control ===")
    controller = engine.access_controller(mapping)
    # intern may see HR and Empl, but only high-score customers.
    controller.grant("intern", "HR")
    controller.grant("intern", "Empl")
    employee_query = project_names(
        Select(EntityScan("Person"), IsOf("Employee")), ["Id", "Name"]
    )
    customer_query = project_names(
        Select(EntityScan("Person"), IsOf("Customer")), ["Id", "Name"]
    )
    controller.check("intern", employee_query)
    print("  intern → employee listing: allowed "
          f"(touches {sorted(controller.source_footprint(employee_query))})")
    try:
        controller.check("intern", customer_query)
    except AccessDenied as denial:
        print(f"  intern → customer listing: DENIED ({denial})")

    controller.grant("analyst", "HR")
    controller.grant("analyst", "Empl")
    controller.grant("analyst", "Client", row_filter=ge(Col("Score"), 700))
    restricted = controller.restricted_query("analyst", customer_query)
    from repro.algebra import evaluate

    rows = evaluate(restricted, database)
    print(f"  analyst → customer listing with row filter Score≥700: "
          f"{[r['Name'] for r in rows]}")

    # ------------------------------------------------------------------
    # 3. Business logic: a VIP rule on objects, executed at the source.
    # ------------------------------------------------------------------
    print("\n=== Business-logic pushdown ===")
    vip_log = []
    portal_rules = TriggerSet("PersonsER")
    portal_rules.on_insert(
        "Customer",
        lambda rel, row: vip_log.append(row["Id"]),
        condition=ge(Col("CreditScore"), 700),
        name="vip_welcome",
    )
    source_rules = pushdown(portal_rules, mapping)
    translated = source_rules.triggers[0]
    print(f"  object rule : ON INSERT Customer WHEN CreditScore ≥ 700")
    print(f"  pushed down : ON INSERT {translated.entity} WHEN "
          f"{translated.condition!r}")

    # A nightly batch INSERTs directly into the Client table; the
    # pushed-down rule still fires.
    batch = UpdateSet()
    batch.insert("Client", Id=41, Name="Nadia", Score=760,
                 Addr="1 Hill Rd")
    batch.insert("Client", Id=42, Name="Omar", Score=610, Addr="2 Dale Ct")
    firings = source_rules.fire(batch)
    print(f"  batch of 2 source-level inserts → {firings} firing(s); "
          f"VIP welcome sent to customer ids {vip_log}")


if __name__ == "__main__":
    main()
