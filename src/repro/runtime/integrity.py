"""Cross-schema integrity checking (paper, Sections 2 and 5).

Two services:

* :func:`check_constraint_propagation` — the runtime check the paper
  asks for in Section 2: "for a given source and target database that
  are related by a given mapping, we might need to check that if the
  source database satisfies the source integrity constraints then the
  target database also satisfies the target integrity constraints";

* :func:`inexpressible_constraints` — the static analysis behind the
  paper's Section 5 example: "the disjointness of two sets of
  instances of two classes in T with a common superclass is not
  expressible as relational integrity constraints on S if … the
  classes are mapped to distinct tables" — i.e. which target
  constraints the source layer cannot enforce, so the client runtime
  must.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.instances.database import Instance
from repro.instances.validation import violations
from repro.mappings.mapping import Mapping
from repro.metamodel.constraints import (
    Constraint,
    Covering,
    Disjointness,
    InclusionDependency,
    KeyConstraint,
    NotNull,
)
from repro.runtime.executor import exchange


@dataclass
class PropagationReport:
    """Outcome of a constraint-propagation check."""

    source_violations: list[str]
    target_violations: list[str]

    @property
    def source_satisfied(self) -> bool:
        return not self.source_violations

    @property
    def propagates(self) -> bool:
        """Vacuously true when the source itself is invalid."""
        return not self.source_satisfied or not self.target_violations


def check_constraint_propagation(
    mapping: Mapping, source_instance: Instance
) -> PropagationReport:
    """Exchange the source through the mapping and validate both sides
    against their declared integrity constraints."""
    source_problems = violations(source_instance, mapping.source)
    target_instance = exchange(mapping, source_instance)
    target_instance.schema = mapping.target
    target_problems = violations(target_instance, mapping.target)
    return PropagationReport(
        source_violations=source_problems,
        target_violations=target_problems,
    )


@dataclass
class InexpressibleConstraint:
    """A target constraint the source schema cannot express."""

    constraint: Constraint
    reason: str

    def describe(self) -> str:
        return f"{self.constraint.describe()}: {self.reason}"


def inexpressible_constraints(mapping: Mapping) -> list[InexpressibleConstraint]:
    """Target constraints that cannot be enforced by source-side
    integrity constraints alone, so the mapping runtime must check
    them (paper, Section 5, "Integrity constraints").

    Detection rules (each is a sufficient condition mirroring the
    paper's discussion, not a complete decision procedure):

    * **Disjointness** of target entities that the constraints map to
      *distinct* source relations: relational integrity constraints are
      intra-table or inclusion-shaped; exclusion ("no key in both
      tables") is not among them — the paper's exact example.
    * **Covering** of a target entity by subtypes stored in separate
      relations: requires a union-shaped inclusion, likewise outside
      the standard repertoire.
    """
    results: list[InexpressibleConstraint] = []
    entity_to_relations = _entity_source_relations(mapping)
    for constraint in mapping.target.constraints:
        if isinstance(constraint, Disjointness):
            for i, first in enumerate(constraint.entities):
                for second in constraint.entities[i + 1:]:
                    if not _disjointness_expressible(mapping, first, second):
                        results.append(
                            InexpressibleConstraint(
                                constraint=constraint,
                                reason=(
                                    f"the fragments distinguishing "
                                    f"{first!r} from {second!r} live in "
                                    "distinct source relations; exclusion "
                                    "across tables is not a relational "
                                    "integrity constraint — runtime must "
                                    "enforce it"
                                ),
                            )
                        )
                        break
                else:
                    continue
                break
        elif isinstance(constraint, Covering):
            parent_relations = entity_to_relations.get(constraint.entity, set())
            child_relations = [
                entity_to_relations.get(e, set()) for e in constraint.covered_by
            ]
            if parent_relations and all(child_relations) and not any(
                parent_relations & c for c in child_relations
            ):
                results.append(
                    InexpressibleConstraint(
                        constraint=constraint,
                        reason=(
                            "covering by subtypes stored in separate "
                            "relations needs a union-shaped inclusion; "
                            "runtime must enforce it"
                        ),
                    )
                )
    return results


def _disjointness_expressible(
    mapping: Mapping, first: str, second: str
) -> bool:
    """Disjointness of two target entities is enforceable relationally
    when some pair of *distinguishing* fragments (a constraint covering
    one entity but not the other) stores both in the **same** source
    relation, separated by constant selections on a common column —
    the TPH discriminator case.  Otherwise (TPT/TPC: distinguishing
    data in distinct tables) it needs cross-table exclusion."""
    from repro.operators.transgen import _table_side_shape

    def distinguishing(entity: str, other: str):
        fragments = []
        for constraint in mapping.equalities:
            types = _selected_types(constraint, mapping)
            if entity in types and other not in types:
                shape = _table_side_shape(constraint.source_expr)
                if shape is not None:
                    fragments.append(shape)
        return fragments

    first_fragments = distinguishing(first, second)
    second_fragments = distinguishing(second, first)
    if not first_fragments or not second_fragments:
        # No distinguishing relational fragment at all: nothing to
        # enforce relationally either way; treat as inexpressible only
        # if both entities appear in constraints at all.
        return not (first_fragments or second_fragments)
    for f_table, f_selection, _ in first_fragments:
        for s_table, s_selection, _ in second_fragments:
            if f_table != s_table:
                continue
            shared_columns = set(f_selection) & set(s_selection)
            if any(
                f_selection[c] != s_selection[c] for c in shared_columns
            ):
                return True  # same table, disjoint discriminator values
    return False


def _entity_source_relations(mapping: Mapping) -> dict[str, set[str]]:
    """Target entity → source relations its data lives in."""
    result: dict[str, set[str]] = {}
    for constraint in mapping.equalities:
        target_relations = constraint.target_expr.relations()
        source_relations = constraint.source_expr.relations()
        # With inheritance, the interesting entity set is the types the
        # constraint's predicate selects, not just the scanned root.
        types = _selected_types(constraint, mapping)
        for entity in types or target_relations:
            result.setdefault(entity, set()).update(source_relations)
    for tgd in mapping.tgds:
        body_relations = tgd.body_relations()
        for atom in tgd.head:
            result.setdefault(atom.relation, set()).update(body_relations)
    return result


def _selected_types(constraint, mapping: Mapping) -> set[str]:
    from repro.operators.transgen import _entity_side_shape

    shape = _entity_side_shape(constraint.target_expr, mapping.target)
    if shape is None:
        return set()
    _, types, _ = shape
    return types


def _pairwise_disjoint(relation_sets: list[set[str]]) -> bool:
    for i, first in enumerate(relation_sets):
        for second in relation_sets[i + 1:]:
            if first & second:
                return False
    return True
