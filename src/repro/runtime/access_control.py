"""Access control over mappings (paper, Section 5).

"Access control constraints on the target might be enforced by a
combination of constraints enforced on the server and those enforced
by the client runtime."  Two services:

* **checking** — a target-side query is authorized only if the
  principal may read every *source* relation it ultimately touches
  (computed by unfolding the query through the mapping);
* **pushdown** — row-level restrictions are compiled into the view
  definitions (selections injected above the protected scans), so the
  restricted view can be handed to a less-trusted layer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.algebra import expressions as E
from repro.algebra.scalars import Predicate
from repro.errors import AccessDenied
from repro.mappings.mapping import Mapping
from repro.operators.compose import unfold_scans
from repro.operators.transgen import TransformationPair, transgen


class Permission(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass
class _Grant:
    principal: str
    relation: str
    permission: Permission
    row_filter: Optional[Predicate] = None


class AccessController:
    """Grants over *source* relations, enforced on *target* queries."""

    def __init__(self, mapping: Mapping):
        self.mapping = mapping
        self._grants: list[_Grant] = []
        self._views: Optional[dict[str, E.RelExpr]] = None

    # ------------------------------------------------------------------
    def grant(
        self,
        principal: str,
        relation: str,
        permission: Permission = Permission.READ,
        row_filter: Optional[Predicate] = None,
    ) -> None:
        self._grants.append(_Grant(principal, relation, permission, row_filter))

    def _allowed(self, principal: str, relation: str,
                 permission: Permission) -> bool:
        return any(
            g.principal == principal
            and g.relation == relation
            and g.permission == permission
            for g in self._grants
        )

    def _view_definitions(self) -> dict[str, E.RelExpr]:
        if self._views is None:
            if self.mapping.equalities:
                transformation = transgen(self.mapping)
                assert isinstance(transformation, TransformationPair)
                self._views = dict(transformation.query_view.rules)
            else:
                self._views = {}
        return self._views

    def source_footprint(self, query: E.RelExpr) -> set[str]:
        """The source relations a target query ultimately reads —
        after optimization, so statically-pruned branches (e.g. the
        Customer branch of an employees-only query) do not inflate the
        required permissions."""
        from repro.algebra.optimizer import optimize
        from repro.runtime.query_processor import _localize_type_predicates

        views = self._view_definitions()
        if views:
            localized = _localize_type_predicates(query, self.mapping.target)
            query = optimize(unfold_scans(localized, views))
        relations = query.relations()
        if not views:
            # tgd mapping: a target relation is reachable from the body
            # relations of every tgd producing it.
            source_relations: set[str] = set()
            for relation in relations:
                for tgd in self.mapping.tgds:
                    if any(a.relation == relation for a in tgd.head):
                        source_relations |= tgd.body_relations()
            return source_relations or relations
        return relations

    # ------------------------------------------------------------------
    def check(self, principal: str, query: E.RelExpr) -> None:
        """Raise :class:`AccessDenied` naming the first source relation
        the principal may not read."""
        for relation in sorted(self.source_footprint(query)):
            if not self._allowed(principal, relation, Permission.READ):
                raise AccessDenied(
                    f"principal {principal!r} may not read source relation "
                    f"{relation!r} (required by the target query)"
                )

    def restricted_query(self, principal: str, query: E.RelExpr) -> E.RelExpr:
        """Unfold the query and push the principal's row filters down
        onto the protected scans; raises if some relation has no grant."""
        self.check(principal, query)
        views = self._view_definitions()
        unfolded = unfold_scans(query, views) if views else query
        filters = {
            g.relation: g.row_filter
            for g in self._grants
            if g.principal == principal
            and g.permission is Permission.READ
            and g.row_filter is not None
        }
        if not filters:
            return unfolded
        replacements = {
            relation: E.Select(E.Scan(relation), predicate)
            for relation, predicate in filters.items()
        }
        return unfold_scans(unfolded, replacements)
