"""Incremental materialized exchange: delta propagation through the
mapping runtime (paper, Section 5).

Section 5 makes update propagation, replica synchronization and
peer-to-peer chains first-class runtime services, but a service that
re-chases the whole source per update batch costs time proportional to
the *instance*, not the *delta*.  :class:`MaterializedExchange` keeps a
tgd mapping's universal solution materialized and maintains it under
:class:`~repro.runtime.updates.UpdateSet` batches:

* **provenance counts** — while the chase runs, a
  :class:`~repro.logic.chase.ChaseRecorder` captures every trigger
  firing: which ``(dependency, frontier key)`` derived which stored
  rows, and which egd trigger united which null classes (plus the full
  substitution log of in-place rewrites);

* **inserts** seed the semi-naive chase with *only* the delta
  relations (``initial_delta``) — the instance is chase-consistent
  except for the appended rows, so only triggers touching them can be
  active, and the persistent ``(relation, attr)`` indexes extend
  incrementally;

* **deletes** run counting/DRed-style: enumerate the triggers that die
  with the deleted rows (pinned-atom enumeration *before* removal),
  decrement the derivation counts of their head rows, over-delete rows
  whose count reaches zero, cascade, then *rederive* survivors — first
  by reinstating a dead derivation from an alternative body witness
  with the same frontier key (which preserves its labeled nulls), then
  by cross-dependency refiring for rows derivable another way — and
  finish with a repair delta chase over everything that moved;

* **egd-merge rollback** — an egd-merged null whose last deriving
  trigger dies must come apart again: the union-find substitution log
  is replayed backwards (newest merge first) over the surviving rows,
  and the repair chase re-merges whatever is still justified.  When a
  *later* tgd firing copied the merged value forward (so restoring the
  null would strand a stale constant in a derived row), maintenance
  falls back to a full re-exchange — the one case counting cannot
  handle locally; see docs/RUNTIME_SERVICES.md.

Everything is instrumented with ``runtime.incremental.*`` spans and
``incremental.{reused_rows,rederived,overdeleted,full_reexchange}``
metrics in the observability registry.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import ExpressivenessError
from repro.instances.database import (
    Instance,
    Row,
    freeze_row,
    hashable_key,
    null_key_label,
)
from repro.instances.labeled_null import LabeledNull, NullFactory
from repro.logic.chase import ChaseRecorder, chase
from repro.logic.dependencies import TGD
from repro.logic.homomorphism import find_homomorphism, iter_homomorphisms
from repro.logic.terms import Const, Var
from repro.mappings.mapping import Mapping
from repro.observability.instrument import instrumented
from repro.observability.state import STATE as _OBS
from repro.operators.transgen import exchange_dependencies
from repro.runtime.updates import UpdateSet, resolve_deletes


class _FallbackNeeded(Exception):
    """Raised internally when counting maintenance cannot proceed and a
    full re-exchange is required (egd rollback would strand a merged
    value inside a later derivation)."""


class _Derivation:
    """One recorded tgd firing: the trigger's frontier bindings and the
    stored rows it derived.

    ``shard`` records which chase shard fired the trigger (``-1`` for
    the sequential engine and coordinator-side events).  The sharded
    chase flushes events in deterministic ``(shard, sequence)`` order,
    so replay — delete cascades, DRed rederivation — sees the same
    provenance regardless of worker interleaving."""

    __slots__ = ("dep_index", "key", "frontier", "rows", "seq", "alive",
                 "suppressed", "shard")

    def __init__(self, dep_index, key, frontier, rows, seq, shard=-1):
        self.dep_index = dep_index
        self.key = key          # frontier key (kept current under merges)
        self.frontier = frontier  # [(Var, value)] in frontier order
        self.rows = rows        # [(relation, stored row)]
        self.seq = seq
        self.alive = True
        self.suppressed = False  # directly deleted: never rederive
        self.shard = shard      # chase shard that fired (-1: sequential)


class _Edge:
    """One applied egd union, keyed by its trigger's body bindings."""

    __slots__ = ("egd_index", "body_key", "left_key", "right_key", "seq",
                 "alive")

    def __init__(self, egd_index, body_key, left_key, right_key, seq):
        self.egd_index = egd_index
        self.body_key = body_key
        self.left_key = left_key
        self.right_key = right_key
        self.seq = seq
        self.alive = True


class _MergeRecord:
    """One applied substitution (null → value) with every rewritten
    ``(relation, row, attr)`` position — the rollback log.

    ``rekeys`` additionally logs the bookkeeping rewrites (which key
    tuple indices / frontier slots of which derivations and edges were
    switched to the merged value), so rollback can restore provenance
    exactly, not just row content."""

    __slots__ = ("null", "positions", "rekeys", "seq", "alive")

    def __init__(self, null, seq):
        self.null = null
        self.positions = []
        self.rekeys = []  # (kind, obj, key_indices, frontier_indices)
        self.seq = seq
        self.alive = True


class _ProvenanceRecorder(ChaseRecorder):
    """Forwards chase hooks into the owning exchange's bookkeeping."""

    def __init__(self, owner: "MaterializedExchange"):
        self.owner = owner

    def on_shard(self, shard_id):
        # The sharded chase announces which shard the following events
        # came from (-1: coordinator); stamped onto derivations so the
        # provenance log stays attributable after the ordered flush.
        self.owner._current_shard = shard_id

    def on_tgd_fire(self, dep_index, tgd, frontier_key, frontier_items,
                    rows):
        self.owner._record_derivation(dep_index, frontier_key,
                                      frontier_items, rows)

    def on_egd_union(self, dep_index, egd, body_key, left, right):
        self.owner._record_edge(dep_index, body_key, left, right)

    def on_substitution(self, positions):
        self.owner._record_substitution(positions)


class MaterializedExchange:
    """A source instance, its chased target, and the provenance needed
    to maintain the target under update batches without re-chasing.

    ``apply`` takes a *source-side* :class:`UpdateSet` and returns the
    *target-side* delta (restricted to the mapping's target relations),
    with the maintained target guaranteed equivalent — up to null
    renaming — to a full re-exchange of the updated source.
    """

    @instrumented("runtime.incremental.materialize",
                  attrs=lambda self, mapping, source, **kw: {
                      "mapping.name": mapping.name,
                      "source.rows": source.total_rows()})
    def __init__(self, mapping: Mapping, source: Instance, *,
                 enforce_target_keys: bool = False,
                 max_steps: int = 100_000,
                 shards: Optional[int] = None):
        if mapping.so_tgd is not None or not mapping.tgds:
            raise ExpressivenessError(
                "incremental materialized exchange needs a tgd mapping "
                "(so-tgds and pure equality mappings are not chased)"
            )
        self.mapping = mapping
        self._dependencies = exchange_dependencies(mapping,
                                                   enforce_target_keys)
        self._max_steps = max_steps
        # Shard count for every chase this exchange runs (build, apply
        # seeds, full re-exchange).  ``None`` defers to the
        # ``REPRO_CHASE_SHARDS`` environment switch; 1 forces the
        # sequential engine.
        self._shards = shards
        self._target_relations = set(mapping.target.entities)
        self._recorder = _ProvenanceRecorder(self)
        self._current_shard = -1
        self.stats = {
            "applies": 0,
            "reused_rows": 0,
            "rederived": 0,
            "overdeleted": 0,
            "merge_rollbacks": 0,
            "full_reexchange": 0,
        }
        # Per-dependency precomputation mirroring the chase's own, so
        # recorded keys and re-enumerated keys always agree.
        self._body_relations = [d.body_relations()
                                for d in self._dependencies]
        self._body_variables = [
            tuple(sorted(d.body_variables(), key=lambda v: v.name))
            for d in self._dependencies
        ]
        self._frontiers = [
            tuple(sorted(d.frontier(), key=lambda v: v.name))
            if isinstance(d, TGD) else ()
            for d in self._dependencies
        ]
        self._frontier_sets = [set(f) for f in self._frontiers]
        # Working instance: source relations ∪ chased target relations.
        self.working = Instance(mapping.source)
        for relation, rows in source.relations.items():
            self.working.relations[relation] = [dict(row) for row in rows]
        existing = source.nulls()
        self._factory = NullFactory(
            max((n.label for n in existing), default=-1) + 1
        )
        self._reset_bookkeeping()
        self._begin_session()
        chase(self.working, self._dependencies, max_steps=self._max_steps,
              null_factory=self._factory, copy=False,
              recorder=self._recorder, shards=self._shards)
        self._begin_session()  # discard the build session

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _reset_bookkeeping(self) -> None:
        self._seq = 0
        # (dep_index, frontier key) → alive derivations (normally one;
        # egd merges can collapse two keys into the same bucket).
        self._derivations: dict[tuple, list[_Derivation]] = {}
        self._deriver: dict[int, _Derivation] = {}   # id(row) → derivation
        self._support: dict[int, int] = {}           # id(row) → count
        self._edges: dict[tuple, list[_Edge]] = {}   # (egd, body key) → edges
        self._merges: list[_MergeRecord] = []
        self._null_index: dict[object, list] = {}    # null key → records
        self._alive: set[int] = {
            id(row)
            for rows in self.working.relations.values()
            for row in rows
        }

    def _begin_session(self) -> None:
        self._session_inserted: dict[int, tuple[str, Row]] = {}
        self._session_deleted: dict[str, list[Row]] = {}
        # id(row) → ({attr: value at session start}, (relation, row))
        self._session_rewrites: dict[int, tuple[dict, tuple[str, Row]]] = {}

    def _record_derivation(self, dep_index, key, frontier_items, rows):
        self._seq += 1
        derivation = _Derivation(dep_index, key, list(frontier_items),
                                 list(rows), self._seq,
                                 shard=self._current_shard)
        self._derivations.setdefault((dep_index, key), []).append(derivation)
        for relation, row in rows:
            rid = id(row)
            self._deriver[rid] = derivation
            self._support[rid] = self._support.get(rid, 0) + 1
            if rid not in self._alive:
                # Guard against duplicate derivation events for a row
                # that already exists (the sharded chase remaps a
                # deduplicated routed row onto its surviving twin):
                # support counting above absorbs the extra derivation,
                # but the row is only *session-inserted* once.
                self._alive.add(rid)
                self._session_inserted[rid] = (relation, row)
        for _, value in frontier_items:
            if isinstance(value, LabeledNull):
                self._null_index.setdefault(
                    hashable_key(value), []
                ).append(("deriv", derivation))

    def _record_edge(self, dep_index, body_key, left, right):
        self._seq += 1
        edge = _Edge(dep_index, body_key, hashable_key(left),
                     hashable_key(right), self._seq)
        self._edges.setdefault((dep_index, body_key), []).append(edge)
        for part in set(body_key) | {edge.left_key, edge.right_key}:
            if null_key_label(part) is not None:
                self._null_index.setdefault(part, []).append(("edge", edge))

    def _record_substitution(self, positions):
        self._seq += 1
        seq = self._seq
        records: dict[LabeledNull, _MergeRecord] = {}
        replacements: dict[LabeledNull, object] = {}
        for relation, row, attr, null, replacement in positions:
            record = records.get(null)
            if record is None:
                record = _MergeRecord(null, seq)
                records[null] = record
                self._merges.append(record)
                replacements[null] = replacement
            record.positions.append((relation, row, attr))
            rewrites = self._session_rewrites.setdefault(
                id(row), ({}, (relation, row))
            )
            rewrites[0].setdefault(attr, null)
        # Recorded frontier keys, frontier values and egd trigger keys
        # mention the substituted nulls: rewrite them so future
        # enumerations (which see the merged values) still match.
        for null, replacement in replacements.items():
            old_key = hashable_key(null)
            new_key = hashable_key(replacement)
            record = records[null]
            for kind, obj in self._null_index.pop(old_key, []):
                if kind == "deriv":
                    rekey = self._rekey_derivation(obj, null, replacement,
                                                   old_key, new_key)
                else:
                    rekey = self._rekey_edge(obj, old_key, new_key)
                if rekey is not None:
                    record.rekeys.append(rekey)

    def _rekey_derivation(self, derivation, null, replacement, old_key,
                          new_key):
        key_indices = [
            i for i, part in enumerate(derivation.key) if part == old_key
        ]
        frontier_indices = [
            i for i, (_, value) in enumerate(derivation.frontier)
            if isinstance(value, LabeledNull) and value == null
        ]
        if not key_indices and not frontier_indices:
            return None
        self._unbucket_derivation(derivation)
        key = list(derivation.key)
        for i in key_indices:
            key[i] = new_key
        derivation.key = tuple(key)
        for i in frontier_indices:
            var, _ = derivation.frontier[i]
            derivation.frontier[i] = (var, replacement)
        if derivation.alive:
            self._derivations.setdefault(
                (derivation.dep_index, derivation.key), []
            ).append(derivation)
        if null_key_label(new_key) is not None:
            self._null_index.setdefault(new_key, []).append(
                ("deriv", derivation)
            )
        return ("deriv", derivation, key_indices, frontier_indices)

    def _unbucket_derivation(self, derivation):
        if not derivation.alive:
            return
        bucket = self._derivations.get(
            (derivation.dep_index, derivation.key)
        )
        if bucket is not None and derivation in bucket:
            bucket.remove(derivation)
            if not bucket:
                del self._derivations[(derivation.dep_index, derivation.key)]

    def _rekey_edge(self, edge, old_key, new_key):
        # Only the *body* key tracks current values (dying triggers are
        # re-enumerated against the merged instance).  The endpoint keys
        # keep their at-record-time identity: they are what links an
        # edge to the merge records of its null class during rollback.
        key_indices = [
            i for i, part in enumerate(edge.body_key) if part == old_key
        ]
        if not key_indices:
            return None
        in_bucket = False
        if edge.alive:
            bucket = self._edges.get((edge.egd_index, edge.body_key))
            if bucket is not None and edge in bucket:
                bucket.remove(edge)
                in_bucket = True
                if not bucket:
                    del self._edges[(edge.egd_index, edge.body_key)]
        body_key = list(edge.body_key)
        for i in key_indices:
            body_key[i] = new_key
        edge.body_key = tuple(body_key)
        if in_bucket:
            self._edges.setdefault(
                (edge.egd_index, edge.body_key), []
            ).append(edge)
        if null_key_label(new_key) is not None:
            self._null_index.setdefault(new_key, []).append(("edge", edge))
        return ("edge", edge, key_indices, ())

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def target_instance(self, copy: bool = True) -> Instance:
        """The maintained target (the universal solution restricted to
        the target relations, like ``ExchangeTransformation.apply``)."""
        result = Instance(self.mapping.target)
        for relation in self._target_relations:
            rows = self.working.relations.get(relation)
            if rows:
                result.relations[relation] = (
                    [dict(row) for row in rows] if copy else list(rows)
                )
        return result

    def source_instance(self, copy: bool = True) -> Instance:
        """The maintained source state (every non-derived row)."""
        result = Instance(self.mapping.source)
        for relation, rows in self.working.relations.items():
            live = [row for row in rows if id(row) not in self._deriver]
            if live:
                result.relations[relation] = (
                    [dict(row) for row in live] if copy else live
                )
        return result

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    @instrumented("runtime.incremental.apply",
                  attrs=lambda self, update: {
                      "mapping.name": self.mapping.name,
                      "update.size": update.size()})
    def apply(self, update: UpdateSet) -> UpdateSet:
        """Maintain the target under a source-side update batch; return
        the target-side delta."""
        self._begin_session()
        overdeleted = 0
        rederived = 0
        try:
            dead_derivations, dead_edges, overdeleted = (
                self._cascade_deletes(update)
            )
            # Roll back orphaned merges *before* rederiving, so witness
            # searches and reinstated row content both see the restored
            # values (a witness found pre-rollback could be undone by
            # the rollback right after).
            restored = self._rollback_edges(dead_edges)
            reinserted = self._rederive(dead_derivations)
            rederived = len(reinserted)
            seed: dict[str, list[Row]] = {}
            for relation, row in reinserted:
                seed.setdefault(relation, []).append(row)
            for relation, row in restored:
                seed.setdefault(relation, []).append(row)
            for relation, rows in self._insert_source_rows(update).items():
                seed.setdefault(relation, []).extend(rows)
            if seed:
                chase(self.working, self._dependencies,
                      max_steps=self._max_steps,
                      null_factory=self._factory, copy=False,
                      recorder=self._recorder, initial_delta=seed,
                      shards=self._shards)
        except _FallbackNeeded:
            delta = self._full_reexchange(update)
            self._publish(overdeleted, rederived, full=True)
            return delta
        delta = self._finish_session()
        self._publish(overdeleted, rederived, full=False)
        return delta

    # -- inserts -------------------------------------------------------
    def _insert_source_rows(self, update: UpdateSet) -> dict[str, list[Row]]:
        inserted: dict[str, list[Row]] = {}
        for relation, rows in update.inserts.items():
            for row in rows:
                if relation == "$typed":
                    values = {k: v for k, v in row.items() if k != "$type"}
                    stored = self.working.insert_object(
                        str(row["$type"]), **values
                    )
                    entity = self.mapping.source.entity(str(row["$type"]))
                    target_relation = entity.root().name
                else:
                    stored = self.working.insert(relation, dict(row))
                    target_relation = relation
                rid = id(stored)
                self._alive.add(rid)
                self._session_inserted[rid] = (target_relation, stored)
                inserted.setdefault(target_relation, []).append(stored)
        return inserted

    # -- deletes -------------------------------------------------------
    def _cascade_deletes(self, update: UpdateSet):
        """Counting/DRed over-deletion: kill the triggers that used the
        deleted rows, decrement their head rows' derivation counts, and
        cascade rows whose count reaches zero."""
        resolved = resolve_deletes(self.working, update.deletes)
        dead_derivations: list[_Derivation] = []
        dead_edges: list[_Edge] = []
        pending = {relation: list(rows) for relation, rows in
                   resolved.items()}
        scheduled = {id(row) for rows in pending.values() for row in rows}
        # Directly deleted *derived* rows take their own derivation down
        # (and stay down: the user asked for the row to go).
        for rows in list(pending.values()):
            for row in list(rows):
                derivation = self._deriver.get(id(row))
                if derivation is not None and derivation.alive:
                    derivation.suppressed = True
                    self._kill_derivation(derivation, dead_derivations,
                                          pending, scheduled)
        overdeleted = 0
        next_round: dict[str, list[Row]] = {}
        while pending:
            for dep_index, dependency in enumerate(self._dependencies):
                if not (self._body_relations[dep_index] & pending.keys()):
                    continue
                if isinstance(dependency, TGD):
                    frontier = self._frontiers[dep_index]
                    for assignment in self._pinned_triggers(dep_index,
                                                            pending):
                        key = tuple(
                            hashable_key(assignment[v]) for v in frontier
                        )
                        bucket = self._derivations.get((dep_index, key))
                        if bucket:
                            for derivation in list(bucket):
                                self._kill_derivation(
                                    derivation, dead_derivations,
                                    next_round, scheduled
                                )
                else:
                    variables = self._body_variables[dep_index]
                    for assignment in self._pinned_triggers(dep_index,
                                                            pending):
                        body_key = tuple(
                            hashable_key(assignment[v]) for v in variables
                        )
                        for edge in self._edges.pop(
                            (dep_index, body_key), []
                        ):
                            edge.alive = False
                            dead_edges.append(edge)
            self._remove_batch(pending)
            pending = next_round
            next_round = {}
            overdeleted += sum(len(rows) for rows in pending.values())
        return dead_derivations, dead_edges, overdeleted

    def _kill_derivation(self, derivation, dead_derivations, dying_out,
                         scheduled):
        if not derivation.alive:
            return
        derivation.alive = False
        bucket = self._derivations.get(
            (derivation.dep_index, derivation.key)
        )
        if bucket is not None and derivation in bucket:
            bucket.remove(derivation)
            if not bucket:
                del self._derivations[
                    (derivation.dep_index, derivation.key)
                ]
        dead_derivations.append(derivation)
        for relation, row in derivation.rows:
            rid = id(row)
            count = self._support.get(rid, 0) - 1
            self._support[rid] = count
            if count <= 0 and rid in self._alive and rid not in scheduled:
                scheduled.add(rid)
                dying_out.setdefault(relation, []).append(row)

    def _pinned_triggers(self, dep_index: int,
                         delta: dict[str, list[Row]]) -> Iterator[dict]:
        dependency = self._dependencies[dep_index]
        body = dependency.body
        variables = self._body_variables[dep_index]
        seen: set = set()
        for position, atom in enumerate(body):
            delta_rows = delta.get(atom.relation)
            if not delta_rows:
                continue
            for assignment in iter_homomorphisms(
                body, self.working, pinned=(position, delta_rows)
            ):
                key = tuple(
                    [hashable_key(assignment[v]) for v in variables]
                )
                if key in seen:
                    continue
                seen.add(key)
                yield assignment

    def _remove_batch(self, pending: dict[str, list[Row]]) -> None:
        for relation, rows in pending.items():
            for row in self.working.remove_rows(relation, rows):
                rid = id(row)
                self._alive.discard(rid)
                if rid in self._session_inserted:
                    del self._session_inserted[rid]
                    continue
                snapshot = dict(row)
                rewrites = self._session_rewrites.get(rid)
                if rewrites:
                    snapshot.update(rewrites[0])
                self._session_deleted.setdefault(relation, []).append(
                    snapshot
                )

    # -- rederivation --------------------------------------------------
    def _rederive(self, dead_derivations):
        """DRed's rederivation step: reinstate over-deleted rows that
        are still derivable from the surviving instance."""
        reinserted: list[tuple[str, Row]] = []
        remaining = sorted(
            (d for d in dead_derivations if not d.suppressed),
            key=lambda d: d.seq,
        )
        progress = True
        while progress and remaining:
            progress = False
            keep = []
            for derivation in remaining:
                if self._try_reinstate(derivation):
                    progress = True
                    reinserted.extend(derivation.rows)
                else:
                    keep.append(derivation)
            remaining = keep
        # Rows a *different* dependency can still derive (the original
        # trigger is gone for good, but the content is not).
        for derivation in remaining:
            for relation, row in derivation.rows:
                if id(row) in self._alive:
                    continue
                reinserted.extend(self._try_refire(relation, row))
        return reinserted

    def _try_reinstate(self, derivation) -> bool:
        """Reinstate a dead derivation from an alternative body witness
        with the *same* frontier bindings — this preserves the original
        head rows (and their labeled nulls) exactly."""
        if self._derivations.get((derivation.dep_index, derivation.key)):
            return False  # the frontier key is already supported
        dependency = self._dependencies[derivation.dep_index]
        partial = {var: value for var, value in derivation.frontier}
        witness = next(
            iter_homomorphisms(dependency.body, self.working,
                               partial=partial),
            None,
        )
        if witness is None:
            return False
        for relation, row in derivation.rows:
            self.working.relations.setdefault(relation, []).append(row)
            rid = id(row)
            self._alive.add(rid)
            self._support[rid] = self._support.get(rid, 0) + 1
            self._deriver[rid] = derivation
            self._session_inserted[rid] = (relation, row)
        derivation.alive = True
        self._derivations.setdefault(
            (derivation.dep_index, derivation.key), []
        ).append(derivation)
        return True

    def _try_refire(self, relation: str, row: Row):
        """Fire any dependency whose head can produce ``row``'s content
        from a surviving, so-far-unused trigger (fresh nulls for the
        existentials, exactly as the chase would)."""
        for dep_index, dependency in enumerate(self._dependencies):
            if not isinstance(dependency, TGD):
                continue
            frontier_set = self._frontier_sets[dep_index]
            frontier = self._frontiers[dep_index]
            for atom in dependency.head:
                if atom.relation != relation:
                    continue
                partial = self._invert_head(atom, row, frontier_set)
                if partial is None:
                    continue
                for assignment in iter_homomorphisms(
                    dependency.body, self.working, partial=partial
                ):
                    key = tuple(
                        hashable_key(assignment[v]) for v in frontier
                    )
                    if self._derivations.get((dep_index, key)):
                        continue
                    head_partial = {v: assignment[v] for v in frontier}
                    if find_homomorphism(
                        dependency.head, self.working, partial=head_partial
                    ) is not None:
                        continue
                    return self._fire(dep_index, dependency, assignment,
                                      key)
        return []

    @staticmethod
    def _invert_head(atom, row: Row, frontier_set) -> Optional[dict]:
        partial: dict = {}
        for attr, term in atom.args:
            if attr not in row:
                return None
            value = row[attr]
            if isinstance(term, Const):
                if value != term.value:
                    return None
            elif isinstance(term, Var) and term in frontier_set:
                if term in partial and partial[term] != value:
                    return None
                partial[term] = value
            # existential positions are unconstrained
        return partial

    def _fire(self, dep_index, tgd, assignment, key):
        frontier = self._frontiers[dep_index]
        existential_values: dict = {}
        head_rows: list[tuple[str, Row]] = []
        for atom in tgd.head:
            row: Row = {}
            for attr, term in atom.args:
                if isinstance(term, Const):
                    row[attr] = term.value
                elif term in assignment:
                    row[attr] = assignment[term]
                else:
                    null = existential_values.get(term)
                    if null is None:
                        null = self._factory.fresh(
                            hint=f"{tgd.name or 'tgd'}.{term.name}"
                        )
                        existential_values[term] = null
                    row[attr] = null
            stored = self.working.insert(atom.relation, row)
            head_rows.append((atom.relation, stored))
        self._record_derivation(
            dep_index, key,
            [(v, assignment[v]) for v in frontier],
            head_rows,
        )
        return head_rows

    # -- egd rollback --------------------------------------------------
    def _rollback_edges(self, dead_edges):
        """Undo substitutions whose merge class lost an edge, via the
        recorded positions (newest merge first); the repair chase
        re-merges whatever the surviving triggers still justify."""
        if not dead_edges:
            return []
        parent: dict = {}

        def find(key):
            parent.setdefault(key, key)
            while parent[key] != key:
                parent[key] = parent[parent[key]]
                key = parent[key]
            return key

        for bucket in self._edges.values():
            for edge in bucket:
                parent[find(edge.left_key)] = find(edge.right_key)
        for edge in dead_edges:
            parent[find(edge.left_key)] = find(edge.right_key)
        affected_roots = {find(edge.left_key) for edge in dead_edges}
        to_restore = []
        for record in self._merges:
            if not record.alive:
                continue
            if find(hashable_key(record.null)) not in affected_roots:
                continue
            live = [
                (relation, row, attr)
                for relation, row, attr in record.positions
                if id(row) in self._alive
            ]
            if live:
                # Cascade safety: a later firing that copied the merged
                # value into its frontier would keep the stale value
                # after rollback — counting cannot fix that locally.
                _, row0, attr0 = live[0]
                value = row0.get(attr0)
                for bucket in self._derivations.values():
                    for derivation in bucket:
                        if derivation.seq > record.seq and any(
                            v == value for _, v in derivation.frontier
                        ):
                            raise _FallbackNeeded(
                                "merged value flowed into a later "
                                "derivation"
                            )
            # Restore even when every position row is currently dead:
            # rederivation may revive those rows, and they must come
            # back carrying the un-merged values.
            to_restore.append((record, live))
        restored: dict[int, tuple[str, Row]] = {}
        for record, live in sorted(to_restore, key=lambda p: -p[0].seq):
            for relation, row, attr in record.positions:
                rid = id(row)
                if rid in self._alive:
                    rewrites = self._session_rewrites.setdefault(
                        rid, ({}, (relation, row))
                    )
                    rewrites[0].setdefault(attr, row.get(attr))
                    restored[rid] = (relation, row)
                # Dead rows get their content restored too: if the
                # rederivation step reinstates them, they must carry
                # the un-merged values (their removal snapshot was
                # copied, so the delta is unaffected).
                row[attr] = record.null
            self._restore_rekeys(record)
            record.alive = False
        for key in list(self._edges):
            bucket = self._edges[key]
            bucket[:] = [
                edge for edge in bucket
                if find(edge.left_key) not in affected_roots
            ]
            if not bucket:
                del self._edges[key]
        if restored:
            self.working.mark_dirty()
        self.stats["merge_rollbacks"] += len(to_restore)
        return list(restored.values())

    def _restore_rekeys(self, record):
        """Undo the bookkeeping rewrites the merge performed, so the
        surviving derivations' keys and frontiers match the restored
        instance again (newest merge restored first handles chains)."""
        old_key = hashable_key(record.null)
        for kind, obj, key_indices, frontier_indices in record.rekeys:
            if kind == "deriv":
                self._unbucket_derivation(obj)
                key = list(obj.key)
                for i in key_indices:
                    key[i] = old_key
                obj.key = tuple(key)
                for i in frontier_indices:
                    var, _ = obj.frontier[i]
                    obj.frontier[i] = (var, record.null)
                if obj.alive:
                    self._derivations.setdefault(
                        (obj.dep_index, obj.key), []
                    ).append(obj)
                self._null_index.setdefault(old_key, []).append(
                    ("deriv", obj)
                )
            else:
                edge = obj
                in_bucket = False
                if edge.alive:
                    bucket = self._edges.get(
                        (edge.egd_index, edge.body_key)
                    )
                    if bucket is not None and edge in bucket:
                        bucket.remove(edge)
                        in_bucket = True
                        if not bucket:
                            del self._edges[
                                (edge.egd_index, edge.body_key)
                            ]
                body_key = list(edge.body_key)
                for i in key_indices:
                    body_key[i] = old_key
                edge.body_key = tuple(body_key)
                if in_bucket:
                    self._edges.setdefault(
                        (edge.egd_index, edge.body_key), []
                    ).append(edge)
                self._null_index.setdefault(old_key, []).append(
                    ("edge", edge)
                )

    # -- fallback ------------------------------------------------------
    def _full_reexchange(self, update: UpdateSet) -> UpdateSet:
        """Rebuild the materialization from scratch (metrics-counted);
        the returned delta still reflects exactly this apply call."""
        old_target = self._target_image_before_session()
        self._insert_source_rows(update)
        base = Instance(self.mapping.source)
        for relation, rows in self.working.relations.items():
            live = [row for row in rows if id(row) not in self._deriver]
            if live:
                base.relations[relation] = live
        self.working = base
        self._reset_bookkeeping()
        self._begin_session()
        if _OBS.enabled:
            from repro.observability.journal import JOURNAL
            from repro.observability.tracing import tracer

            JOURNAL.record(
                "incremental.full_reexchange",
                mapping=self.mapping.name,
                inserts=sum(len(r) for r in update.inserts.values()),
                deletes=sum(len(r) for r in update.deletes.values()),
            )
            with tracer.span("runtime.incremental.full_reexchange",
                             mapping=self.mapping.name):
                chase(self.working, self._dependencies,
                      max_steps=self._max_steps,
                      null_factory=self._factory, copy=False,
                      recorder=self._recorder, shards=self._shards)
        else:
            chase(self.working, self._dependencies,
                  max_steps=self._max_steps,
                  null_factory=self._factory, copy=False,
                  recorder=self._recorder, shards=self._shards)
        self._begin_session()
        self.stats["full_reexchange"] += 1
        return _bag_delta(old_target, self.target_instance(copy=False),
                          self._target_relations)

    def _target_image_before_session(self) -> Instance:
        """The target state at the start of the current apply call,
        reconstructed from the session's removal snapshots and rewrite
        originals (only needed on the fallback path)."""
        image = Instance(self.mapping.target)
        for relation in self._target_relations:
            rows: list[Row] = []
            for row in self.working.relations.get(relation, []):
                rid = id(row)
                if rid in self._session_inserted:
                    continue
                rewrites = self._session_rewrites.get(rid)
                if rewrites:
                    rows.append({**row, **rewrites[0]})
                else:
                    rows.append(dict(row))
            rows.extend(self._session_deleted.get(relation, []))
            if rows:
                image.relations[relation] = rows
        return image

    # -- delta assembly ------------------------------------------------
    def _finish_session(self) -> UpdateSet:
        delta = UpdateSet()
        for relation, snapshots in self._session_deleted.items():
            if relation not in self._target_relations:
                continue
            delta.deletes.setdefault(relation, []).extend(
                dict(snapshot) for snapshot in snapshots
            )
        for rid, (relation, row) in self._session_inserted.items():
            if relation not in self._target_relations:
                continue
            if rid not in self._alive:
                continue
            delta.inserts.setdefault(relation, []).append(dict(row))
        for rid, (originals, (relation, row)) in (
            self._session_rewrites.items()
        ):
            if relation not in self._target_relations:
                continue
            if rid not in self._alive or rid in self._session_inserted:
                continue
            delta.deletes.setdefault(relation, []).append(
                {**row, **originals}
            )
            delta.inserts.setdefault(relation, []).append(dict(row))
        return _net_cancel(delta)

    def _publish(self, overdeleted: int, rederived: int, full: bool):
        touched = sum(
            1 for relation, _ in self._session_inserted.values()
            if relation in self._target_relations
        ) + sum(
            len(rows) for relation, rows in self._session_deleted.items()
            if relation in self._target_relations
        )
        total = sum(
            len(self.working.relations.get(relation, []))
            for relation in self._target_relations
        )
        reused = 0 if full else max(0, total - touched)
        self.stats["applies"] += 1
        self.stats["reused_rows"] += reused
        self.stats["rederived"] += rederived
        self.stats["overdeleted"] += overdeleted
        if not _OBS.enabled:
            return
        from repro.observability.metrics import registry

        registry.counter("incremental.applies").inc()
        registry.counter("incremental.reused_rows").inc(reused)
        registry.counter("incremental.rederived").inc(rederived)
        registry.counter("incremental.overdeleted").inc(overdeleted)
        if full:
            registry.counter("incremental.full_reexchange").inc()


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _net_cancel(update: UpdateSet) -> UpdateSet:
    """Cancel equal insert/delete pairs per relation (bag semantics), so
    rows deleted and rederived within one apply produce no delta."""
    result = UpdateSet()
    for relation in sorted(set(update.inserts) | set(update.deletes)):
        inserts: dict[frozenset, list[Row]] = {}
        for row in update.inserts.get(relation, []):
            inserts.setdefault(freeze_row(row), []).append(row)
        deletes: dict[frozenset, list[Row]] = {}
        for row in update.deletes.get(relation, []):
            deletes.setdefault(freeze_row(row), []).append(row)
        for key, rows in inserts.items():
            surplus = len(rows) - len(deletes.get(key, ()))
            for _ in range(surplus):
                result.inserts.setdefault(relation, []).append(rows[0])
        for key, rows in deletes.items():
            surplus = len(rows) - len(inserts.get(key, ()))
            for _ in range(surplus):
                result.deletes.setdefault(relation, []).append(rows[0])
    return result


def _bag_delta(before: Instance, after: Instance,
               relations) -> UpdateSet:
    update = UpdateSet()
    for relation in sorted(relations):
        old: dict[frozenset, list[Row]] = {}
        for row in before.relations.get(relation, []):
            old.setdefault(freeze_row(row), []).append(row)
        new: dict[frozenset, list[Row]] = {}
        for row in after.relations.get(relation, []):
            new.setdefault(freeze_row(row), []).append(row)
        for key, rows in new.items():
            for _ in range(len(rows) - len(old.get(key, ()))):
                update.inserts.setdefault(relation, []).append(
                    dict(rows[0])
                )
        for key, rows in old.items():
            for _ in range(len(rows) - len(new.get(key, ()))):
                update.deletes.setdefault(relation, []).append(
                    dict(rows[0])
                )
    return update


def _deduped(instance: Instance) -> Instance:
    result = Instance(instance.schema)
    for relation, row_sets in instance.as_sets().items():
        result.relations[relation] = [dict(frozen) for frozen in row_sets]
    return result


def _match_rows(source: Instance, target: Instance,
                bijective: bool) -> Optional[dict]:
    """A null assignment mapping every source row onto some target row
    (constants fixed), or ``None``.  ``bijective`` requires a
    null-to-null injection.

    Unit propagation first: rows whose current image is compatible
    with exactly one target row bind their nulls immediately, so
    constrained rows (a null alongside a unique constant) pin the
    assignment before unconstrained rows (all-null tuples, which are
    mutually interchangeable and would make a naive fixed-order
    backtracking search explode) are even considered.  Whatever
    symmetric residue survives propagation is settled by a
    most-constrained-first backtracking pass.
    """
    mapping: dict = {}
    used: set = set()  # images already taken (bijective mode)

    def bind(null, value) -> bool:
        if bijective:
            if not isinstance(value, LabeledNull):
                return False
            key = hashable_key(value)
            if key in used:
                return False
            used.add(key)
        mapping[null] = value
        return True

    target_lists = {relation: list(rows)
                    for relation, rows in target.relations.items()}
    target_frozen = {relation: {freeze_row(r) for r in rows}
                     for relation, rows in target_lists.items()}

    pending: list[tuple[str, Row]] = []
    for relation in sorted(source.relations):
        for row in source.relations[relation]:
            if any(isinstance(v, LabeledNull) for v in row.values()):
                pending.append((relation, row))
            elif freeze_row(row) not in target_frozen.get(relation, ()):
                return None  # ground rows must appear verbatim

    def compatible(row: Row, candidate: Row) -> Optional[dict]:
        """The bindings this candidate would add, or None."""
        if set(row) != set(candidate):
            return None
        local: dict = {}
        local_used: set = set()
        for attr, value in row.items():
            image = candidate[attr]
            if isinstance(value, LabeledNull):
                bound = mapping.get(value, local.get(value))
                if bound is not None:
                    if bound != image:
                        return None
                    continue
                if bijective:
                    if not isinstance(image, LabeledNull):
                        return None
                    key = hashable_key(image)
                    if key in used or key in local_used:
                        return None
                    local_used.add(key)
                local[value] = image
            elif value != image:
                return None
        return local

    def candidates_of(relation: str, row: Row,
                      cap: Optional[int] = None) -> Optional[list[dict]]:
        found: list[dict] = []
        for candidate in target_lists.get(relation, ()):
            local = compatible(row, candidate)
            if local is not None:
                found.append(local)
                if cap is not None and len(found) >= cap:
                    break
        return found

    while pending:
        progress = False
        residue: list[tuple[str, Row]] = []
        for relation, row in pending:
            found = candidates_of(relation, row, cap=2)
            if not found:
                return None
            free = any(
                isinstance(v, LabeledNull) and v not in mapping
                for v in row.values()
            )
            if not free:
                progress = True  # fully bound and matched: satisfied
            elif len(found) == 1:
                for null, value in found[0].items():
                    if not bind(null, value):
                        return None
                progress = True
            else:
                residue.append((relation, row))
        pending = residue
        if not progress:
            break

    def solve(remaining: list[tuple[str, Row]]) -> bool:
        if not remaining:
            return True
        best = None
        for index, (relation, row) in enumerate(remaining):
            found = candidates_of(relation, row)
            if not found:
                return False
            if best is None or len(found) < len(best[1]):
                best = (index, found)
                if len(found) == 1:
                    break
        index, found = best
        rest = remaining[:index] + remaining[index + 1:]
        for local in found:
            saved_mapping = dict(mapping)
            saved_used = set(used)
            if all(bind(n, v) for n, v in local.items()) and solve(rest):
                return True
            mapping.clear()
            mapping.update(saved_mapping)
            used.clear()
            used.update(saved_used)
        return False

    return mapping if solve(pending) else None


def set_equal_modulo_nulls(left: Instance, right: Instance) -> bool:
    """Equality of two instances up to a renaming of labeled nulls.

    Fast path: plain set equality.  Otherwise both sides are
    *deduplicated* (the chase's firing order can duplicate rows that an
    egd merge later collapses — homomorphisms ignore multiplicity, and
    duplicate rows make the matching search explode) and a null-to-null
    bijection whose substitution maps ``left`` onto exactly ``right``
    is searched via :func:`_match_rows`.  When the engines produced
    syntactically different (but hom-equivalent) universal solutions,
    the final tier accepts homomorphisms both ways — the data-exchange
    notion of equivalence.
    """
    left_sets = left.as_sets()
    right_sets = right.as_sets()
    if set(left_sets) != set(right_sets):
        return False
    if left_sets == right_sets:
        return True
    ded_left = _deduped(left)
    ded_right = _deduped(right)
    same_shape = all(
        len(left_sets[name]) == len(right_sets[name]) for name in left_sets
    )
    if same_shape:
        mapping = _match_rows(ded_left, ded_right, bijective=True)
        if mapping is not None and (
            not mapping
            or ded_left.substitute(mapping).set_equal(ded_right)
        ):
            return True
    return (
        _match_rows(ded_left, ded_right, bijective=False) is not None
        and _match_rows(ded_right, ded_left, bijective=False) is not None
    )
