"""Provenance: where did a target row come from? (paper, Section 5).

"After moving data from source to target, a user wants to know the
source data that contributed to a particular target data item."

For tgd mappings, *why-provenance* of a target row is the set of
(dependency, source rows) derivations whose head instantiates to the
row.  :func:`route` chains derivations through intermediate relations
— the routes of Chiticariu & Tan [30] that the paper cites for mapping
debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.instances.database import Instance, Row, freeze_row
from repro.instances.labeled_null import LabeledNull
from repro.logic.dependencies import TGD
from repro.logic.formulas import Atom
from repro.logic.homomorphism import iter_homomorphisms
from repro.logic.terms import Const, Var
from repro.observability.instrument import instrumented


@dataclass
class ProvenanceEntry:
    """One derivation of a target row."""

    dependency: TGD
    assignment: dict
    source_rows: list[tuple[str, Row]]

    def describe(self) -> str:
        rows = ", ".join(f"{rel}{row}" for rel, row in self.source_rows)
        return f"via [{self.dependency.name or self.dependency}] from {rows}"


def _head_matches(
    atom: Atom, row: Row, assignment: dict
) -> Optional[dict]:
    """Extend ``assignment`` so that the head atom instantiates to
    ``row``; labeled nulls in the row match existential variables."""
    extended = dict(assignment)
    for name, term in atom.args:
        if name not in row:
            return None
        value = row[name]
        if isinstance(term, Const):
            if value != term.value:
                return None
        elif isinstance(term, Var):
            if term in extended:
                if extended[term] != value:
                    return None
            else:
                extended[term] = value
        else:
            return None
    return extended


@instrumented("provenance.lineage", attrs=lambda target_row, relation,
              source_instance, dependencies: {
                  "relation": relation,
                  "dependencies": len(dependencies),
                  "source.rows": source_instance.total_rows()})
def lineage(
    target_row: Row,
    relation: str,
    source_instance: Instance,
    dependencies: Sequence[TGD],
) -> list[ProvenanceEntry]:
    """All derivations of ``target_row`` in ``relation`` from the source
    via the given tgds (why-provenance)."""
    entries: list[ProvenanceEntry] = []
    for tgd in dependencies:
        for head_atom in tgd.head:
            if head_atom.relation != relation:
                continue
            seed = _head_matches(head_atom, target_row, {})
            if seed is None:
                continue
            # Existential variables bound to labeled nulls do not
            # constrain the body; keep only frontier bindings.
            frontier = tgd.frontier()
            partial = {
                var: value for var, value in seed.items() if var in frontier
            }
            if any(isinstance(v, LabeledNull) for v in partial.values()):
                continue  # null in a frontier position: not derivable here
            for assignment in iter_homomorphisms(
                tgd.body, source_instance, partial=partial
            ):
                source_rows = _witness_rows(tgd.body, assignment,
                                            source_instance)
                entries.append(
                    ProvenanceEntry(
                        dependency=tgd,
                        assignment=assignment,
                        source_rows=source_rows,
                    )
                )
    return entries


def _witness_rows(
    body: Sequence[Atom], assignment: dict, instance: Instance
) -> list[tuple[str, Row]]:
    witnesses: list[tuple[str, Row]] = []
    for atom in body:
        for row in instance.rows(atom.relation):
            if _head_matches(atom, row, dict(assignment)) is not None:
                matches = all(
                    row.get(name) == (
                        term.value if isinstance(term, Const)
                        else assignment.get(term)
                    )
                    for name, term in atom.args
                )
                if matches:
                    witnesses.append((atom.relation, row))
                    break
    return witnesses


@instrumented("provenance.route", attrs=lambda target_row, relation,
              source_instance, dependencies, max_depth=10: {
                  "relation": relation,
                  "dependencies": len(dependencies),
                  "source.rows": source_instance.total_rows()})
def route(
    target_row: Row,
    relation: str,
    source_instance: Instance,
    dependencies: Sequence[TGD],
    max_depth: int = 10,
) -> list[list[ProvenanceEntry]]:
    """Full derivation routes: chains of provenance entries ending at
    base source data, following intermediate relations produced by
    earlier dependencies (Chiticariu–Tan routes)."""
    routes: list[list[ProvenanceEntry]] = []

    base_relations = {
        relation
        for relation in source_instance.relations
        if source_instance.rows(relation)
    }
    derived_relations = {
        atom.relation for tgd in dependencies for atom in tgd.head
    }

    # Materialize the full derivation space once.
    from repro.logic.chase import chase

    full = chase(source_instance, dependencies).instance

    def explain(row: Row, rel: str, depth: int) -> list[list[ProvenanceEntry]]:
        if depth > max_depth:
            return []
        entries = lineage(row, rel, full, dependencies)
        if not entries:
            return []
        results: list[list[ProvenanceEntry]] = []
        for entry in entries:
            chain = [entry]
            complete = True
            for witness_relation, witness_row in entry.source_rows:
                if (
                    witness_relation in derived_relations
                    and witness_relation not in base_relations
                ):
                    sub_routes = explain(witness_row, witness_relation,
                                         depth + 1)
                    if sub_routes:
                        chain.extend(sub_routes[0])
                    else:
                        complete = False
            if complete:
                results.append(chain)
        return results

    return explain(target_row, relation, 0)
