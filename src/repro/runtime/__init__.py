"""The mapping runtime (paper, Section 5).

The revised model-management vision's second pillar: "the runtime
system does not simply execute queries over mappings.  It must also
propagate updates, notifications, exceptions, and access rights, and
provide other services, such as debugging, synchronization, and
provenance."  One module per service the paper enumerates:

* :mod:`~repro.runtime.executor` — execute transformations / exchange;
* :mod:`~repro.runtime.query_processor` — answer target queries
  through the mapping (view unfolding; certain answers for tgds);
* :mod:`~repro.runtime.updates` — update propagation T → S;
* :mod:`~repro.runtime.provenance` — lineage of target data;
* :mod:`~repro.runtime.debugging` — routes and rule-by-rule traces;
* :mod:`~repro.runtime.errors` — error translation S → T;
* :mod:`~repro.runtime.notifications` — materialized-target
  maintenance with incremental deltas and subscriber notification;
* :mod:`~repro.runtime.incremental` — materialized exchange with
  delta-driven maintenance (counting/DRed deletes, delta-chase
  inserts, egd-merge rollback);
* :mod:`~repro.runtime.access_control` — access checks and pushdown;
* :mod:`~repro.runtime.integrity` — cross-schema constraint checking;
* :mod:`~repro.runtime.p2p` — peer-to-peer mapping chains;
* :mod:`~repro.runtime.loader` — batch loading through the mapping.
"""

from repro.runtime.executor import exchange, exchange_with_stats, execute
from repro.runtime.query_processor import QueryProcessor
from repro.runtime.updates import UpdatePropagator, UpdateSet
from repro.runtime.provenance import lineage, route, ProvenanceEntry
from repro.runtime.debugging import MappingDebugger
from repro.runtime.errors import ErrorTranslator, TranslatedError
from repro.runtime.notifications import MaterializedTarget, Delta
from repro.runtime.incremental import (
    MaterializedExchange,
    set_equal_modulo_nulls,
)
from repro.runtime.access_control import AccessController, Permission
from repro.runtime.integrity import (
    check_constraint_propagation,
    inexpressible_constraints,
)
from repro.runtime.p2p import PeerNetwork
from repro.runtime.loader import BatchLoader
from repro.runtime.indexing import KeywordIndex, SearchHit
from repro.runtime.business_logic import Trigger, TriggerSet, pushdown
from repro.runtime.synchronization import (
    Endpoint,
    QueuedSynchronizer,
    ReplicationRule,
    Synchronizer,
)

__all__ = [
    "exchange", "exchange_with_stats", "execute",
    "QueryProcessor",
    "UpdatePropagator", "UpdateSet",
    "lineage", "route", "ProvenanceEntry",
    "MappingDebugger",
    "ErrorTranslator", "TranslatedError",
    "MaterializedTarget", "Delta",
    "MaterializedExchange", "set_equal_modulo_nulls",
    "AccessController", "Permission",
    "check_constraint_propagation", "inexpressible_constraints",
    "PeerNetwork",
    "BatchLoader",
    "KeywordIndex", "SearchHit",
    "Trigger", "TriggerSet", "pushdown",
    "Endpoint", "QueuedSynchronizer", "ReplicationRule", "Synchronizer",
]
