"""Business-logic pushdown (paper, Section 5, "Business logic").

"Triggers and other business logic may be attached to data in the
context of T.  It may be more efficient to execute them in the context
of S.  This requires pushing the business logic through mapST, which
should be done statically."

:class:`TriggerSet` holds target-level triggers; :meth:`pushdown`
statically translates each trigger's entity and condition into source
vocabulary using the mapping's element map, producing a source-level
trigger set whose firings on source deltas coincide with the original
triggers' firings on the corresponding target deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.algebra import scalars as S
from repro.errors import ExpressivenessError
from repro.instances.database import TYPE_FIELD, Row
from repro.mappings.mapping import Mapping
from repro.runtime.errors import ErrorTranslator
from repro.runtime.updates import UpdateSet

Action = Callable[[str, Row], None]


@dataclass
class Trigger:
    """ON <event> <entity> WHEN <condition> DO <action>."""

    entity: str
    event: str  # "insert" | "delete"
    action: Action
    condition: Optional[S.Predicate] = None
    name: str = ""

    def matches(self, row: Row) -> bool:
        if self.condition is None:
            return True
        return bool(self.condition.eval(row, None))


class TriggerSet:
    """A set of triggers over one schema's relations."""

    def __init__(self, schema_name: str):
        self.schema_name = schema_name
        self.triggers: list[Trigger] = []
        self.fired: list[tuple[str, str, Row]] = []

    def on_insert(self, entity: str, action: Action,
                  condition: Optional[S.Predicate] = None,
                  name: str = "") -> Trigger:
        trigger = Trigger(entity, "insert", action, condition, name)
        self.triggers.append(trigger)
        return trigger

    def on_delete(self, entity: str, action: Action,
                  condition: Optional[S.Predicate] = None,
                  name: str = "") -> Trigger:
        trigger = Trigger(entity, "delete", action, condition, name)
        self.triggers.append(trigger)
        return trigger

    # ------------------------------------------------------------------
    def fire(self, update: UpdateSet) -> int:
        """Evaluate all triggers against an update; returns firings."""
        count = 0
        for event, changes in (("insert", update.inserts),
                               ("delete", update.deletes)):
            for relation, rows in changes.items():
                for row in rows:
                    effective_relation = relation
                    if relation == "$typed":
                        effective_relation = str(row.get(TYPE_FIELD, relation))
                    for trigger in self.triggers:
                        applies = trigger.event == event and (
                            trigger.entity == effective_relation
                        )
                        if applies and trigger.matches(row):
                            trigger.action(effective_relation, dict(row))
                            self.fired.append(
                                (trigger.name or trigger.entity, event,
                                 dict(row))
                            )
                            count += 1
        return count


def pushdown(target_triggers: TriggerSet, mapping: Mapping) -> TriggerSet:
    """Statically translate target-level triggers into source-level
    triggers (the paper's push "through mapST … done statically").

    For equality mappings, the fragment analysis of TransGen tells which
    source relation *anchors* each target entity (the most specific
    fragment containing it) and how its attributes land in table
    columns; conditions are rewritten column-wise.  Conditions over
    attributes stored outside the anchor relation are untranslatable
    and raise :class:`ExpressivenessError` — the
    expressiveness-sensitivity the paper keeps pointing at.  For tgd
    mappings the single-head element correspondence is used.
    """
    source_triggers = TriggerSet(mapping.source.name)
    resolver = _Resolver(mapping)
    for trigger in target_triggers.triggers:
        source_relation, column_map = resolver.anchor(trigger.entity)
        condition = None
        if trigger.condition is not None:
            condition = _translate_condition(
                trigger.condition, trigger.entity, source_relation,
                column_map,
            )
        translated = Trigger(
            entity=source_relation,
            event=trigger.event,
            action=trigger.action,
            condition=condition,
            name=f"pushed_{trigger.name or trigger.entity}",
        )
        source_triggers.triggers.append(translated)
    return source_triggers


class _Resolver:
    """Target entity → (anchor source relation, attr→column map)."""

    def __init__(self, mapping: Mapping):
        self.mapping = mapping
        from repro.operators.transgen import _analyze, _copy_targets

        self._fragments = []
        self._copies: dict[str, str] = {}
        for constraint in mapping.equalities:
            fragment = _analyze(constraint, mapping.target)
            if fragment is not None:
                self._fragments.append(fragment)
            else:
                relation, _ = _copy_targets(constraint, mapping.target)
                table, _ = _copy_targets(constraint, mapping.source,
                                         side="source")
                self._copies[relation] = table
        self._tgd_map: dict[str, tuple[str, dict[str, str]]] = {}
        for tgd in mapping.tgds:
            if len(tgd.body) == 1 and len(tgd.head) == 1:
                body, head = tgd.body[0], tgd.head[0]
                columns: dict[str, str] = {}
                for head_attr, head_term in head.args:
                    for body_attr, body_term in body.args:
                        if head_term == body_term:
                            columns[head_attr] = body_attr
                self._tgd_map[head.relation] = (body.relation, columns)

    def anchor(self, entity: str) -> tuple[str, dict[str, str]]:
        candidates = [f for f in self._fragments if entity in f.types]
        if candidates:
            anchor = min(candidates, key=lambda f: len(f.types))
            columns: dict[str, str] = {}
            for fragment in candidates:
                for output, attr in fragment.output_to_attr.items():
                    table_column = fragment.output_to_table.get(output)
                    if table_column is not None:
                        columns.setdefault(
                            attr, f"{fragment.table}.{table_column}"
                        )
            return anchor.table, columns
        if entity in self._copies:
            return self._copies[entity], {}
        if entity in self._tgd_map:
            relation, columns = self._tgd_map[entity]
            return relation, {
                attr: f"{relation}.{column}"
                for attr, column in columns.items()
            }
        raise ExpressivenessError(
            f"no source relation stores entity {entity!r}; cannot push "
            "the trigger down"
        )


def _translate_condition(
    predicate: S.Predicate,
    target_entity: str,
    source_relation: str,
    column_map: dict[str, str],
) -> S.Predicate:
    def column_name(column: str) -> str:
        translated = column_map.get(column)
        if translated is None:
            return column  # same name on both sides
        relation, _, name = translated.partition(".")
        if relation != source_relation:
            raise ExpressivenessError(
                f"condition column {column!r} lands in {relation!r}, not "
                f"the trigger's anchor relation {source_relation!r}"
            )
        return name

    def walk(p: S.Scalar) -> S.Scalar:
        if isinstance(p, S.Col):
            return S.Col(column_name(p.name))
        if isinstance(p, S.Lit) or isinstance(p, S._Bool):
            return p
        if isinstance(p, S.Comparison):
            return S.Comparison(p.op, walk(p.left), walk(p.right))
        if isinstance(p, S.And):
            return S.And(*(walk(q) for q in p.operands))
        if isinstance(p, S.Or):
            return S.Or(*(walk(q) for q in p.operands))
        if isinstance(p, S.Not):
            return S.Not(walk(p.operand))
        if isinstance(p, S.IsNull):
            return S.IsNull(walk(p.operand), p.negated)
        if isinstance(p, S.In):
            return S.In(walk(p.operand), p.values)
        raise ExpressivenessError(
            f"cannot push predicate {p!r} through the mapping"
        )

    return walk(predicate)
