"""Mapping debugging (paper, Section 5).

"Like any program, a mapping needs to be debugged."  The debugger
offers the two facilities the paper describes: rule-by-rule *tracing*
(the single-stepping analogue — watch each constraint/rule fire and
inspect intermediate results) and *routes* (provenance-based
explanation of how target data was generated, as in [30]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.algebra.evaluator import evaluate
from repro.instances.database import Instance, Row
from repro.mappings.mapping import Mapping
from repro.observability.instrument import instrumented
from repro.observability.tracing import tracer
from repro.operators.transgen import (
    ExchangeTransformation,
    TransformationPair,
    transgen,
)
from repro.runtime.provenance import ProvenanceEntry, lineage, route


@dataclass
class TraceStep:
    """One rule's contribution during a traced execution."""

    label: str
    output_relation: str
    row_count: int
    sample: list[Row] = field(default_factory=list)
    #: Id of the tracing span covering this step, when tracing was on.
    span_id: Optional[str] = None

    def describe(self) -> str:
        preview = f", e.g. {self.sample[0]}" if self.sample else ""
        span = f" [span {self.span_id}]" if self.span_id else ""
        return (f"{self.label}: {self.output_relation} ← "
                f"{self.row_count} rows{preview}{span}")


class MappingDebugger:
    """Stepwise inspection of a mapping's execution."""

    def __init__(
        self,
        mapping: Mapping,
        sample_size: int = 3,
        engine: Optional[str] = None,
    ):
        self.mapping = mapping
        self.sample_size = sample_size
        #: Algebra engine traced rules run on (None → process default).
        self.engine = engine

    # ------------------------------------------------------------------
    @instrumented("debug.trace", attrs=lambda self, source: {
        "mapping.name": self.mapping.name,
        "mapping.constraints": self.mapping.constraint_count(),
        "source.rows": source.total_rows()})
    def trace(self, source: Instance) -> list[TraceStep]:
        """Execute the mapping rule by rule, recording row counts and
        samples — the single-stepping view.

        With tracing enabled, each step runs inside its own
        ``debug.step`` span and records that span's id, so the textual
        trace cross-references the exported span tree."""
        transformation = transgen(self.mapping)
        steps: list[TraceStep] = []
        if isinstance(transformation, TransformationPair):
            for relation, expr in transformation.query_view.rules:
                with tracer.span("debug.step", rule=f"view:{relation}") as span:
                    rows = evaluate(
                        expr, source, self.mapping.source, engine=self.engine
                    )
                    if span is not None:
                        span.set_attribute("rows", len(rows))
                steps.append(
                    TraceStep(
                        label=f"view:{relation}",
                        output_relation=relation,
                        row_count=len(rows),
                        sample=rows[: self.sample_size],
                        span_id=span.span_id if span is not None else None,
                    )
                )
            return steps
        # tgd path: chase one dependency at a time against a growing
        # instance, so each step shows that rule's marginal effect.
        from repro.logic.chase import chase

        working = source.copy()
        for tgd in self.mapping.tgds:
            label = f"tgd:{tgd.name or tgd}"
            with tracer.span("debug.step", rule=label) as span:
                before = working.total_rows()
                result = chase(working, [tgd], copy=False)
                added = working.total_rows() - before
                if span is not None:
                    span.set_attributes(rows=added, steps=result.steps)
            head_relation = next(iter(tgd.head)).relation if tgd.head else "?"
            rows = working.rows(head_relation)
            steps.append(
                TraceStep(
                    label=label,
                    output_relation=head_relation,
                    row_count=added,
                    sample=rows[: self.sample_size],
                    span_id=span.span_id if span is not None else None,
                )
            )
        return steps

    # ------------------------------------------------------------------
    @instrumented("debug.explain_row", attrs=lambda self, target_row,
                  relation, source: {"relation": relation,
                                     "source.rows": source.total_rows()})
    def explain_row(
        self, target_row: Row, relation: str, source: Instance
    ) -> list[ProvenanceEntry]:
        """Why is this row in the target?  (why-provenance)"""
        return lineage(target_row, relation, source, self.mapping.tgds)

    @instrumented("debug.explain_route", attrs=lambda self, target_row,
                  relation, source: {"relation": relation,
                                     "source.rows": source.total_rows()})
    def explain_route(
        self, target_row: Row, relation: str, source: Instance
    ) -> list[list[ProvenanceEntry]]:
        """Full derivation routes through intermediate relations."""
        return route(target_row, relation, source, self.mapping.tgds)

    @instrumented("debug.explain_missing", attrs=lambda self, expected_row,
                  relation, source: {"relation": relation})
    def explain_missing(
        self, expected_row: Row, relation: str, source: Instance
    ) -> list[str]:
        """Why is an expected row *absent*?  Reports, per dependency
        that could produce the relation, which body atoms found no
        matching source data — the paper's debugging scenario of a
        mapping that silently drops data."""
        from repro.logic.formulas import Atom
        from repro.logic.homomorphism import find_homomorphism
        from repro.logic.terms import Const, Var

        reasons: list[str] = []
        for tgd in self.mapping.tgds:
            heads = [a for a in tgd.head if a.relation == relation]
            if not heads:
                continue
            for head_atom in heads:
                from repro.runtime.provenance import _head_matches

                seed = _head_matches(head_atom, expected_row, {})
                if seed is None:
                    reasons.append(
                        f"[{tgd.name or tgd}] head cannot produce the row "
                        "(constant mismatch)"
                    )
                    continue
                partial = {
                    var: value
                    for var, value in seed.items()
                    if var in tgd.frontier()
                }
                if find_homomorphism(tgd.body, source, partial=partial):
                    reasons.append(
                        f"[{tgd.name or tgd}] would produce the row — "
                        "it should be present; check execution"
                    )
                    continue
                # Identify the first body atom with no match at all.
                for atom in tgd.body:
                    if find_homomorphism([atom], source, partial=partial) is None:
                        reasons.append(
                            f"[{tgd.name or tgd}] no source row matches "
                            f"{atom} under {_pretty(partial)}"
                        )
                        break
                else:
                    reasons.append(
                        f"[{tgd.name or tgd}] atoms match individually but "
                        "their join is empty"
                    )
        return reasons or [f"no dependency produces relation {relation!r}"]


def _pretty(assignment: dict) -> str:
    return "{" + ", ".join(
        f"{var.name}={value!r}" for var, value in sorted(
            assignment.items(), key=lambda item: item[0].name
        )
    ) + "}"
