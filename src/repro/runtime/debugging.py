"""Mapping debugging (paper, Section 5).

"Like any program, a mapping needs to be debugged."  The debugger
offers the two facilities the paper describes: rule-by-rule *tracing*
(the single-stepping analogue — watch each constraint/rule fire and
inspect intermediate results) and *routes* (provenance-based
explanation of how target data was generated, as in [30]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.algebra.evaluator import evaluate
from repro.instances.database import Instance, Row
from repro.mappings.mapping import Mapping
from repro.operators.transgen import (
    ExchangeTransformation,
    TransformationPair,
    transgen,
)
from repro.runtime.provenance import ProvenanceEntry, lineage, route


@dataclass
class TraceStep:
    """One rule's contribution during a traced execution."""

    label: str
    output_relation: str
    row_count: int
    sample: list[Row] = field(default_factory=list)

    def describe(self) -> str:
        preview = f", e.g. {self.sample[0]}" if self.sample else ""
        return f"{self.label}: {self.output_relation} ← {self.row_count} rows{preview}"


class MappingDebugger:
    """Stepwise inspection of a mapping's execution."""

    def __init__(self, mapping: Mapping, sample_size: int = 3):
        self.mapping = mapping
        self.sample_size = sample_size

    # ------------------------------------------------------------------
    def trace(self, source: Instance) -> list[TraceStep]:
        """Execute the mapping rule by rule, recording row counts and
        samples — the single-stepping view."""
        transformation = transgen(self.mapping)
        steps: list[TraceStep] = []
        if isinstance(transformation, TransformationPair):
            for relation, expr in transformation.query_view.rules:
                rows = evaluate(expr, source, self.mapping.source)
                steps.append(
                    TraceStep(
                        label=f"view:{relation}",
                        output_relation=relation,
                        row_count=len(rows),
                        sample=rows[: self.sample_size],
                    )
                )
            return steps
        # tgd path: chase one dependency at a time against a growing
        # instance, so each step shows that rule's marginal effect.
        from repro.logic.chase import chase

        working = source.copy()
        for tgd in self.mapping.tgds:
            before = working.total_rows()
            result = chase(working, [tgd], copy=False)
            added = working.total_rows() - before
            head_relation = next(iter(tgd.head)).relation if tgd.head else "?"
            rows = working.rows(head_relation)
            steps.append(
                TraceStep(
                    label=f"tgd:{tgd.name or tgd}",
                    output_relation=head_relation,
                    row_count=added,
                    sample=rows[: self.sample_size],
                )
            )
        return steps

    # ------------------------------------------------------------------
    def explain_row(
        self, target_row: Row, relation: str, source: Instance
    ) -> list[ProvenanceEntry]:
        """Why is this row in the target?  (why-provenance)"""
        return lineage(target_row, relation, source, self.mapping.tgds)

    def explain_route(
        self, target_row: Row, relation: str, source: Instance
    ) -> list[list[ProvenanceEntry]]:
        """Full derivation routes through intermediate relations."""
        return route(target_row, relation, source, self.mapping.tgds)

    def explain_missing(
        self, expected_row: Row, relation: str, source: Instance
    ) -> list[str]:
        """Why is an expected row *absent*?  Reports, per dependency
        that could produce the relation, which body atoms found no
        matching source data — the paper's debugging scenario of a
        mapping that silently drops data."""
        from repro.logic.formulas import Atom
        from repro.logic.homomorphism import find_homomorphism
        from repro.logic.terms import Const, Var

        reasons: list[str] = []
        for tgd in self.mapping.tgds:
            heads = [a for a in tgd.head if a.relation == relation]
            if not heads:
                continue
            for head_atom in heads:
                from repro.runtime.provenance import _head_matches

                seed = _head_matches(head_atom, expected_row, {})
                if seed is None:
                    reasons.append(
                        f"[{tgd.name or tgd}] head cannot produce the row "
                        "(constant mismatch)"
                    )
                    continue
                partial = {
                    var: value
                    for var, value in seed.items()
                    if var in tgd.frontier()
                }
                if find_homomorphism(tgd.body, source, partial=partial):
                    reasons.append(
                        f"[{tgd.name or tgd}] would produce the row — "
                        "it should be present; check execution"
                    )
                    continue
                # Identify the first body atom with no match at all.
                for atom in tgd.body:
                    if find_homomorphism([atom], source, partial=partial) is None:
                        reasons.append(
                            f"[{tgd.name or tgd}] no source row matches "
                            f"{atom} under {_pretty(partial)}"
                        )
                        break
                else:
                    reasons.append(
                        f"[{tgd.name or tgd}] atoms match individually but "
                        "their join is empty"
                    )
        return reasons or [f"no dependency produces relation {relation!r}"]


def _pretty(assignment: dict) -> str:
    return "{" + ", ".join(
        f"{var.name}={value!r}" for var, value in sorted(
            assignment.items(), key=lambda item: item[0].name
        )
    ) + "}"
