"""Peer-to-peer mapping chains (paper, Section 5).

"There is a chain of mappings from the schema to be queried, T, to a
source S1, which is mapped to a source S2, etc.  The mapping design
tool might optimize a query on T to collapse the chain into direct
mappings … the runtime needs to be able to process a query on T by
propagating it through the chain."

:class:`PeerNetwork` supports both execution styles the paper
describes: *propagation* (exchange hop by hop along the chain) and
*collapsed* (compose the chain's mappings into one and exchange once)
— and the benchmark compares them.  For tgd chains the network can
also *materialize* a chain (:meth:`~PeerNetwork.materialize_chain`)
and then push :class:`~repro.runtime.updates.UpdateSet` s hop-to-hop
(:meth:`~PeerNetwork.propagate_update`): each hop maintains its
materialized target incrementally and emits the target-side delta as
the next hop's input, so steady-state cost tracks the delta, not the
chain's data volume.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import MappingError
from repro.instances.database import Instance
from repro.mappings.mapping import Mapping
from repro.metamodel.schema import Schema
from repro.observability.instrument import instrumented
from repro.observability.state import STATE as _OBS
from repro.operators.compose import compose
from repro.runtime.executor import exchange
from repro.runtime.incremental import MaterializedExchange
from repro.runtime.updates import UpdateSet, apply_update_in_place


@dataclass
class Peer:
    name: str
    schema: Schema
    data: Optional[Instance] = None


class PeerNetwork:
    """Peers connected by mappings, queried through chains.

    ``engine`` selects the algebra execution engine for every exchange
    in the network (None → process default)."""

    def __init__(self, engine: Optional[str] = None):
        self.peers: dict[str, Peer] = {}
        self.mappings: dict[tuple[str, str], Mapping] = {}
        self.engine = engine
        # (source, target) → materialized hops, built lazily by
        # materialize_chain and maintained by propagate_update.
        self._materialized: dict[
            tuple[str, str], list[MaterializedExchange]
        ] = {}

    def add_peer(self, name: str, schema: Schema,
                 data: Optional[Instance] = None) -> Peer:
        if name in self.peers:
            raise MappingError(f"duplicate peer {name!r}")
        peer = Peer(name=name, schema=schema, data=data)
        self.peers[name] = peer
        return peer

    def add_mapping(self, source_peer: str, target_peer: str,
                    mapping: Mapping) -> None:
        if source_peer not in self.peers or target_peer not in self.peers:
            raise MappingError("both peers must exist before mapping them")
        self.mappings[(source_peer, target_peer)] = mapping

    # ------------------------------------------------------------------
    def find_chain(self, source_peer: str, target_peer: str) -> list[Mapping]:
        """Shortest mapping chain from source to target (BFS)."""
        frontier: list[tuple[str, list[Mapping]]] = [(source_peer, [])]
        seen = {source_peer}
        while frontier:
            current, path = frontier.pop(0)
            if current == target_peer:
                return path
            for (from_peer, to_peer), mapping in self.mappings.items():
                if from_peer == current and to_peer not in seen:
                    seen.add(to_peer)
                    frontier.append((to_peer, path + [mapping]))
        raise MappingError(
            f"no mapping chain from {source_peer!r} to {target_peer!r}"
        )

    @instrumented("runtime.p2p.collapse", attrs=lambda self, source_peer,
                  target_peer: {"source": source_peer,
                                "target": target_peer})
    def collapse_chain(self, source_peer: str, target_peer: str) -> Mapping:
        """Compose the chain into one direct mapping (the design-time
        optimization the paper mentions)."""
        chain = self.find_chain(source_peer, target_peer)
        if not chain:
            raise MappingError("peers coincide; nothing to collapse")
        collapsed = chain[0]
        for mapping in chain[1:]:
            collapsed = compose(collapsed, mapping)
        return collapsed

    # ------------------------------------------------------------------
    @instrumented("runtime.p2p.propagate", attrs=lambda self, source_peer,
                  target_peer: {"source": source_peer,
                                "target": target_peer})
    def propagate(self, source_peer: str, target_peer: str) -> Instance:
        """Exchange the source peer's data hop by hop to the target."""
        peer = self.peers[source_peer]
        if peer.data is None:
            raise MappingError(f"peer {source_peer!r} holds no data")
        current = peer.data
        for mapping in self.find_chain(source_peer, target_peer):
            current = exchange(mapping, current, engine=self.engine)
        return current

    @instrumented("runtime.p2p.materialize_chain",
                  attrs=lambda self, source_peer, target_peer: {
                      "source": source_peer, "target": target_peer})
    def materialize_chain(
        self, source_peer: str, target_peer: str
    ) -> list[MaterializedExchange]:
        """Materialize every hop of the chain (tgd mappings only): hop
        *i*'s chased target feeds hop *i+1* as its source.  The chain
        is cached; :meth:`propagate_update` maintains it in place."""
        key = (source_peer, target_peer)
        cached = self._materialized.get(key)
        if cached is not None:
            return cached
        peer = self.peers[source_peer]
        if peer.data is None:
            raise MappingError(f"peer {source_peer!r} holds no data")
        hops: list[MaterializedExchange] = []
        current = peer.data
        for mapping in self.find_chain(source_peer, target_peer):
            hop = MaterializedExchange(mapping, current)
            hops.append(hop)
            current = hop.target_instance(copy=False)
        self._materialized[key] = hops
        return hops

    @instrumented("runtime.p2p.propagate_update",
                  attrs=lambda self, source_peer, target_peer, update: {
                      "source": source_peer, "target": target_peer,
                      "update.size": update.size()})
    def propagate_update(self, source_peer: str, target_peer: str,
                         update: UpdateSet) -> UpdateSet:
        """Push a source-peer update along the materialized chain:
        each hop applies the incoming delta to its materialized state
        and the resulting target-side delta becomes the next hop's
        input.  Returns the final (target-peer) delta.  The source
        peer's own data is updated in place; read the target peer's
        maintained state via :meth:`materialized_target`."""
        hops = self.materialize_chain(source_peer, target_peer)
        peer = self.peers[source_peer]
        if peer.data is not None:
            apply_update_in_place(peer.data, update)
        delta = update
        for hop in hops:
            if delta.is_empty:
                break
            delta = hop.apply(delta)
        return delta

    @instrumented("runtime.p2p.propagate_updates",
                  attrs=lambda self, source_peer, target_peer, updates, **kw: {
                      "source": source_peer, "target": target_peer,
                      "batches": len(list(updates))})
    def propagate_updates(
        self,
        source_peer: str,
        target_peer: str,
        updates: Sequence[UpdateSet],
        queue_depth: int = 4,
    ) -> list[UpdateSet]:
        """Pipeline a *sequence* of update batches along the
        materialized chain: one worker thread per hop, connected by
        bounded queues, so hop *i* applies batch *k* while hop *i−1*
        is already absorbing batch *k+1* — the chain walk is no longer
        serial across batches.  Each hop's materialized state is
        touched only by its own worker, and batches traverse every hop
        in submission order, so the result is identical to calling
        :meth:`propagate_update` once per batch.  Returns the final
        target-peer delta of each batch, in order."""
        hops = self.materialize_chain(source_peer, target_peer)
        updates = list(updates)
        peer = self.peers[source_peer]
        if peer.data is not None:
            for update in updates:
                apply_update_in_place(peer.data, update)
        if not updates:
            return []
        queues: list[queue.Queue] = [
            queue.Queue(maxsize=max(1, queue_depth))
            for _ in range(len(hops) + 1)
        ]
        failures: list[BaseException] = []

        def run_hop(index: int, hop: MaterializedExchange) -> int:
            inbox, outbox = queues[index], queues[index + 1]
            batches = 0
            while True:
                item = inbox.get()
                if item is None:
                    outbox.put(None)
                    return batches
                order, delta = item
                if not failures and not delta.is_empty:
                    try:
                        delta = hop.apply(delta)
                        batches += 1
                    except BaseException as exc:  # noqa: BLE001 - re-raised
                        failures.append(exc)
                        delta = UpdateSet()
                outbox.put((order, delta))

        def traced_hop(index: int, hop: MaterializedExchange) -> None:
            if not _OBS.enabled:
                run_hop(index, hop)
                return
            from repro.observability.tracing import tracer

            with tracer.span("runtime.p2p.hop", hop=index) as span:
                batches = run_hop(index, hop)
                span.set_attribute("batches", batches)

        # Wrapping the thread target with ``propagating(...)`` captures
        # this (caller) thread's context — the open
        # ``runtime.p2p.propagate_updates`` span — so every hop
        # thread's spans join the caller's trace.
        from repro.observability.context import propagating

        target = propagating(traced_hop)
        threads = [
            threading.Thread(
                target=target, args=(index, hop),
                name=f"p2p-hop-{index}",
            )
            for index, hop in enumerate(hops)
        ]
        for thread in threads:
            thread.start()
        results: dict[int, UpdateSet] = {}

        def collect_one() -> bool:
            item = queues[-1].get()
            if item is None:
                return False
            order, delta = item
            results[order] = delta
            return True

        emitted = 0

        def feed(item: object, in_flight: int) -> None:
            # Feed with backpressure: drain finished batches while the
            # first queue is full, so the feeder never deadlocks with
            # hops that are themselves blocked on a full tail queue
            # (``in_flight`` = batches fed but not yet collected).
            nonlocal emitted
            wait_start = None
            while True:
                try:
                    queues[0].put(item, timeout=0.05)
                    if wait_start is not None and _OBS.enabled:
                        from repro.observability.journal import (
                            record_backpressure,
                        )

                        record_backpressure(
                            "p2p.feed",
                            time.perf_counter() - wait_start,
                            source=source_peer,
                            target=target_peer,
                        )
                    return
                except queue.Full:
                    if wait_start is None:
                        wait_start = time.perf_counter()
                    if emitted < in_flight and collect_one():
                        emitted += 1

        for order, update in enumerate(updates):
            feed((order, update), order)
        feed(None, len(updates))
        while collect_one():
            emitted += 1
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
        return [results[order] for order in range(len(updates))]

    def materialized_target(self, source_peer: str,
                            target_peer: str) -> Instance:
        """The maintained target-peer instance of a materialized
        chain (a copy; the chain keeps the live state)."""
        hops = self.materialize_chain(source_peer, target_peer)
        return hops[-1].target_instance()

    @instrumented("runtime.p2p.propagate_collapsed",
                  attrs=lambda self, source_peer, target_peer: {
                      "source": source_peer, "target": target_peer})
    def propagate_collapsed(self, source_peer: str, target_peer: str) -> Instance:
        """Exchange once through the composed chain."""
        peer = self.peers[source_peer]
        if peer.data is None:
            raise MappingError(f"peer {source_peer!r} holds no data")
        return exchange(
            self.collapse_chain(source_peer, target_peer),
            peer.data,
            engine=self.engine,
        )
