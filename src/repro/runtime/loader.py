"""Batch loading through a mapping (paper, Section 5).

"Since most database systems have a high performance interface for
batch loading, in many scenarios it would be more efficient to load
data directly into S rather than through T.  This requires
transforming the data to be loaded via mapST into the format required
by S's loader."

:class:`BatchLoader` accepts target-format rows in batches, translates
each batch through the mapping's update view, defers integrity
validation to the end of the load (the batch-loading idiom), and
reports a load summary.  A load can also append *through a
materialized exchange* (``flush(materialized=...)``): the translated
batch is forwarded as an :class:`~repro.runtime.updates.UpdateSet` so
a downstream :class:`~repro.runtime.incremental.MaterializedExchange`
maintains its chased target incrementally instead of re-exchanging
the grown source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TransformationError
from repro.instances.database import Instance, Row, freeze_row
from repro.instances.validation import violations
from repro.mappings.mapping import Mapping
from repro.observability.instrument import instrumented
from repro.operators.transgen import TransformationPair, transgen
from repro.runtime.incremental import MaterializedExchange
from repro.runtime.updates import UpdateSet


@dataclass
class LoadReport:
    """Summary of a completed batch load."""

    batches: int
    target_rows: int
    source_rows: dict[str, int]
    violations: list[str]

    @property
    def ok(self) -> bool:
        return not self.violations


class BatchLoader:
    """Accumulates target-format data and loads it source-side."""

    def __init__(
        self,
        mapping: Mapping,
        validate: bool = True,
        engine: Optional[str] = None,
    ):
        views = transgen(mapping)
        if not isinstance(views, TransformationPair):
            raise TransformationError(
                "batch loading needs a bidirectional equality mapping "
                "(an update view)"
            )
        self.mapping = mapping
        self.views = views
        self.validate = validate
        self.engine = engine
        self._staging = Instance(mapping.target)
        self._batches = 0
        self._target_rows = 0

    # ------------------------------------------------------------------
    @instrumented("runtime.load.stage", attrs=lambda self, entity,
                  rows, *a, **k: {"entity": entity, "rows": len(rows)})
    def stage(self, entity: str, rows: list[dict],
              typed: Optional[bool] = None) -> None:
        """Stage one batch of target-format rows.

        ``typed`` forces (or suppresses) routing through the entity
        hierarchy; by default it is inferred from the schema.
        """
        entity_obj = self.mapping.target.entity(entity)
        is_typed = (
            typed
            if typed is not None
            else entity_obj.parent is not None or bool(entity_obj.children())
        )
        for row in rows:
            if is_typed:
                self._staging.insert_object(entity, **row)
            else:
                self._staging.insert(entity, row)
            self._target_rows += 1
        self._batches += 1

    @instrumented("runtime.load.flush", attrs=lambda self,
                  destination=None, materialized=None: {
                      "mapping.name": self.mapping.name})
    def flush(
        self,
        destination: Optional[Instance] = None,
        materialized: Optional[MaterializedExchange] = None,
    ) -> tuple[Instance, LoadReport]:
        """Translate all staged data into source format in one pass and
        (optionally) append to an existing source instance; integrity
        is validated once, at the end.

        With ``materialized``, the translated batch is appended to the
        materialized exchange's source as an insert-only
        :class:`UpdateSet` — only rows not already present are
        forwarded (matching the plain path's deduplication) — so its
        chased target is maintained incrementally.  The returned
        instance is the exchange's grown source state.
        """
        loaded = self.views.update_view.apply(self._staging, engine=self.engine)
        if materialized is not None:
            update = UpdateSet()
            current = materialized.source_instance(copy=False)
            for relation, rows in loaded.relations.items():
                present = {
                    freeze_row(r) for r in current.rows(relation)
                }
                for row in rows:
                    frozen = freeze_row(row)
                    if frozen in present:
                        continue
                    present.add(frozen)
                    update.inserts.setdefault(relation, []).append(
                        dict(row)
                    )
            if not update.is_empty:
                materialized.apply(update)
            loaded = materialized.source_instance()
        elif destination is not None:
            loaded = destination.union(loaded).deduplicated()
            loaded.schema = self.mapping.source
        problems: list[str] = []
        if self.validate:
            problems = violations(loaded, self.mapping.source)
        report = LoadReport(
            batches=self._batches,
            target_rows=self._target_rows,
            source_rows={
                relation: len(rows)
                for relation, rows in loaded.relations.items()
            },
            violations=problems,
        )
        self._staging = Instance(self.mapping.target)
        self._batches = 0
        self._target_rows = 0
        return loaded, report
