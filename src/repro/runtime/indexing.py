"""Keyword indexing through mappings (paper, Section 5, "Indexing").

"It may be desirable to index data that is exposed via T to support
keyword search.  However, … the data physically resides in the data
sources which have schemas S.  For efficiency reasons, it is probably
best to index the data sources and derive a mapping that enables the
index to be accessed via T."

:class:`KeywordIndex` does exactly that: it builds an inverted index
over the *source* rows, and at query time maps each hit into the
*target* context — the entity and rows it contributes to — using a
derivation index precomputed from the mapping (lineage for tgd
mappings; fragment analysis for equality mappings).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.instances.database import TYPE_FIELD, Instance, Row, freeze_row
from repro.mappings.mapping import Mapping
from repro.runtime.executor import exchange
from repro.runtime.provenance import lineage

_TOKEN = re.compile(r"[A-Za-z0-9]+")


def _tokens(value: object) -> set[str]:
    if value is None:
        return set()
    return {t.lower() for t in _TOKEN.findall(str(value))}


@dataclass
class SearchHit:
    """One keyword match, presented in the target schema's context."""

    target_relation: str
    target_row: Row
    source_relation: str
    source_row: Row
    matched: tuple[str, ...]
    score: float

    def describe(self) -> str:
        return (
            f"{self.target_relation}{_strip(self.target_row)} "
            f"(matched {', '.join(self.matched)}; "
            f"stored in {self.source_relation})"
        )


def _strip(row: Row) -> dict:
    return {k: v for k, v in row.items() if k != TYPE_FIELD}


class KeywordIndex:
    """An inverted index over the source, searchable in target terms."""

    def __init__(self, mapping: Mapping, source: Instance):
        self.mapping = mapping
        self.source = source
        # token → list of (relation, row index)
        self._postings: dict[str, set[tuple[str, int]]] = {}
        self._rows: dict[tuple[str, int], Row] = {}
        self._build_postings()
        # Materialize the target once and precompute which target rows
        # each source row derives.
        self.target = exchange(mapping, source)
        self._derived: dict[tuple[str, frozenset], list[tuple[str, Row]]] = {}
        self._build_derivations()

    # ------------------------------------------------------------------
    def _build_postings(self) -> None:
        for relation, rows in self.source.relations.items():
            for index, row in enumerate(rows):
                key = (relation, index)
                self._rows[key] = row
                for value in row.values():
                    for token in _tokens(value):
                        self._postings.setdefault(token, set()).add(key)

    def _build_derivations(self) -> None:
        if self.mapping.tgds:
            for relation, rows in self.target.relations.items():
                for target_row in rows:
                    for entry in lineage(target_row, relation, self.source,
                                         self.mapping.tgds):
                        for source_relation, source_row in entry.source_rows:
                            key = (source_relation, freeze_row(source_row))
                            self._derived.setdefault(key, []).append(
                                (relation, target_row)
                            )
        else:
            # Equality mappings: exact derivations would require the
            # fragment analysis; the heuristic used here links a source
            # row to the target rows it shares values with, weighted
            # toward rows sharing *most* of the source's values.
            for relation, rows in self.target.relations.items():
                for target_row in rows:
                    target_values = {
                        v for k, v in target_row.items()
                        if k != TYPE_FIELD and v is not None
                    }
                    for source_relation, source_rows in (
                        self.source.relations.items()
                    ):
                        for source_row in source_rows:
                            source_values = {
                                v for v in source_row.values()
                                if v is not None
                            }
                            if not source_values:
                                continue
                            overlap = len(source_values & target_values)
                            if overlap >= max(1, len(source_values) // 2):
                                key = (source_relation,
                                       freeze_row(source_row))
                                self._derived.setdefault(key, []).append(
                                    (relation, target_row)
                                )

    # ------------------------------------------------------------------
    def search(self, query: str, limit: Optional[int] = None) -> list[SearchHit]:
        """Keyword search; hits are ranked by the number of matched
        terms and presented in target context."""
        terms = sorted(_tokens(query))
        if not terms:
            return []
        match_counts: dict[tuple[str, int], list[str]] = {}
        for term in terms:
            for key in self._postings.get(term, set()):
                match_counts.setdefault(key, []).append(term)
        hits: list[SearchHit] = []
        for key, matched in match_counts.items():
            relation, _ = key
            source_row = self._rows[key]
            derivations = self._derived.get(
                (relation, freeze_row(source_row)), []
            )
            score = len(matched) / len(terms)
            if derivations:
                for target_relation, target_row in derivations:
                    hits.append(
                        SearchHit(
                            target_relation=target_relation,
                            target_row=target_row,
                            source_relation=relation,
                            source_row=source_row,
                            matched=tuple(matched),
                            score=score,
                        )
                    )
            else:
                hits.append(
                    SearchHit(
                        target_relation="(not exposed)",
                        target_row={},
                        source_relation=relation,
                        source_row=source_row,
                        matched=tuple(matched),
                        score=score * 0.5,
                    )
                )
        hits.sort(key=lambda h: (-h.score, h.target_relation))
        seen: set = set()
        unique: list[SearchHit] = []
        for hit in hits:
            key = (hit.target_relation, freeze_row(hit.target_row))
            if key in seen:
                continue
            seen.add(key)
            unique.append(hit)
        return unique[:limit] if limit is not None else unique

    def vocabulary_size(self) -> int:
        return len(self._postings)
