"""Transformation execution and data exchange."""

from __future__ import annotations

from typing import Optional

from repro.instances.database import Instance
from repro.logic.chase import ChaseStats
from repro.mappings.mapping import Mapping
from repro.observability.state import STATE as _OBS
from repro.observability.tracing import tracer
from repro.operators.transgen import (
    Transformation,
    TransformationPair,
    transgen,
)


def execute(
    transformation, instance: Instance, engine: Optional[str] = None
) -> Instance:
    """Run any transformation produced by TransGen.

    For a :class:`TransformationPair`, the *query view* is executed —
    the direction that materializes the entity/target side.  ``engine``
    selects the algebra execution engine (compiled/interpreted; None →
    process default).
    """
    if isinstance(transformation, TransformationPair):
        return transformation.query_view.apply(instance, engine=engine)
    if isinstance(transformation, Transformation):
        return transformation.apply(instance, engine=engine)
    raise TypeError(f"not a transformation: {transformation!r}")


def exchange(
    mapping: Mapping,
    source: Instance,
    compute_core: bool = False,
    engine: Optional[str] = None,
) -> Instance:
    """One-call data exchange: TransGen + execute.

    For tgd mappings this computes a universal solution (optionally the
    core); for equality mappings it evaluates the generated query view.
    """
    produced, _ = exchange_with_stats(mapping, source, compute_core, engine)
    return produced


def exchange_with_stats(
    mapping: Mapping,
    source: Instance,
    compute_core: bool = False,
    engine: Optional[str] = None,
) -> tuple[Instance, Optional[ChaseStats]]:
    """:func:`exchange`, additionally returning the chase's
    :class:`ChaseStats` (``None`` when no chase ran — equality mappings
    and so-tgd execution).  With observability enabled the same numbers
    also land in the metrics registry (``chase.*``) via the chase."""
    attributes = (
        {
            "mapping": mapping.name,
            "mapping.constraints": mapping.constraint_count(),
            "source.rows": source.total_rows(),
        }
        if _OBS.enabled
        else {}
    )
    with tracer.span("runtime.exchange", **attributes) as span:
        transformation = transgen(mapping, compute_core=compute_core)
        produced = execute(transformation, source, engine=engine)
        stats = getattr(transformation, "last_chase_stats", None)
        if span is not None:
            span.set_attribute("target.rows", produced.total_rows())
    return produced, stats
