"""Transformation execution and data exchange."""

from __future__ import annotations

from typing import Optional

from repro.instances.database import Instance
from repro.mappings.mapping import Mapping
from repro.operators.transgen import (
    ExchangeTransformation,
    Transformation,
    TransformationPair,
    transgen,
)


def execute(transformation, instance: Instance) -> Instance:
    """Run any transformation produced by TransGen.

    For a :class:`TransformationPair`, the *query view* is executed —
    the direction that materializes the entity/target side.
    """
    if isinstance(transformation, TransformationPair):
        return transformation.query_view.apply(instance)
    if isinstance(transformation, Transformation):
        return transformation.apply(instance)
    raise TypeError(f"not a transformation: {transformation!r}")


def exchange(
    mapping: Mapping, source: Instance, compute_core: bool = False
) -> Instance:
    """One-call data exchange: TransGen + execute.

    For tgd mappings this computes a universal solution (optionally the
    core); for equality mappings it evaluates the generated query view.
    """
    transformation = transgen(mapping, compute_core=compute_core)
    if isinstance(transformation, TransformationPair):
        return transformation.query_view.apply(source)
    return transformation.apply(source)
