"""Transformation execution and data exchange."""

from __future__ import annotations

from typing import Optional

from repro.instances.database import Instance
from repro.logic.chase import ChaseStats
from repro.mappings.mapping import Mapping
from repro.operators.transgen import (
    ExchangeTransformation,
    Transformation,
    TransformationPair,
    transgen,
)


def execute(transformation, instance: Instance) -> Instance:
    """Run any transformation produced by TransGen.

    For a :class:`TransformationPair`, the *query view* is executed —
    the direction that materializes the entity/target side.
    """
    if isinstance(transformation, TransformationPair):
        return transformation.query_view.apply(instance)
    if isinstance(transformation, Transformation):
        return transformation.apply(instance)
    raise TypeError(f"not a transformation: {transformation!r}")


def exchange(
    mapping: Mapping, source: Instance, compute_core: bool = False
) -> Instance:
    """One-call data exchange: TransGen + execute.

    For tgd mappings this computes a universal solution (optionally the
    core); for equality mappings it evaluates the generated query view.
    """
    transformation = transgen(mapping, compute_core=compute_core)
    if isinstance(transformation, TransformationPair):
        return transformation.query_view.apply(source)
    return transformation.apply(source)


def exchange_with_stats(
    mapping: Mapping, source: Instance, compute_core: bool = False
) -> tuple[Instance, Optional[ChaseStats]]:
    """:func:`exchange`, additionally returning the chase's
    :class:`ChaseStats` (``None`` when no chase ran — equality mappings
    and so-tgd execution)."""
    transformation = transgen(mapping, compute_core=compute_core)
    if isinstance(transformation, TransformationPair):
        return transformation.query_view.apply(source), None
    produced = transformation.apply(source)
    stats = getattr(transformation, "last_chase_stats", None)
    return produced, stats
