"""Answering target-schema queries through a mapping.

Two regimes, matching the mapping language:

* **equality / view mappings** — *view unfolding*: the target query's
  scans are substituted by the generated query-view expressions, so the
  query runs directly against the source database (the classical
  wrapper / query-mediator execution path);
* **(SO-)tgd mappings** — *certain answers*: a universal solution is
  materialized by the chase (cached until the source changes) and
  conjunctive queries are naive-evaluated on it, discarding answers
  with labeled nulls (paper, Section 4).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.algebra.evaluator import evaluate
from repro.algebra.expressions import RelExpr
from repro.algebra.optimizer import optimize
from repro.errors import TransformationError
from repro.instances.database import Instance, Row
from repro.logic.certain_answers import certain_answers
from repro.logic.formulas import ConjunctiveQuery
from repro.mappings.mapping import Mapping
from repro.observability.instrument import instrumented
from repro.operators.compose import unfold_scans
from repro.operators.transgen import TransformationPair, transgen


class QueryProcessor:
    """Query answering over one mapping, source database attached.

    ``engine`` picks the algebra execution engine for every query this
    processor answers (``compiled``/``interpreted``; None → process
    default, see :func:`repro.algebra.evaluate`).  Unfolded views are
    structurally stable, so the compiled engine's plan cache makes
    repeated queries through one processor compile-once/run-many.
    """

    def __init__(
        self,
        mapping: Mapping,
        source: Instance,
        engine: Optional[str] = None,
    ):
        self.mapping = mapping
        self.source = source
        self.engine = engine
        self._views: Optional[dict[str, RelExpr]] = None
        self._universal: Optional[Instance] = None

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop cached state after a source change."""
        self._universal = None

    def _view_definitions(self) -> dict[str, RelExpr]:
        """Relation/entity name → source-side view expression.

        Beyond the generated rules (keyed by root entity), every
        subtype entity gets a definition restricting the root view by
        ``$type`` membership, so ``EntityScan("Employee")`` unfolds too.
        """
        if self._views is None:
            transformation = transgen(self.mapping)
            if not isinstance(transformation, TransformationPair):
                raise TransformationError(
                    "view unfolding requires an equality mapping"
                )
            views = dict(transformation.query_view.rules)
            for entity in self.mapping.target.entities.values():
                if entity.name in views or entity.parent is None:
                    continue
                root = entity.root()
                if root.name not in views:
                    continue
                views[entity.name] = _restrict_to_type(
                    views[root.name], entity
                )
            self._views = views
        return self._views

    def _universal_solution(self) -> Instance:
        if self._universal is None:
            from repro.runtime.executor import exchange

            self._universal = exchange(
                self.mapping, self.source, engine=self.engine
            )
        return self._universal

    # ------------------------------------------------------------------
    @instrumented("runtime.query.algebra", attrs=lambda self, query: {
        "mapping.name": self.mapping.name,
        "source.rows": self.source.total_rows()})
    def answer_algebra(self, query: RelExpr) -> list[Row]:
        """Answer an algebra query phrased over the *target* schema.

        Equality mappings unfold views and evaluate on the source;
        tgd mappings evaluate against the materialized universal
        solution and drop rows containing labeled nulls.
        """
        if self.mapping.equalities:
            # Heuristic rewrites here; the cost-based join-order choice
            # happens inside evaluate's adaptive plan cache (keyed by
            # source-instance stats epoch), so it is not re-done per
            # call and EXPLAIN shows exactly the tree that runs.
            localized = _localize_type_predicates(query, self.mapping.target)
            unfolded = optimize(
                unfold_scans(localized, self._view_definitions())
            )
            return evaluate(
                unfolded, self.source, self.mapping.source, engine=self.engine
            )
        universal = self._universal_solution()
        rows = evaluate(
            query, universal, self.mapping.target, engine=self.engine
        )
        from repro.instances.labeled_null import LabeledNull

        return [
            row
            for row in rows
            if not any(isinstance(v, LabeledNull) for v in row.values())
        ]

    @instrumented("runtime.query.cq", attrs=lambda self, query,
                  *a, **k: {"mapping.name": self.mapping.name,
                            "source.rows": self.source.total_rows()})
    def answer_cq(
        self, query: Union[ConjunctiveQuery, Sequence[ConjunctiveQuery]]
    ) -> list[tuple]:
        """Certain answers of a conjunctive query over the target."""
        return certain_answers(
            query, self._universal_solution(), engine=self.engine
        )

    @instrumented("runtime.query.unfold",
                  attrs=lambda self, query: {
                      "mapping.name": self.mapping.name})
    def unfolded(self, query: RelExpr) -> RelExpr:
        """The source-side rewriting of a target query (for inspection,
        EXPLAIN-style)."""
        localized = _localize_type_predicates(query, self.mapping.target)
        return optimize(unfold_scans(localized, self._view_definitions()))

    def explain(self, query: RelExpr, no_opt: bool = False):
        """EXPLAIN: the compiled plan this processor would run for a
        target query — the unfolded source-side plan for equality
        mappings, the query over the universal solution otherwise.

        Nodes carry cardinality estimates against the instance the
        plan would actually run over; for tgd mappings that instance
        is the materialized universal solution, so estimates only
        appear once it has been computed (plain EXPLAIN never triggers
        an exchange).  ``no_opt`` skips the cost-based join-order
        phase and shows the heuristic plan (``repro explain --no-opt``
        / ``--compare``)."""
        from repro.algebra.explain import explain

        if self.mapping.equalities:
            return explain(
                self.unfolded(query),
                engine=self.engine,
                instance=self.source,
                schema=self.mapping.source,
                no_opt=no_opt,
            )
        return explain(
            query,
            engine=self.engine,
            instance=self._universal,
            schema=self.mapping.target,
            no_opt=no_opt,
        )

    def explain_analyze(self, query: RelExpr, no_opt: bool = False):
        """EXPLAIN ANALYZE: compile *and run* the plan, annotating
        every node with calls / output rows / wall time (see
        :func:`repro.algebra.explain.explain_analyze`).  tgd mappings
        profile the query over the materialized universal solution
        (null-dropping happens after the profiled plan, as in
        :meth:`answer_algebra`)."""
        from repro.algebra.explain import explain_analyze

        if self.mapping.equalities:
            return explain_analyze(
                self.unfolded(query), self.source, self.mapping.source,
                engine=self.engine, no_opt=no_opt,
            )
        return explain_analyze(
            query, self._universal_solution(), self.mapping.target,
            engine=self.engine, no_opt=no_opt,
        )


def _concrete_members(entity) -> set[str]:
    return {
        e.name for e in [entity] + entity.descendants() if not e.is_abstract
    }


def _restrict_to_type(root_view: RelExpr, entity) -> RelExpr:
    from repro.algebra import expressions as E
    from repro.algebra import scalars as S
    from repro.instances.database import TYPE_FIELD

    return E.Select(
        root_view, S.In(S.Col(TYPE_FIELD), _concrete_members(entity))
    )


def _localize_type_predicates(query: RelExpr, target_schema) -> RelExpr:
    """Rewrite ``IsOf`` predicates into schema-free ``$type IN {...}``
    membership tests, so unfolded queries evaluate correctly against
    the *source* database (which knows nothing of the target's is-a
    hierarchy)."""
    from repro.algebra import expressions as E
    from repro.algebra import scalars as S
    from repro.instances.database import TYPE_FIELD

    def rewrite_scalar(scalar):
        if isinstance(scalar, S.IsOf):
            if scalar.entity not in target_schema.entities:
                return scalar
            entity = target_schema.entity(scalar.entity)
            members = (
                {entity.name} if scalar.only else _concrete_members(entity)
            )
            return S.In(S.Col(TYPE_FIELD), members)
        if isinstance(scalar, S.And):
            return S.And(*(rewrite_scalar(p) for p in scalar.operands))
        if isinstance(scalar, S.Or):
            return S.Or(*(rewrite_scalar(p) for p in scalar.operands))
        if isinstance(scalar, S.Not):
            return S.Not(rewrite_scalar(scalar.operand))
        if isinstance(scalar, S.Case):
            return S.Case(
                [(rewrite_scalar(p), rewrite_scalar(v))
                 for p, v in scalar.whens],
                rewrite_scalar(scalar.default),
            )
        return scalar

    def rewrite(expr: RelExpr) -> RelExpr:
        if isinstance(expr, E.Select):
            return E.Select(rewrite(expr.input),
                            rewrite_scalar(expr.predicate))
        if isinstance(expr, E.Project):
            return E.Project(
                rewrite(expr.input),
                [(n, rewrite_scalar(s)) for n, s in expr.outputs],
            )
        if isinstance(expr, E.Extend):
            return E.Extend(rewrite(expr.input), expr.name,
                            rewrite_scalar(expr.scalar))
        if isinstance(expr, E.Join):
            return E.Join(rewrite(expr.left), rewrite(expr.right),
                          rewrite_scalar(expr.predicate), expr.kind,
                          expr.right_prefix)
        if isinstance(expr, E.UnionAll):
            return E.UnionAll(rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, E.Difference):
            return E.Difference(rewrite(expr.left), rewrite(expr.right))
        if isinstance(expr, E.Distinct):
            return E.Distinct(rewrite(expr.input))
        if isinstance(expr, E.Rename):
            return E.Rename(rewrite(expr.input), expr.mapping)
        if isinstance(expr, E.Sort):
            return E.Sort(rewrite(expr.input), expr.keys)
        if isinstance(expr, E.Aggregate):
            return E.Aggregate(rewrite(expr.input), expr.group_by,
                               expr.aggregations)
        return expr

    return rewrite(query)
