"""Notifications and materialized-target maintenance (paper, Section 5).

"Suppose data is materialized according to T … it may be valuable for
certain actions on data in S to produce notifications of corresponding
actions to data in T.  For update actions, this is the problem of
maintaining materialized views."

:class:`MaterializedTarget` keeps a target instance materialized over a
source, maintains it on source changes — **incrementally** for insert-
only deltas under tgd mappings (semi-naive delta chase), falling back
to full recomputation otherwise — and notifies subscribers with the
target-side delta.  The incremental-vs-recompute gap is measured in
``benchmarks/bench_runtime_services.py`` (experiment E5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.instances.database import Instance, Row, freeze_row
from repro.logic.chase import chase
from repro.logic.homomorphism import find_homomorphism
from repro.mappings.mapping import Mapping
from repro.runtime.executor import exchange
from repro.runtime.updates import UpdateSet, apply_update, instance_delta


@dataclass
class Delta:
    """A target-side change notification."""

    inserted: dict[str, list[Row]] = field(default_factory=dict)
    deleted: dict[str, list[Row]] = field(default_factory=dict)
    recomputed: bool = False  # True when maintenance fell back to full

    @property
    def is_empty(self) -> bool:
        return not self.inserted and not self.deleted

    def size(self) -> int:
        return sum(len(r) for r in self.inserted.values()) + sum(
            len(r) for r in self.deleted.values()
        )


Subscriber = Callable[[Delta], None]


class MaterializedTarget:
    """A target instance kept consistent with a changing source."""

    def __init__(self, mapping: Mapping, source: Instance):
        self.mapping = mapping
        self.source = source.copy()
        self.target = exchange(mapping, self.source)
        self._subscribers: list[Subscriber] = []
        self.maintenance_stats = {"incremental": 0, "recomputed": 0}

    def subscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.append(subscriber)

    # ------------------------------------------------------------------
    def on_source_change(self, update: UpdateSet) -> Delta:
        """Apply a source-side update and maintain the target."""
        new_source = apply_update(self.source, update)
        if self._insert_only(update) and self.mapping.tgds and (
            self.mapping.so_tgd is None
        ):
            delta = self._incremental_insert(update, new_source)
            self.maintenance_stats["incremental"] += 1
        else:
            new_target = exchange(self.mapping, new_source)
            change = instance_delta(self.target, new_target)
            delta = Delta(
                inserted=change.inserts,
                deleted=change.deletes,
                recomputed=True,
            )
            self.target = new_target
            self.maintenance_stats["recomputed"] += 1
        self.source = new_source
        if not delta.is_empty:
            for subscriber in self._subscribers:
                subscriber(delta)
        return delta

    @staticmethod
    def _insert_only(update: UpdateSet) -> bool:
        return not update.deletes

    def _incremental_insert(
        self, update: UpdateSet, new_source: Instance
    ) -> Delta:
        """Semi-naive maintenance for insert-only source deltas: only
        dependency triggers that touch at least one new row can add
        target rows, so chase over (old ∪ new) but skip triggers fully
        inside the old data by seeding from the delta rows."""
        inserted: dict[str, list[Row]] = {}
        existing = {
            relation: {freeze_row(r) for r in rows}
            for relation, rows in self.target.relations.items()
        }
        from repro.logic.homomorphism import iter_homomorphisms
        from repro.logic.terms import Const, Var
        from repro.instances.labeled_null import NullFactory

        factory = NullFactory(
            max((n.label for n in self.target.nulls()), default=-1) + 1
        )
        combined = new_source.copy()
        # Make target rows visible for head-satisfaction tests.
        for relation, rows in self.target.relations.items():
            combined.relations.setdefault(relation, []).extend(
                dict(r) for r in rows
            )
        delta_rows = {
            relation: [freeze_row(r) for r in rows]
            for relation, rows in update.inserts.items()
        }
        for tgd in self.mapping.tgds:
            relevant = any(
                atom.relation in delta_rows for atom in tgd.body
            )
            if not relevant:
                continue
            for assignment in iter_homomorphisms(tgd.body, combined):
                if not self._touches_delta(tgd, assignment, combined,
                                           delta_rows):
                    continue
                partial = {
                    var: value
                    for var, value in assignment.items()
                    if var in tgd.frontier()
                }
                if find_homomorphism(tgd.head, combined, partial=partial):
                    continue
                invented: dict[Var, object] = {}
                for atom in tgd.head:
                    row: Row = {}
                    for name, term in atom.args:
                        if isinstance(term, Const):
                            row[name] = term.value
                        elif term in assignment:
                            row[name] = assignment[term]
                        else:
                            if term not in invented:
                                invented[term] = factory.fresh(
                                    hint=f"maint.{term.name}"
                                )
                            row[name] = invented[term]
                    frozen = freeze_row(row)
                    if frozen not in existing.setdefault(atom.relation, set()):
                        existing[atom.relation].add(frozen)
                        inserted.setdefault(atom.relation, []).append(row)
                        self.target.insert(atom.relation, row)
                        combined.insert(atom.relation, row)
        return Delta(inserted=inserted)

    @staticmethod
    def _touches_delta(tgd, assignment, combined, delta_rows) -> bool:
        """Does this trigger use at least one newly inserted row?"""
        for atom in tgd.body:
            if atom.relation not in delta_rows:
                continue
            from repro.logic.terms import Const

            image = {}
            usable = True
            for name, term in atom.args:
                if isinstance(term, Const):
                    image[name] = term.value
                elif term in assignment:
                    image[name] = assignment[term]
                else:
                    usable = False
            if not usable:
                continue
            for frozen in delta_rows[atom.relation]:
                row = dict(frozen)
                if all(row.get(k) == v for k, v in image.items()):
                    return True
        return False
