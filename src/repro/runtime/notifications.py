"""Notifications and materialized-target maintenance (paper, Section 5).

"Suppose data is materialized according to T … it may be valuable for
certain actions on data in S to produce notifications of corresponding
actions to data in T.  For update actions, this is the problem of
maintaining materialized views."

:class:`MaterializedTarget` keeps a target instance materialized over a
source, maintains it on source changes, and notifies subscribers with
the target-side delta.  For tgd mappings the maintenance is fully
incremental — inserts *and* deletes — through
:class:`~repro.runtime.incremental.MaterializedExchange` (delta chase
for inserts, counting/DRed over-delete-and-rederive for deletes).
Equality-only and so-tgd mappings, plus any maintenance round that
trips the egd-rollback safety check, fall back to full recomputation;
the delta's ``recomputed`` flag reports which path ran.  The
incremental-vs-recompute gap is measured in
``benchmarks/bench_runtime_services.py`` (experiment E5) and
``benchmarks/bench_incremental_exchange.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.instances.database import Instance, Row
from repro.mappings.mapping import Mapping
from repro.runtime.executor import exchange
from repro.runtime.incremental import MaterializedExchange
from repro.runtime.updates import UpdateSet, apply_update, instance_delta


@dataclass
class Delta:
    """A target-side change notification."""

    inserted: dict[str, list[Row]] = field(default_factory=dict)
    deleted: dict[str, list[Row]] = field(default_factory=dict)
    recomputed: bool = False  # True when maintenance fell back to full

    @property
    def is_empty(self) -> bool:
        return not self.inserted and not self.deleted

    def size(self) -> int:
        return sum(len(r) for r in self.inserted.values()) + sum(
            len(r) for r in self.deleted.values()
        )


Subscriber = Callable[[Delta], None]


class MaterializedTarget:
    """A target instance kept consistent with a changing source.

    ``source`` and ``target`` are live views of the maintained state;
    treat them as read-only — mutate through :meth:`on_source_change`.
    ``incremental=False`` forces full recomputation on every change
    (the baseline lane in experiment E5).
    """

    def __init__(self, mapping: Mapping, source: Instance,
                 incremental: bool = True):
        self.mapping = mapping
        self._exchange: Optional[MaterializedExchange] = None
        if incremental and mapping.so_tgd is None and mapping.tgds:
            self._exchange = MaterializedExchange(mapping, source)
            self.source = self._exchange.source_instance(copy=False)
            self.target = self._exchange.target_instance(copy=False)
        else:
            self.source = source.copy()
            self.target = exchange(mapping, self.source)
        self._subscribers: list[Subscriber] = []
        self.maintenance_stats = {"incremental": 0, "recomputed": 0}

    def subscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.append(subscriber)

    # ------------------------------------------------------------------
    def on_source_change(self, update: UpdateSet) -> Delta:
        """Apply a source-side update and maintain the target."""
        if self._exchange is not None:
            fallbacks = self._exchange.stats["full_reexchange"]
            change = self._exchange.apply(update)
            recomputed = (
                self._exchange.stats["full_reexchange"] > fallbacks
            )
            delta = Delta(
                inserted=change.inserts,
                deleted=change.deletes,
                recomputed=recomputed,
            )
            self.source = self._exchange.source_instance(copy=False)
            self.target = self._exchange.target_instance(copy=False)
        else:
            new_source = apply_update(self.source, update)
            new_target = exchange(self.mapping, new_source)
            change = instance_delta(self.target, new_target)
            delta = Delta(
                inserted=change.inserts,
                deleted=change.deletes,
                recomputed=True,
            )
            self.target = new_target
            self.source = new_source
        key = "recomputed" if delta.recomputed else "incremental"
        self.maintenance_stats[key] += 1
        if not delta.is_empty:
            for subscriber in self._subscribers:
                subscriber(delta)
        return delta
