"""Synchronization logic (paper, Section 5, "Synchronization logic").

"Data replication rules may be stated in terms of T, e.g., that complex
objects in schema T1 should be replicated to corresponding complex
objects in T2.  For efficiency, it may be better to translate the rules
into equivalent rules on finer-grained (e.g., relational) data in the
corresponding sources S1 and S2 to be executed there."

:class:`Synchronizer` holds two endpoints, each a (bidirectional
mapping, source instance) pair exposing the same logical target schema,
plus object-level :class:`ReplicationRule` s.  :meth:`synchronize`
translates the rules into *source-level* deltas: it reads the matching
objects from S1 through the first endpoint's query view, converts them
to S2's storage format through the second endpoint's update view, and
applies only the row-level difference.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.algebra import scalars as S
from repro.errors import ExpressivenessError, MappingError
from repro.instances.database import TYPE_FIELD, Instance, Row, freeze_row
from repro.mappings.mapping import Mapping
from repro.observability.instrument import instrumented
from repro.operators.transgen import TransformationPair, transgen
from repro.runtime.updates import (
    UpdateSet,
    apply_update_in_place,
    instance_delta,
)


@dataclass
class ReplicationRule:
    """Replicate objects of ``entity`` (optionally filtered) T1 → T2."""

    entity: str
    condition: Optional[S.Predicate] = None
    name: str = ""

    def selects(self, row: Row) -> bool:
        if self.condition is None:
            return True
        return bool(self.condition.eval(row, None))


class Endpoint:
    """One replica: a bidirectional mapping plus its source database."""

    def __init__(self, mapping: Mapping, source: Instance, name: str = ""):
        views = transgen(mapping)
        if not isinstance(views, TransformationPair):
            raise ExpressivenessError(
                "synchronization endpoints need bidirectional mappings"
            )
        self.mapping = mapping
        self.views = views
        self.source = source
        self.name = name or mapping.name

    def objects(self) -> Instance:
        materialized = self.views.query_view.apply(self.source)
        materialized.schema = self.mapping.target
        return materialized


class Synchronizer:
    """Executes replication rules at the source level."""

    def __init__(self, primary: Endpoint, replica: Endpoint):
        if set(primary.mapping.target.entities) != set(
            replica.mapping.target.entities
        ):
            raise MappingError(
                "endpoints must expose the same logical target schema"
            )
        self.primary = primary
        self.replica = replica
        self.rules: list[ReplicationRule] = []
        # Populated by synchronize(): (primary objects, desired target
        # state, update-view output) of the last full pass — the basis
        # for forward_update's incremental rounds.
        self._last_primary_objects: Optional[Instance] = None
        self._last_uncovered: Optional[list[tuple[str, Row]]] = None
        self._last_replica_source: Optional[Instance] = None

    def add_rule(
        self,
        entity: str,
        condition: Optional[S.Predicate] = None,
        name: str = "",
    ) -> ReplicationRule:
        rule = ReplicationRule(entity, condition, name)
        self.rules.append(rule)
        # Rule coverage changed: the cached uncovered set is stale.
        self._last_primary_objects = None
        self._last_uncovered = None
        self._last_replica_source = None
        return rule

    # ------------------------------------------------------------------
    def synchronize(self) -> UpdateSet:
        """Translate the object-level rules into a source-level delta on
        the replica, apply it, and return it.

        The selected objects of the primary are merged into the
        replica's current objects (rule-covered objects replaced,
        everything else preserved), then pushed through the replica's
        update view; only the row-level difference touches S2.
        """
        primary_objects = self.primary.objects()
        replica_objects = self.replica.objects()

        uncovered: list[tuple[str, Row]] = []
        for relation, rows in replica_objects.relations.items():
            for row in rows:
                if not self._covered(relation, row):
                    uncovered.append((relation, row))
        desired = self._desired_state(primary_objects, uncovered)

        new_replica_source = self.replica.views.update_view.apply(desired)
        delta = instance_delta(self.replica.source, new_replica_source)
        self.replica.source.relations = new_replica_source.relations
        self._last_primary_objects = primary_objects
        self._last_uncovered = uncovered
        self._last_replica_source = new_replica_source
        return delta

    def _desired_state(
        self,
        primary_objects: Instance,
        uncovered: list[tuple[str, Row]],
    ) -> Instance:
        """Rule-covered objects from the primary merged over the
        replica's uncovered (locally owned) objects."""
        desired = Instance(self.replica.mapping.target)
        for relation, row in uncovered:
            desired.insert(relation, row)
        for rule in self.rules:
            for row in self._matching(primary_objects, rule):
                desired.insert(_relation_of(primary_objects, rule.entity),
                               row)
        return desired.deduplicated()

    @instrumented("runtime.sync.forward_update", attrs=lambda self,
                  update: {"update.size": update.size()})
    def forward_update(self, update: UpdateSet) -> UpdateSet:
        """Apply a *primary-source-side* update and forward its effect
        to the replica incrementally; return the replica-source delta.

        Instead of re-running both views over full instances, the
        primary's query view and the replica's update view are
        re-evaluated only for the rules whose scanned relations the
        update touched (``apply_delta``), and the replica diff is
        restricted to the output relations those rules own — so cost
        tracks the update's footprint, not the database size.  The
        first call (or the first after :meth:`add_rule`) falls back to
        a full :meth:`synchronize`.
        """
        apply_update_in_place(self.primary.source, update)
        if (
            self._last_primary_objects is None
            or self._last_uncovered is None
            or self._last_replica_source is None
        ):
            return self.synchronize()
        touched = _touched_relations(update, self.primary.mapping.source)
        query_view = self.primary.views.query_view
        primary_objects = query_view.apply_delta(
            self.primary.source, self._last_primary_objects, touched
        )
        primary_objects.schema = self.primary.mapping.target
        changed = query_view.output_relations_touched_by(touched)
        desired = self._desired_state(primary_objects,
                                      self._last_uncovered)
        update_view = self.replica.views.update_view
        new_replica_source = update_view.apply_delta(
            desired, self._last_replica_source, changed
        )
        diff_scope = update_view.output_relations_touched_by(changed)
        delta = instance_delta(
            self.replica.source, new_replica_source, relations=diff_scope
        )
        self.replica.source.relations = new_replica_source.relations
        self._last_primary_objects = primary_objects
        self._last_replica_source = new_replica_source
        return delta

    def _covered(self, relation: str, row: Row) -> bool:
        """Is this replica object governed by some rule (and hence
        owned by the primary)?"""
        for rule in self.rules:
            if _object_is(self.replica.mapping.target, relation, row,
                          rule.entity) and rule.selects(row):
                return True
        return False

    def _matching(self, objects: Instance, rule: ReplicationRule) -> list[Row]:
        relation = _relation_of(objects, rule.entity)
        schema = self.primary.mapping.target
        rows = (
            objects.objects_of(rule.entity)
            if _is_hierarchical(schema, rule.entity)
            else objects.rows(relation)
        )
        return [row for row in rows if rule.selects(row)]

    def verify_converged(self) -> bool:
        """After synchronization, rule-covered objects must agree."""
        primary_objects = self.primary.objects()
        replica_objects = self.replica.objects()
        for rule in self.rules:
            relation = _relation_of(primary_objects, rule.entity)
            wanted = {
                freeze_row(r)
                for r in self._matching(primary_objects, rule)
            }
            have = {
                freeze_row(r)
                for r in replica_objects.rows(relation)
                if self._covered(relation, r)
            }
            if not wanted <= have:
                return False
        return True


class QueuedSynchronizer:
    """Asynchronous forwarding front for a :class:`Synchronizer`.

    Callers :meth:`submit` primary-side update batches and continue;
    a single worker thread applies each batch to the primary endpoint
    and forwards it to the replica (via
    :meth:`Synchronizer.forward_update`) in submission order.  The
    bounded queue provides backpressure — :meth:`submit` blocks once
    ``maxsize`` batches are pending — and the single worker serializes
    all endpoint mutation, so no synchronizer state needs locking.
    :meth:`drain` waits for the queue to empty and returns the
    replica-side deltas (raising the first forwarding error, if any).
    """

    def __init__(self, synchronizer: Synchronizer, maxsize: int = 8):
        self.synchronizer = synchronizer
        self._queue: queue.Queue = queue.Queue(maxsize=max(1, maxsize))
        self._results: list[UpdateSet] = []
        self._errors: list[BaseException] = []
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="sync-forwarder", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        from repro.observability.context import activate

        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                ctx, update = item
                if self._errors:
                    continue  # fail fast; drain() raises
                # Each batch carries the trace context captured at
                # submit time, so forwarding spans join the
                # submitter's trace (contexts can differ per batch).
                with activate(ctx):
                    self._results.append(
                        self.synchronizer.forward_update(update)
                    )
            except BaseException as exc:  # noqa: BLE001 - re-raised in drain
                self._errors.append(exc)
            finally:
                self._queue.task_done()

    def submit(self, update: UpdateSet) -> None:
        """Enqueue one primary-side batch (blocks when the queue is
        full)."""
        if self._closed:
            raise MappingError("QueuedSynchronizer is closed")
        from repro.observability.context import capture
        from repro.observability.state import STATE as _OBS

        item = (capture(), update)
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            wait_start = time.perf_counter()
            self._queue.put(item)
            if _OBS.enabled:
                from repro.observability.journal import record_backpressure

                record_backpressure(
                    "synchronizer.submit",
                    time.perf_counter() - wait_start,
                    pending=self._queue.qsize(),
                )

    def pending(self) -> int:
        return self._queue.qsize()

    def drain(self) -> list[UpdateSet]:
        """Wait until every submitted batch has been forwarded; return
        their replica-side deltas in submission order."""
        self._queue.join()
        if self._errors:
            error = self._errors[0]
            raise error
        results, self._results = self._results, []
        return results

    def close(self) -> None:
        """Drain outstanding work and stop the worker thread."""
        if self._closed:
            return
        self._closed = True
        self._queue.join()
        self._queue.put(None)
        self._thread.join()


def _touched_relations(update: UpdateSet, schema) -> set[str]:
    """Relations of ``schema`` named by the update batch ("$typed"
    inserts resolve to their entity's root extent)."""
    touched: set[str] = set()
    for relation, rows in list(update.inserts.items()) + list(
        update.deletes.items()
    ):
        if relation != "$typed":
            touched.add(relation)
            continue
        for row in rows:
            entity = str(row.get("$type", ""))
            if schema is not None and entity in schema.entities:
                touched.add(schema.entity(entity).root().name)
    return touched


def _relation_of(instance: Instance, entity: str) -> str:
    if instance.schema is not None and entity in instance.schema.entities:
        return instance.schema.entity(entity).root().name
    return entity


def _is_hierarchical(schema, entity: str) -> bool:
    if schema is None or entity not in schema.entities:
        return False
    e = schema.entity(entity)
    return e.parent is not None or bool(e.children())


def _object_is(schema, relation: str, row: Row, entity: str) -> bool:
    type_name = row.get(TYPE_FIELD)
    if type_name is not None and schema is not None and (
        str(type_name) in schema.entities and entity in schema.entities
    ):
        return schema.entity(str(type_name)).is_subtype_of(
            schema.entity(entity)
        )
    return relation == entity
