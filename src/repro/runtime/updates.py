"""Update propagation (paper, Section 5, first bullet).

"Updates on T need to be translated into updates on S via mapST."  For
bidirectional equality mappings the update view gives the translation
directly: apply the target-side update logically, run the update view,
and diff against the current source state to obtain the source-side
delta.  The roundtripping property guarantees the translated update is
*exact* — re-running the query view reproduces the updated target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ExpressivenessError, TransformationError
from repro.instances.database import Instance, Row, freeze_row
from repro.mappings.mapping import Mapping
from repro.observability.instrument import instrumented
from repro.operators.transgen import TransformationPair, transgen


@dataclass
class UpdateSet:
    """A batch of tuple-level changes to one schema's relations."""

    inserts: dict[str, list[Row]] = field(default_factory=dict)
    deletes: dict[str, list[Row]] = field(default_factory=dict)

    def insert(self, relation: str, **values: object) -> "UpdateSet":
        self.inserts.setdefault(relation, []).append(values)
        return self

    def insert_object(self, entity: str, **values: object) -> "UpdateSet":
        """Typed insert for entity hierarchies (sets ``$type``)."""
        row = {"$type": entity}
        row.update(values)
        self.inserts.setdefault("$typed", []).append(row)
        return self

    def delete(self, relation: str, **values: object) -> "UpdateSet":
        self.deletes.setdefault(relation, []).append(values)
        return self

    @property
    def is_empty(self) -> bool:
        return not self.inserts and not self.deletes

    def size(self) -> int:
        return sum(len(r) for r in self.inserts.values()) + sum(
            len(r) for r in self.deletes.values()
        )

    def describe(self) -> str:
        lines = []
        for relation, rows in sorted(self.inserts.items()):
            for row in rows:
                lines.append(f"+ {relation} {row}")
        for relation, rows in sorted(self.deletes.items()):
            for row in rows:
                lines.append(f"- {relation} {row}")
        return "\n".join(lines) or "(no changes)"


def resolve_deletes(
    instance: Instance, deletes: dict[str, list[Row]]
) -> dict[str, list[Row]]:
    """The concrete stored rows named by a batch of delete patterns.

    Patterns match by attribute subset.  Two regimes per pattern group
    (identical patterns are grouped with their multiplicity):

    * **full-row patterns** — when every matching row equals the
      pattern exactly, the group's multiplicity is honoured: *k* copies
      of the pattern remove *k* matching copies (bag semantics, so a
      delete of one duplicate removes exactly one);
    * **subset patterns** keep the historical delete-all-matches
      semantics (a pattern on a key prefix wipes every row it covers).

    Returned rows are the instance's own stored dicts, ready for
    identity-based removal via :meth:`Instance.remove_rows`.

    Candidate rows are served from the instance's persistent attribute
    indexes (one pattern attribute narrows the scan), so resolution
    cost tracks the pattern's selectivity rather than the relation
    size — the property the incremental maintenance path relies on.
    """
    resolved: dict[str, list[Row]] = {}
    for relation, patterns in deletes.items():
        rows = instance.relations.get(relation)
        if not rows:
            continue
        groups: dict[frozenset, list] = {}
        order: list[frozenset] = []
        for pattern in patterns:
            frozen = freeze_row(pattern)
            if frozen in groups:
                groups[frozen][0] += 1
            else:
                groups[frozen] = [1, pattern]
                order.append(frozen)
        taken: set[int] = set()
        chosen: list[Row] = []
        for frozen in order:
            count, pattern = groups[frozen]
            # Rows lacking an attribute only match a None pattern value
            # and are absent from that attribute's postings, so only a
            # non-None attribute may narrow via the index.
            attr = next(
                (k for k, v in pattern.items() if v is not None), None
            )
            candidates = (
                instance.index_lookup(relation, attr, pattern[attr])
                if attr is not None
                else rows
            )
            matching = [
                row
                for row in candidates
                if id(row) not in taken
                and all(row.get(k) == v for k, v in pattern.items())
            ]
            if not matching:
                continue
            if all(row == pattern for row in matching):
                matching = matching[:count]
            for row in matching:
                taken.add(id(row))
                chosen.append(row)
        if chosen:
            resolved[relation] = chosen
    return resolved


def apply_update(instance: Instance, update: UpdateSet) -> Instance:
    """A new instance with the update applied (deletes resolved by
    :func:`resolve_deletes`; typed inserts route through
    ``insert_object``)."""
    result = instance.copy()
    _apply_to(result, update)
    return result


def apply_update_in_place(instance: Instance, update: UpdateSet) -> None:
    """Apply an update batch to ``instance`` itself, retracting rows
    through :meth:`Instance.remove_rows` so persistent indexes update
    incrementally instead of being rebuilt."""
    _apply_to(instance, update)


def _apply_to(instance: Instance, update: UpdateSet) -> None:
    for relation, rows in resolve_deletes(instance, update.deletes).items():
        instance.remove_rows(relation, rows)
    for relation, rows in update.inserts.items():
        if relation == "$typed":
            for row in rows:
                values = {k: v for k, v in row.items() if k != "$type"}
                instance.insert_object(str(row["$type"]), **values)
        else:
            instance.insert_all(relation, rows)


def instance_delta(
    before: Instance,
    after: Instance,
    relations: Optional[set[str]] = None,
) -> UpdateSet:
    """The tuple-level difference between two states.

    Count-aware (bag semantics): a row occurring *m* times before and
    *n* times after contributes ``n - m`` inserts (or ``m - n``
    deletes) — so deleting one of two duplicates emits exactly one
    delete instead of silently collapsing them.  ``relations`` narrows
    the diff to the given relations (callers that know which relations
    an update touched skip re-freezing everything else).
    """
    update = UpdateSet()
    names = set(before.relations) | set(after.relations)
    if relations is not None:
        names &= relations
    for relation in sorted(names):
        old: dict[frozenset, list[Row]] = {}
        for row in before.rows(relation):
            old.setdefault(freeze_row(row), []).append(row)
        new: dict[frozenset, list[Row]] = {}
        for row in after.rows(relation):
            new.setdefault(freeze_row(row), []).append(row)
        for key, rows in new.items():
            extra = len(rows) - len(old.get(key, ()))
            for _ in range(extra):
                update.inserts.setdefault(relation, []).append(dict(rows[0]))
        for key, rows in old.items():
            missing = len(rows) - len(new.get(key, ()))
            for _ in range(missing):
                update.deletes.setdefault(relation, []).append(dict(rows[0]))
    return update


class UpdatePropagator:
    """Translates target-side updates into source-side updates.

    Requires a bidirectional (equality) mapping — the paper's ADO.NET
    scenario.  For tgd mappings the translation is ambiguous (view
    update problem) and :class:`ExpressivenessError` is raised, which
    is itself one of the paper's points: runtime services constrain the
    usable mapping language.
    """

    def __init__(self, mapping: Mapping, engine: Optional[str] = None):
        if not mapping.equalities:
            raise ExpressivenessError(
                "update propagation needs a bidirectional equality mapping; "
                "tgd mappings do not determine a unique source update"
            )
        self.mapping = mapping
        views = transgen(mapping)
        assert isinstance(views, TransformationPair)
        self.views = views
        self.engine = engine
        # (new_source, new_target) of the previous propagate: lets a
        # caller that chains updates (passing back the target we
        # returned) skip the second full update_view application.
        self._cached: Optional[tuple[Instance, Instance]] = None

    def _touched_relations(self, update: UpdateSet) -> set[str]:
        """Target relations the update batch names ("$typed" inserts
        resolve to their entity's root extent)."""
        touched: set[str] = set()
        schema = self.mapping.target
        for relation, rows in list(update.inserts.items()) + list(
            update.deletes.items()
        ):
            if relation != "$typed":
                touched.add(relation)
                continue
            for row in rows:
                entity = str(row.get("$type", ""))
                if schema is not None and entity in schema.entities:
                    touched.add(schema.entity(entity).root().name)
        return touched

    @instrumented("runtime.update_propagate", attrs=lambda self,
                  target_instance, update, source_instance=None, **kw: {
                      "mapping.name": self.mapping.name,
                      "update.size": update.size(),
                      "target.rows": target_instance.total_rows()})
    def propagate(
        self,
        target_instance: Instance,
        update: UpdateSet,
        source_instance: Optional[Instance] = None,
        validate: bool = True,
    ) -> tuple[UpdateSet, Instance, Instance]:
        """Apply ``update`` on the target side; return the translated
        source update, the new source state, and the new target state.

        When the caller chains propagations — passing back the target
        instance returned by the previous call and leaving
        ``source_instance`` unset — the propagator reuses its cached
        source state and re-evaluates only the update-view rules whose
        scanned relations the batch touched, diffing just those
        relations.  ``validate=False`` skips the representability
        roundtrip for callers that have already established it.

        Raises :class:`TransformationError` if the updated target is
        not representable through the mapping (the update view loses
        it), before any state is touched.
        """
        new_target = apply_update(target_instance, update)
        touched = self._touched_relations(update)
        delta_path = (
            source_instance is None
            and self._cached is not None
            and self._cached[1] is target_instance
        )
        if delta_path:
            source_instance = self._cached[0]
            new_source = self.views.update_view.apply_delta(
                new_target, source_instance, touched, engine=self.engine
            )
            diff_scope = self.views.update_view.output_relations_touched_by(
                touched
            )
        else:
            new_source = self.views.update_view.apply(
                new_target, engine=self.engine
            )
            diff_scope = None
        if validate:
            # Validate representability: query view must reproduce the
            # updated target (roundtrip of the *new* state).
            recovered = self.views.query_view.apply(
                new_source, engine=self.engine
            )
            relations = set(recovered.relations)
            visible = Instance(new_target.schema)
            for relation in relations:
                visible.relations[relation] = list(new_target.rows(relation))
            if not recovered.set_equal(visible):
                raise TransformationError(
                    "update is not representable through the mapping: "
                    "query(update(T′)) ≠ T′"
                )
        if source_instance is None:
            source_instance = self.views.update_view.apply(
                target_instance, engine=self.engine
            )
        source_update = instance_delta(
            source_instance, new_source, relations=diff_scope
        )
        self._cached = (new_source, new_target)
        return source_update, new_source, new_target
