"""Update propagation (paper, Section 5, first bullet).

"Updates on T need to be translated into updates on S via mapST."  For
bidirectional equality mappings the update view gives the translation
directly: apply the target-side update logically, run the update view,
and diff against the current source state to obtain the source-side
delta.  The roundtripping property guarantees the translated update is
*exact* — re-running the query view reproduces the updated target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ExpressivenessError, TransformationError
from repro.instances.database import Instance, Row, freeze_row
from repro.mappings.mapping import Mapping
from repro.observability.instrument import instrumented
from repro.operators.transgen import TransformationPair, transgen


@dataclass
class UpdateSet:
    """A batch of tuple-level changes to one schema's relations."""

    inserts: dict[str, list[Row]] = field(default_factory=dict)
    deletes: dict[str, list[Row]] = field(default_factory=dict)

    def insert(self, relation: str, **values: object) -> "UpdateSet":
        self.inserts.setdefault(relation, []).append(values)
        return self

    def insert_object(self, entity: str, **values: object) -> "UpdateSet":
        """Typed insert for entity hierarchies (sets ``$type``)."""
        row = {"$type": entity}
        row.update(values)
        self.inserts.setdefault("$typed", []).append(row)
        return self

    def delete(self, relation: str, **values: object) -> "UpdateSet":
        self.deletes.setdefault(relation, []).append(values)
        return self

    @property
    def is_empty(self) -> bool:
        return not self.inserts and not self.deletes

    def size(self) -> int:
        return sum(len(r) for r in self.inserts.values()) + sum(
            len(r) for r in self.deletes.values()
        )

    def describe(self) -> str:
        lines = []
        for relation, rows in sorted(self.inserts.items()):
            for row in rows:
                lines.append(f"+ {relation} {row}")
        for relation, rows in sorted(self.deletes.items()):
            for row in rows:
                lines.append(f"- {relation} {row}")
        return "\n".join(lines) or "(no changes)"


def apply_update(instance: Instance, update: UpdateSet) -> Instance:
    """A new instance with the update applied (deletes match by subset
    of attributes; typed inserts route through ``insert_object``)."""
    result = instance.copy()
    for relation, rows in update.deletes.items():
        for pattern in rows:
            result.delete(
                relation,
                lambda row, p=pattern: all(
                    row.get(k) == v for k, v in p.items()
                ),
            )
    for relation, rows in update.inserts.items():
        if relation == "$typed":
            for row in rows:
                values = {k: v for k, v in row.items() if k != "$type"}
                result.insert_object(str(row["$type"]), **values)
        else:
            result.insert_all(relation, rows)
    return result


def instance_delta(before: Instance, after: Instance) -> UpdateSet:
    """The tuple-level difference between two states (set semantics)."""
    update = UpdateSet()
    relations = set(before.relations) | set(after.relations)
    for relation in sorted(relations):
        old = {freeze_row(r): r for r in before.rows(relation)}
        new = {freeze_row(r): r for r in after.rows(relation)}
        for key in new.keys() - old.keys():
            update.inserts.setdefault(relation, []).append(dict(new[key]))
        for key in old.keys() - new.keys():
            update.deletes.setdefault(relation, []).append(dict(old[key]))
    return update


class UpdatePropagator:
    """Translates target-side updates into source-side updates.

    Requires a bidirectional (equality) mapping — the paper's ADO.NET
    scenario.  For tgd mappings the translation is ambiguous (view
    update problem) and :class:`ExpressivenessError` is raised, which
    is itself one of the paper's points: runtime services constrain the
    usable mapping language.
    """

    def __init__(self, mapping: Mapping, engine: Optional[str] = None):
        if not mapping.equalities:
            raise ExpressivenessError(
                "update propagation needs a bidirectional equality mapping; "
                "tgd mappings do not determine a unique source update"
            )
        self.mapping = mapping
        views = transgen(mapping)
        assert isinstance(views, TransformationPair)
        self.views = views
        self.engine = engine

    @instrumented("runtime.update_propagate", attrs=lambda self,
                  target_instance, update, source_instance=None: {
                      "mapping.name": self.mapping.name,
                      "update.size": update.size(),
                      "target.rows": target_instance.total_rows()})
    def propagate(
        self,
        target_instance: Instance,
        update: UpdateSet,
        source_instance: Optional[Instance] = None,
    ) -> tuple[UpdateSet, Instance, Instance]:
        """Apply ``update`` on the target side; return the translated
        source update, the new source state, and the new target state.

        Raises :class:`TransformationError` if the updated target is
        not representable through the mapping (the update view loses
        it), before any state is touched.
        """
        new_target = apply_update(target_instance, update)
        new_source = self.views.update_view.apply(new_target, engine=self.engine)
        # Validate representability: query view must reproduce the
        # updated target (roundtrip of the *new* state).
        recovered = self.views.query_view.apply(new_source, engine=self.engine)
        relations = set(recovered.relations)
        visible = Instance(new_target.schema)
        for relation in relations:
            visible.relations[relation] = list(new_target.rows(relation))
        if not recovered.set_equal(visible):
            raise TransformationError(
                "update is not representable through the mapping: "
                "query(update(T′)) ≠ T′"
            )
        if source_instance is None:
            source_instance = self.views.update_view.apply(
                target_instance, engine=self.engine
            )
        source_update = instance_delta(source_instance, new_source)
        return source_update, new_source, new_target
