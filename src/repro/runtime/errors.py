"""Error translation (paper, Section 5).

"If a data access via T is translated into an access on S that
generates an error, then the error needs to be passed back through
mapST in a form that is understandable in the context of T.  For
example, in an object-to-relational mapping, an object access may
cause an erroneous access to a table that the user of T doesn't
recognize."

The translator inverts the mapping's element-level vocabulary — table
and column names back to entity and attribute names — and rewrites
error messages and structured context accordingly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.algebra import expressions as E
from repro.algebra import scalars as S
from repro.errors import ModelManagementError
from repro.mappings.mapping import Mapping


@dataclass
class TranslatedError(ModelManagementError, Exception):
    """An error re-expressed in the target schema's vocabulary."""

    original: Exception = None
    message: str = ""
    source_context: str = ""
    target_context: str = ""

    def __str__(self) -> str:
        return self.message


class ErrorTranslator:
    """Maps source-side element names to target-side names using the
    mapping's constraints, then rewrites exception messages."""

    def __init__(self, mapping: Mapping):
        self.mapping = mapping
        self._element_map = self._build_element_map()

    def _build_element_map(self) -> dict[str, str]:
        """source element name → target element description."""
        element_map: dict[str, str] = {}
        for constraint in self.mapping.equalities:
            source_relations = constraint.source_expr.relations()
            target_relations = constraint.target_expr.relations()
            for source_relation in source_relations:
                if len(target_relations) == 1:
                    element_map.setdefault(
                        source_relation, next(iter(target_relations))
                    )
            for src_col, tgt_col in self._column_pairs(constraint):
                element_map.setdefault(src_col, tgt_col)
        for tgd in self.mapping.tgds:
            body_relations = {a.relation for a in tgd.body}
            head_relations = {a.relation for a in tgd.head}
            for body_relation in body_relations:
                if len(head_relations) == 1:
                    element_map.setdefault(
                        body_relation, next(iter(head_relations))
                    )
            # Column-level: shared variables link source and target
            # attribute names.
            for body_atom in tgd.body:
                for body_attr, body_term in body_atom.args:
                    for head_atom in tgd.head:
                        for head_attr, head_term in head_atom.args:
                            if body_term == head_term and body_attr != head_attr:
                                element_map.setdefault(
                                    f"{body_atom.relation}.{body_attr}",
                                    f"{head_atom.relation}.{head_attr}",
                                )
        return element_map

    def _column_pairs(self, constraint):
        """(source column path, target column path) pairs read from the
        two sides' projections, aligned by output name."""
        source_proj = _projection_of(constraint.source_expr)
        target_proj = _projection_of(constraint.target_expr)
        if source_proj is None or target_proj is None:
            return []
        source_relation = _single_relation(constraint.source_expr)
        target_relation = _single_relation(constraint.target_expr)
        pairs = []
        for output, src_col in source_proj.items():
            tgt_col = target_proj.get(output)
            if tgt_col is None:
                continue
            src_path = (
                f"{source_relation}.{src_col}" if source_relation else src_col
            )
            tgt_path = (
                f"{target_relation}.{tgt_col}" if target_relation else tgt_col
            )
            if src_path != tgt_path:
                pairs.append((src_path, tgt_path))
        return pairs

    # ------------------------------------------------------------------
    def translate(self, error: Exception, operation: str = "") -> TranslatedError:
        """Rewrite an exception for the target schema's user."""
        message = str(error)
        rewritten = message
        mentioned_source = []
        mentioned_target = []
        # Longest names first so "Empl.Id" rewrites before "Empl".
        for source_name in sorted(self._element_map, key=len, reverse=True):
            target_name = self._element_map[source_name]
            if re.search(rf"\b{re.escape(source_name)}\b", rewritten):
                rewritten = re.sub(
                    rf"\b{re.escape(source_name)}\b", target_name, rewritten
                )
                mentioned_source.append(source_name)
                mentioned_target.append(target_name)
        prefix = f"{operation}: " if operation else ""
        return TranslatedError(
            original=error,
            message=f"{prefix}{rewritten}",
            source_context=(
                f"underlying {type(error).__name__} mentioned "
                f"{', '.join(mentioned_source)}" if mentioned_source else str(error)
            ),
            target_context=", ".join(mentioned_target),
        )

    def element_map(self) -> dict[str, str]:
        return dict(self._element_map)


def _projection_of(expr) -> Optional[dict[str, str]]:
    current = expr
    if isinstance(current, E.Distinct):
        current = current.input
    if isinstance(current, E.Project):
        result = {}
        for name, scalar in current.outputs:
            if isinstance(scalar, S.Col):
                result[name] = scalar.name
        return result
    return None


def _single_relation(expr) -> Optional[str]:
    relations = expr.relations()
    if len(relations) == 1:
        return next(iter(relations))
    return None
