"""The :class:`Mapping` object: schemas + constraints, with
instance-level semantics.

Constraint languages supported, in increasing expressiveness (the
paper's central tension, Section 2):

* ``st-tgd`` — a list of source-to-target tgds (GLAV);
* ``tgd`` — arbitrary tgds (body/head may mix schemas);
* ``so-tgd`` — one second-order tgd (composition output);
* ``equality`` — bidirectional query-equality constraints
  (Figure 2 / ADO.NET style: an algebra expression over the source
  equals one over the target).

:meth:`Mapping.holds_for` implements the instance-level semantics — a
pair ⟨D1, D2⟩ is in the mapping iff every constraint holds — which is
the ground truth every operator's tests check against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from repro.algebra.evaluator import evaluate
from repro.algebra.expressions import RelExpr
from repro.errors import MappingError
from repro.instances.database import Instance, freeze_row
from repro.logic.dependencies import EGD, TGD
from repro.logic.formulas import Atom
from repro.logic.homomorphism import find_homomorphism, iter_homomorphisms
from repro.logic.second_order import SecondOrderTGD, execute_so_tgd
from repro.logic.homomorphism import instance_homomorphism
from repro.metamodel.schema import Schema


class MappingLanguage(enum.Enum):
    """Expressiveness tiers of the constraint language."""

    ST_TGD = "st-tgd"
    TGD = "tgd"
    SO_TGD = "so-tgd"
    EQUALITY = "equality"


@dataclass(frozen=True)
class EqualityConstraint:
    """``source_expr = target_expr`` — equality of two queries, one per
    side, as in the paper's Figure 2 (Entity SQL over the ER schema
    equals SQL over the tables) and Figure 4 (projection-join equalities).
    """

    source_expr: RelExpr
    target_expr: RelExpr
    name: str = ""

    def holds_for(
        self,
        source_instance: Instance,
        target_instance: Instance,
        source_schema: Optional[Schema] = None,
        target_schema: Optional[Schema] = None,
    ) -> bool:
        left = evaluate(self.source_expr, source_instance, source_schema)
        right = evaluate(self.target_expr, target_instance, target_schema)
        return {freeze_row(r) for r in left} == {freeze_row(r) for r in right}

    def __str__(self) -> str:
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{self.source_expr!r} = {self.target_expr!r}"


Constraint = Union[TGD, EGD, EqualityConstraint]


class Mapping:
    """A mapping between ``source`` and ``target`` schemas.

    ``constraints`` is either a sequence of :class:`TGD` /
    :class:`EqualityConstraint` objects or a single
    :class:`SecondOrderTGD`.
    """

    def __init__(
        self,
        source: Schema,
        target: Schema,
        constraints: Union[Sequence[Constraint], SecondOrderTGD],
        name: str = "",
    ):
        self.source = source
        self.target = target
        self.name = name or f"map_{source.name}_{target.name}"
        if isinstance(constraints, SecondOrderTGD):
            self.so_tgd: Optional[SecondOrderTGD] = constraints
            self.constraints: tuple[Constraint, ...] = ()
        else:
            self.so_tgd = None
            self.constraints = tuple(constraints)
        self._validate()

    # ------------------------------------------------------------------
    @property
    def language(self) -> MappingLanguage:
        if self.so_tgd is not None:
            return MappingLanguage.SO_TGD
        if any(isinstance(c, EqualityConstraint) for c in self.constraints):
            return MappingLanguage.EQUALITY
        if all(
            isinstance(c, TGD)
            and c.is_source_to_target(
                self.source.entities, self.target.entities
            )
            for c in self.constraints
        ):
            return MappingLanguage.ST_TGD
        return MappingLanguage.TGD

    @property
    def tgds(self) -> list[TGD]:
        return [c for c in self.constraints if isinstance(c, TGD)]

    @property
    def egds(self) -> list[EGD]:
        return [c for c in self.constraints if isinstance(c, EGD)]

    @property
    def equalities(self) -> list[EqualityConstraint]:
        return [c for c in self.constraints if isinstance(c, EqualityConstraint)]

    def _validate(self) -> None:
        source_relations = set(self.source.entities)
        target_relations = set(self.target.entities)
        both = source_relations | target_relations
        for tgd in self.tgds:
            used = tgd.body_relations() | tgd.head_relations()
            unknown = used - both
            if unknown:
                raise MappingError(
                    f"constraint {tgd} references relations {sorted(unknown)} "
                    f"not in either schema"
                )

    # ------------------------------------------------------------------
    # instance-level semantics
    # ------------------------------------------------------------------
    def holds_for(
        self, source_instance: Instance, target_instance: Instance
    ) -> bool:
        """⟨D1, D2⟩ ∈ mapping?  (Section 2's subset of D1 × D2.)"""
        combined = self._combined(source_instance, target_instance)
        for constraint in self.constraints:
            if isinstance(constraint, EqualityConstraint):
                if not constraint.holds_for(
                    source_instance, target_instance,
                    self.source, self.target,
                ):
                    return False
            elif isinstance(constraint, TGD):
                if not self._tgd_holds(constraint, combined):
                    return False
            elif isinstance(constraint, EGD):
                if not self._egd_holds(constraint, combined):
                    return False
        if self.so_tgd is not None:
            if not self._so_tgd_holds(source_instance, target_instance):
                return False
        return True

    def _combined(self, source_instance: Instance, target_instance: Instance) -> Instance:
        combined = Instance()
        for relation, rows in source_instance.relations.items():
            combined.relations.setdefault(relation, []).extend(rows)
        for relation, rows in target_instance.relations.items():
            combined.relations.setdefault(relation, []).extend(rows)
        return combined

    @staticmethod
    def _tgd_holds(tgd: TGD, combined: Instance) -> bool:
        for assignment in iter_homomorphisms(tgd.body, combined):
            partial = {
                var: value
                for var, value in assignment.items()
                if var in tgd.frontier()
            }
            if find_homomorphism(tgd.head, combined, partial=partial) is None:
                return False
        return True

    @staticmethod
    def _egd_holds(egd: EGD, combined: Instance) -> bool:
        from repro.logic.terms import Const, Var

        for assignment in iter_homomorphisms(egd.body, combined):
            for equality in egd.equalities:
                left = (
                    equality.left.value
                    if isinstance(equality.left, Const)
                    else assignment[equality.left]
                )
                right = (
                    equality.right.value
                    if isinstance(equality.right, Const)
                    else assignment[equality.right]
                )
                if left != right:
                    return False
        return True

    def _so_tgd_holds(
        self, source_instance: Instance, target_instance: Instance
    ) -> bool:
        """An SO-tgd holds iff *some* interpretation of the function
        symbols satisfies all implications.  We check the canonical
        Skolem interpretation: execute and test that the produced atoms
        map homomorphically into the given pair.

        Bodies are matched against the *combined* instance (atoms find
        their relations wherever they live), so the check stays correct
        for inverted mappings and for implications whose bodies are not
        purely source-side.
        """
        combined = self._combined(source_instance, target_instance)
        produced = execute_so_tgd(self.so_tgd, combined)
        return instance_homomorphism(produced, combined) is not None

    # ------------------------------------------------------------------
    def invert(self) -> "Mapping":
        """The syntactic ``Invert`` of Section 6.2: swap the roles of
        source and target.  For tgd constraints this only relabels which
        side is which (the relation stays the same subset, transposed);
        constraint formulas are unchanged."""
        inverted = Mapping.__new__(Mapping)
        inverted.source = self.target
        inverted.target = self.source
        inverted.name = f"invert_{self.name}"
        inverted.so_tgd = self.so_tgd
        inverted.constraints = tuple(
            EqualityConstraint(c.target_expr, c.source_expr, c.name)
            if isinstance(c, EqualityConstraint)
            else c
            for c in self.constraints
        )
        return inverted

    def constraint_count(self) -> int:
        if self.so_tgd is not None:
            return len(self.so_tgd.implications)
        return len(self.constraints)

    def describe(self) -> str:
        lines = [
            f"mapping {self.name}: {self.source.name} → {self.target.name} "
            f"[{self.language.value}]"
        ]
        for constraint in self.constraints:
            lines.append(f"  {constraint}")
        if self.so_tgd is not None:
            lines.append(f"  {self.so_tgd}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<Mapping {self.name} {self.source.name}→{self.target.name} "
            f"[{self.language.value}] {self.constraint_count()} constraints>"
        )
