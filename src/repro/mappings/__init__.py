"""Mappings: the paper's central abstraction.

"A mapping expresses a relationship between the instances of two
schemas … a mapping between S1 and S2 defines a subset of D1 × D2"
(Section 2).  The engine represents mappings at the paper's three
levels of refinement (Section 3.1):

1. **correspondences** (:class:`~repro.mappings.correspondence.CorrespondenceSet`)
   — element pairs, the matcher's output;
2. **mapping constraints** (:class:`~repro.mappings.mapping.Mapping`)
   — st-tgds / GLAV formulas, second-order tgds, or bidirectional
   query-equality constraints (Figure 2 style);
3. **transformations** — executable algebra produced by TransGen
   (:mod:`repro.operators.transgen`).

:mod:`repro.mappings.interpretation` implements the step from (1) to
(2), including the snowflake rule of Figure 4;
:mod:`repro.mappings.algebra_bridge` converts between the project-join
algebra fragment and conjunctive queries so that equality constraints
and tgds interoperate.
"""

from repro.mappings.mapping import (
    Mapping,
    EqualityConstraint,
    MappingLanguage,
)
from repro.mappings.correspondence import Correspondence, CorrespondenceSet
from repro.mappings.algebra_bridge import (
    algebra_to_cq,
    cq_to_algebra,
    containment_tgd,
    equality_to_tgds,
)
from repro.mappings.interpretation import (
    interpret_snowflake,
    interpret_as_tgds,
)

__all__ = [
    "Mapping",
    "EqualityConstraint",
    "MappingLanguage",
    "Correspondence",
    "CorrespondenceSet",
    "algebra_to_cq",
    "cq_to_algebra",
    "containment_tgd",
    "equality_to_tgds",
    "interpret_snowflake",
    "interpret_as_tgds",
]
