"""Interpreting correspondences as mapping constraints.

Two interpretation strategies from the paper's Section 3.1.2:

* :func:`interpret_snowflake` — the unambiguous case of Melnik et al.
  (Figure 4): when source and target are snowflake schemas and a
  correspondence relates their roots, each attribute correspondence
  becomes the equality of two projection-join expressions, one per
  side, each projecting the root key plus the corresponded attribute
  over the join path from the root.

* :func:`interpret_as_tgds` — the Clio-style interpretation: for each
  target entity with correspondences, emit one st-tgd whose body joins
  the referenced source entities along foreign keys and whose head
  populates the target entity, leaving uncorresponded target attributes
  existential.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra import expressions as E
from repro.errors import MappingError
from repro.logic.dependencies import TGD
from repro.logic.formulas import Atom
from repro.logic.terms import Var
from repro.mappings.correspondence import CorrespondenceSet
from repro.mappings.mapping import EqualityConstraint, Mapping
from repro.metamodel.constraints import InclusionDependency
from repro.metamodel.schema import Schema
from repro.observability.instrument import instrumented


# ----------------------------------------------------------------------
# snowflake interpretation (Figure 4)
# ----------------------------------------------------------------------
def _join_paths_from_root(schema: Schema, root: str) -> dict[str, list[InclusionDependency]]:
    """Entity → FK path from ``root`` (list of inclusion dependencies
    walked root-outward).  BFS over the schema's foreign keys in both
    directions, treating the snowflake as a tree rooted at ``root``."""
    paths: dict[str, list[InclusionDependency]] = {root: []}
    frontier = [root]
    dependencies = schema.inclusion_dependencies()
    while frontier:
        current = frontier.pop(0)
        for dep in dependencies:
            if dep.source == current and dep.target not in paths:
                paths[dep.target] = paths[current] + [dep]
                frontier.append(dep.target)
            elif dep.target == current and dep.source not in paths:
                paths[dep.source] = paths[current] + [dep]
                frontier.append(dep.source)
    return paths


def _path_expression(
    schema: Schema, root: str, entity: str,
    paths: dict[str, list[InclusionDependency]],
) -> E.RelExpr:
    """The join expression from the root to ``entity`` along FK edges
    (just the root scan when entity == root)."""
    expr: E.RelExpr = E.Scan(root)
    current = root
    for dep in paths[entity]:
        if dep.source == current:
            expr = E.eq_join(
                expr, E.Scan(dep.target),
                list(zip(dep.source_attributes, dep.target_attributes)),
            )
            current = dep.target
        else:
            expr = E.eq_join(
                expr, E.Scan(dep.source),
                list(zip(dep.target_attributes, dep.source_attributes)),
            )
            current = dep.source
    return expr


@instrumented("op.interpret.snowflake", attrs=lambda correspondences, *a, **k: {
    "correspondences": len(correspondences),
})
def interpret_snowflake(
    correspondences: CorrespondenceSet,
    source_root: Optional[str] = None,
    target_root: Optional[str] = None,
) -> Mapping:
    """Interpret correspondences between two snowflake schemas as
    equality constraints (paper, Figure 4).

    The root correspondence may be given explicitly or is taken from
    the (unique) entity-level correspondence in the set.  Each
    attribute correspondence ``s.a ≈ t.b`` yields::

        π[RootKey, a](join path to s) = π[RootKey', b](join path to t)

    plus the root-key equality itself.
    """
    source, target = correspondences.source, correspondences.target
    if source_root is None or target_root is None:
        entity_level = [
            c for c in correspondences
            if c.source.is_entity and c.target.is_entity
        ]
        if len(entity_level) != 1:
            raise MappingError(
                "snowflake interpretation needs exactly one root "
                f"correspondence, found {len(entity_level)}"
            )
        source_root = entity_level[0].source.path
        target_root = entity_level[0].target.path
    source_key = source.entity(source_root).key
    target_key = target.entity(target_root).key
    if len(source_key) != len(target_key) or not source_key:
        raise MappingError("root entities must have keys of equal arity")
    source_paths = _join_paths_from_root(source, source_root)
    target_paths = _join_paths_from_root(target, target_root)

    constraints: list[EqualityConstraint] = []
    # Root identity constraint: π_key(source root tree) = π_key(target).
    constraints.append(
        EqualityConstraint(
            E.Distinct(E.project_names(E.Scan(source_root), source_key)),
            E.Distinct(
                E.Project(
                    E.Scan(target_root),
                    [(sk, E.Col(tk)) for sk, tk in zip(source_key, target_key)],
                )
            ),
            name="root-key",
        )
    )
    for correspondence in correspondences.attribute_pairs():
        s_entity = correspondence.source.entity
        t_entity = correspondence.target.entity
        s_attr = correspondence.source.attribute
        t_attr = correspondence.target.attribute
        if s_entity not in source_paths:
            raise MappingError(
                f"{s_entity!r} is not reachable from root {source_root!r}"
            )
        if t_entity not in target_paths:
            raise MappingError(
                f"{t_entity!r} is not reachable from root {target_root!r}"
            )
        source_columns = list(source_key)
        if s_attr not in source_columns:
            source_columns.append(s_attr)
        source_expr = E.Distinct(
            E.project_names(
                _path_expression(source, source_root, s_entity, source_paths),
                source_columns,
            )
        )
        target_outputs = [
            (sk, E.Col(tk)) for sk, tk in zip(source_key, target_key)
        ]
        if s_attr not in source_key:
            target_outputs.append((s_attr, E.Col(t_attr)))
        target_expr = E.Distinct(
            E.Project(
                _path_expression(target, target_root, t_entity, target_paths),
                target_outputs,
            )
        )
        constraints.append(
            EqualityConstraint(
                source_expr, target_expr, name=f"{s_entity}.{s_attr}≈{t_entity}.{t_attr}"
            )
        )
    return Mapping(source, target, constraints, name="snowflake")


# ----------------------------------------------------------------------
# Clio-style tgd interpretation
# ----------------------------------------------------------------------
@instrumented("op.interpret.tgd", attrs=lambda correspondences: {
    "correspondences": len(correspondences),
})
def interpret_as_tgds(correspondences: CorrespondenceSet) -> Mapping:
    """Interpret attribute correspondences as st-tgds, one per target
    entity (simplified Clio: source entities referenced by the target's
    correspondences are joined along declared foreign keys; target
    attributes without correspondences become existentials)."""
    source, target = correspondences.source, correspondences.target
    tgds: list[TGD] = []
    by_target_entity: dict[str, list] = {}
    for correspondence in correspondences.attribute_pairs():
        by_target_entity.setdefault(correspondence.target.entity, []).append(
            correspondence
        )
    for target_entity_name, items in sorted(by_target_entity.items()):
        target_entity = target.entity(target_entity_name)
        source_entities = sorted({c.source.entity for c in items})
        variables: dict[tuple[str, str], Var] = {}

        def var_for(entity: str, attribute: str) -> Var:
            key = (entity, attribute)
            if key not in variables:
                variables[key] = Var(f"x_{entity}_{attribute}")
            return variables[key]

        # Join source entities along FKs that connect them.
        for dep in source.inclusion_dependencies():
            if dep.source in source_entities and dep.target in source_entities:
                for s_attr, t_attr in zip(
                    dep.source_attributes, dep.target_attributes
                ):
                    shared = var_for(dep.target, t_attr)
                    variables[(dep.source, s_attr)] = shared
        body = []
        for entity_name in source_entities:
            entity = source.entity(entity_name)
            args = tuple(
                (attribute, var_for(entity_name, attribute))
                for attribute in entity.all_attribute_names()
            )
            body.append(Atom(entity_name, args))
        head_args = []
        corresponded = {
            c.target.attribute: var_for(c.source.entity, c.source.attribute)
            for c in items
        }
        for attribute in target_entity.all_attribute_names():
            if attribute in corresponded:
                head_args.append((attribute, corresponded[attribute]))
            else:
                head_args.append((attribute, Var(f"e_{attribute}")))
        tgds.append(
            TGD(
                body=tuple(body),
                head=(Atom(target_entity_name, tuple(head_args)),),
                name=f"to_{target_entity_name}",
            )
        )
    return Mapping(source, target, tgds, name="clio")
