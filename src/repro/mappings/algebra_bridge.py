"""Bridging the algebra fragment and conjunctive queries.

The paper's Figure 4 constraints are equalities of projection-join
expressions; its Section 6.1 composition machinery works on tgds.  This
module converts between the two so that one operator suite serves both:

* :func:`algebra_to_cq` — project/select/join/rename algebra → a
  :class:`TableQuery` (a conjunctive query plus output column names);
* :func:`cq_to_algebra` — back again (used by TransGen to make
  composed tgds executable);
* :func:`containment_tgd` — ``q1 ⊆ q2`` as a tgd;
* :func:`equality_to_tgds` — a Figure-4-style equality constraint as
  the two containment tgds it abbreviates.

Only the conjunctive fragment converts; anything beyond it (outer
joins, unions, aggregates, negation) raises
:class:`~repro.errors.ExpressivenessError`, which is precisely the
expressiveness boundary the paper keeps pointing at.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping as TMapping, Optional, Sequence, Union

from repro.algebra import expressions as E
from repro.algebra import scalars as S
from repro.errors import ExpressivenessError
from repro.logic.dependencies import TGD
from repro.logic.formulas import Atom, ConjunctiveQuery, Equality
from repro.logic.terms import Const, Term, Var
from repro.metamodel.schema import Schema


@dataclass(frozen=True)
class TableQuery:
    """A conjunctive query whose head positions carry column names."""

    query: ConjunctiveQuery
    columns: tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.query}  AS ({', '.join(self.columns)})"


AttributeMap = TMapping[str, Sequence[str]]


def relation_attributes(*schemas: Schema) -> dict[str, tuple[str, ...]]:
    """Relation → attribute list, for all entities of the given schemas."""
    result: dict[str, tuple[str, ...]] = {}
    for schema in schemas:
        for entity in schema.entities.values():
            result[entity.name] = entity.all_attribute_names()
    return result


# ----------------------------------------------------------------------
# algebra → CQ
# ----------------------------------------------------------------------
class _Translation:
    """Intermediate state: atoms, conditions, and visible columns."""

    def __init__(self):
        self.atoms: list[Atom] = []
        self.conditions: list[Equality] = []
        self.colmap: dict[str, Term] = {}


def algebra_to_cq(
    expr: E.RelExpr,
    attributes: Union[AttributeMap, Schema, Sequence[Schema]],
    name: str = "q",
) -> TableQuery:
    """Translate a conjunctive algebra expression into a TableQuery.

    ``attributes`` supplies each scanned relation's attribute list
    (pass schemas or a prebuilt map).
    """
    if isinstance(attributes, Schema):
        attributes = relation_attributes(attributes)
    elif not isinstance(attributes, dict):
        attributes = relation_attributes(*attributes)
    counter = itertools.count()
    translation = _translate(expr, attributes, counter)
    head_vars: list[Var] = []
    columns: list[str] = []
    conditions = list(translation.conditions)
    for column, term in translation.colmap.items():
        if isinstance(term, Const):
            fresh = Var(f"c{next(counter)}")
            conditions.append(Equality(fresh, term))
            term = fresh
        head_vars.append(term)
        columns.append(column)
    query = ConjunctiveQuery(
        head=tuple(head_vars),
        body=tuple(translation.atoms),
        conditions=tuple(conditions),
        name=name,
    )
    return TableQuery(query=query, columns=tuple(columns))


def _translate(
    expr: E.RelExpr, attributes: AttributeMap, counter
) -> _Translation:
    if isinstance(expr, (E.Scan, E.EntityScan)):
        relation = expr.relation if isinstance(expr, E.Scan) else expr.entity
        if relation not in attributes:
            raise ExpressivenessError(
                f"unknown attributes for relation {relation!r}"
            )
        translation = _Translation()
        args = []
        for attribute in attributes[relation]:
            var = Var(f"v{next(counter)}")
            args.append((attribute, var))
            translation.colmap[attribute] = var
        translation.atoms.append(Atom(relation, tuple(args)))
        return translation

    if isinstance(expr, E.Distinct):
        return _translate(expr.input, attributes, counter)

    if isinstance(expr, E.Select):
        translation = _translate(expr.input, attributes, counter)
        _apply_predicate(expr.predicate, translation)
        return translation

    if isinstance(expr, E.Project):
        translation = _translate(expr.input, attributes, counter)
        new_colmap: dict[str, Term] = {}
        for output_name, scalar in expr.outputs:
            if isinstance(scalar, S.Col):
                if scalar.name not in translation.colmap:
                    raise ExpressivenessError(
                        f"projection of unknown column {scalar.name!r}"
                    )
                new_colmap[output_name] = translation.colmap[scalar.name]
            elif isinstance(scalar, S.Lit):
                new_colmap[output_name] = Const(scalar.value)
            else:
                raise ExpressivenessError(
                    f"non-conjunctive projection output {scalar!r}"
                )
        translation.colmap = new_colmap
        return translation

    if isinstance(expr, E.Rename):
        translation = _translate(expr.input, attributes, counter)
        translation.colmap = {
            expr.mapping.get(column, column): term
            for column, term in translation.colmap.items()
        }
        return translation

    if isinstance(expr, E.Extend):
        translation = _translate(expr.input, attributes, counter)
        if isinstance(expr.scalar, S.Lit):
            translation.colmap[expr.name] = Const(expr.scalar.value)
            return translation
        if isinstance(expr.scalar, S.Col):
            translation.colmap[expr.name] = translation.colmap[expr.scalar.name]
            return translation
        raise ExpressivenessError(f"non-conjunctive extend {expr.scalar!r}")

    if isinstance(expr, E.Join):
        if expr.kind != "inner":
            raise ExpressivenessError(
                "outer joins are outside the conjunctive fragment"
            )
        left = _translate(expr.left, attributes, counter)
        right = _translate(expr.right, attributes, counter)
        merged = _Translation()
        merged.atoms = left.atoms + right.atoms
        merged.conditions = left.conditions + right.conditions
        merged.colmap = dict(left.colmap)
        for column, term in right.colmap.items():
            if column in merged.colmap:
                if expr.right_prefix:
                    merged.colmap[f"{expr.right_prefix}.{column}"] = term
                # else the evaluator drops the right copy: so do we.
            else:
                merged.colmap[column] = term
        _apply_join_predicate(expr.predicate, left, right, merged)
        return merged

    raise ExpressivenessError(
        f"{type(expr).__name__} is outside the conjunctive fragment"
    )


def _apply_predicate(predicate: S.Predicate, translation: _Translation) -> None:
    if predicate is S.TRUE:
        return
    if isinstance(predicate, S.And):
        for operand in predicate.operands:
            _apply_predicate(operand, translation)
        return
    if isinstance(predicate, S.Comparison) and predicate.op == "=":
        left = _scalar_term(predicate.left, translation)
        right = _scalar_term(predicate.right, translation)
        _unify_terms(left, right, translation)
        return
    raise ExpressivenessError(
        f"predicate {predicate!r} is outside the conjunctive fragment"
    )


def _apply_join_predicate(
    predicate: S.Predicate,
    left: _Translation,
    right: _Translation,
    merged: _Translation,
) -> None:
    if predicate is S.TRUE:
        return
    if isinstance(predicate, S.And):
        for operand in predicate.operands:
            _apply_join_predicate(operand, left, right, merged)
        return
    if isinstance(predicate, E._JoinEq):
        left_term = left.colmap.get(predicate.left_col)
        right_term = right.colmap.get(predicate.right_col)
        if left_term is None or right_term is None:
            raise ExpressivenessError(
                f"join condition references unknown columns "
                f"{predicate.left_col!r}/{predicate.right_col!r}"
            )
        _unify_terms(left_term, right_term, merged)
        return
    raise ExpressivenessError(
        f"join predicate {predicate!r} is outside the conjunctive fragment"
    )


def _scalar_term(scalar: S.Scalar, translation: _Translation) -> Term:
    if isinstance(scalar, S.Col):
        if scalar.name not in translation.colmap:
            raise ExpressivenessError(f"unknown column {scalar.name!r}")
        return translation.colmap[scalar.name]
    if isinstance(scalar, S.Lit):
        return Const(scalar.value)
    raise ExpressivenessError(f"scalar {scalar!r} outside conjunctive fragment")


def _unify_terms(left: Term, right: Term, translation: _Translation) -> None:
    """Record an equality by substituting through atoms and colmap."""
    if left == right:
        return
    if isinstance(left, Const) and isinstance(right, Const):
        # Constant equality: keep as (unsatisfiable or trivial) condition.
        translation.conditions.append(Equality(left, right))
        return
    if isinstance(left, Const):
        left, right = right, left
    substitution = {left: right}
    translation.atoms = [a.substitute(substitution) for a in translation.atoms]
    translation.conditions = [
        c.substitute(substitution) for c in translation.conditions
    ]
    translation.colmap = {
        column: (right if term == left else term)
        for column, term in translation.colmap.items()
    }


# ----------------------------------------------------------------------
# CQ → algebra
# ----------------------------------------------------------------------
def cq_to_algebra(table_query: TableQuery, distinct: bool = True) -> E.RelExpr:
    """Compile a TableQuery into executable algebra.

    Each atom becomes a scan, renamed to variable-keyed columns; atoms
    join on shared variables; conditions become selections; the head
    becomes the final projection.  ``distinct`` adds set semantics (the
    default, matching CQ semantics).
    """
    query = table_query.query
    if len(query.head) != len(table_query.columns):
        raise ExpressivenessError("head arity and column list disagree")
    plan: Optional[E.RelExpr] = None
    bound: set[str] = set()
    for index, atom in enumerate(query.body):
        piece = _atom_plan(atom, index)
        piece_vars = {v.name for v in atom.variables()}
        if plan is None:
            plan = piece
        else:
            shared = sorted(bound & piece_vars)
            plan = E.eq_join(plan, piece, [(v, v) for v in shared])
        bound |= piece_vars
    if plan is None:
        plan = E.Values([{}])  # empty body: single empty row
    for condition in query.conditions:
        plan = E.Select(plan, _condition_predicate(condition))
    outputs = []
    for column, var in zip(table_query.columns, query.head):
        if var.name not in bound:
            raise ExpressivenessError(f"unsafe head variable {var.name!r}")
        outputs.append((column, S.Col(var.name)))
    plan = E.Project(plan, outputs)
    if distinct:
        plan = E.Distinct(plan)
    return plan


def _atom_plan(atom: Atom, index: int) -> E.RelExpr:
    scan: E.RelExpr = E.Scan(atom.relation)
    outputs: dict[str, S.Scalar] = {}
    selections: list[S.Predicate] = []
    for attribute, term in atom.args:
        if isinstance(term, Const):
            selections.append(S.Comparison("=", S.Col(attribute), S.Lit(term.value)))
        elif isinstance(term, Var):
            if term.name in outputs:
                # Repeated variable within the atom: equality selection.
                selections.append(
                    S.Comparison("=", outputs[term.name], S.Col(attribute))
                )
            else:
                outputs[term.name] = S.Col(attribute)
        else:
            raise ExpressivenessError("function terms cannot be compiled")
    if selections:
        scan = E.Select(scan, S.conjunction(selections))
    return E.Project(scan, [(name, scalar) for name, scalar in outputs.items()])


def _condition_predicate(condition: Equality) -> S.Predicate:
    def to_scalar(term: Term) -> S.Scalar:
        if isinstance(term, Var):
            return S.Col(term.name)
        if isinstance(term, Const):
            return S.Lit(term.value)
        raise ExpressivenessError("function terms cannot be compiled")

    return S.Comparison("=", to_scalar(condition.left), to_scalar(condition.right))


# ----------------------------------------------------------------------
# containments and equalities as tgds
# ----------------------------------------------------------------------
def containment_tgd(
    sub: TableQuery, sup: TableQuery, name: str = ""
) -> TGD:
    """The tgd asserting ``sub ⊆ sup`` (answers of ``sub`` appear among
    answers of ``sup``), heads aligned positionally."""
    if len(sub.query.head) != len(sup.query.head):
        raise ExpressivenessError("containment requires equal head arity")
    if sub.query.conditions or sup.query.conditions:
        raise ExpressivenessError(
            "containment tgds require condition-free queries; "
            "fold conditions into atoms first"
        )
    # Rename sup's variables apart from sub's.
    used = {v.name for v in sub.query.variables()}
    renaming: dict[Var, Var] = {}
    for var in sorted(sup.query.variables(), key=lambda v: v.name):
        fresh_name = var.name
        while fresh_name in used:
            fresh_name += "_"
        renaming[var] = Var(fresh_name)
        used.add(fresh_name)
    head_alignment = {
        renaming[sup_var]: sub_var
        for sup_var, sub_var in zip(sup.query.head, sub.query.head)
    }
    substitution: dict[Var, Term] = {**renaming, **head_alignment}
    head_atoms = tuple(a.substitute(substitution) for a in sup.query.body)
    return TGD(body=sub.query.body, head=head_atoms, name=name)


def equality_to_tgds(
    sub: TableQuery, sup: TableQuery, name: str = ""
) -> list[TGD]:
    """An equality constraint ``q1 = q2`` as its two containment tgds."""
    return [
        containment_tgd(sub, sup, name=f"{name}⊆" if name else ""),
        containment_tgd(sup, sub, name=f"{name}⊇" if name else ""),
    ]
