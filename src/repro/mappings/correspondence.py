"""Correspondences: the first refinement level of mapping design.

"Correspondences are pairs of elements from the two schemas that are
believed to be related in some unspecified way … hints that tell which
elements of the two schemas need to be related by a mapping" (paper,
Section 3.1).  The Match operator produces these; the interpretation
module turns them into constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.errors import MappingError
from repro.metamodel.schema import ElementPath, Schema


@dataclass(frozen=True)
class Correspondence:
    """A hint that ``source`` and ``target`` elements are related.

    ``confidence`` is the matcher's score in [0, 1] (1.0 for
    hand-specified correspondences); ``expression`` optionally records a
    value transformation ("value correspondences … may include
    computations over source elements", Section 3.1.2), as a textual
    note carried through to constraint generation.
    """

    source: ElementPath
    target: ElementPath
    confidence: float = 1.0
    expression: Optional[str] = None

    def __str__(self) -> str:
        arrow = f" [{self.expression}]" if self.expression else ""
        return f"{self.source} ≈ {self.target} ({self.confidence:.2f}){arrow}"


class CorrespondenceSet:
    """All correspondences between one schema pair, with top-k access.

    The paper argues (Section 3.1.1) that for engineered mappings a
    matcher should "return all viable candidates for a given element,
    rather than only the best one" — so this container keeps every
    candidate and exposes :meth:`top_k` per source element, as well as
    :meth:`best_one_to_one` for tools that want a classical selection.
    """

    def __init__(
        self,
        source: Schema,
        target: Schema,
        correspondences: Iterable[Correspondence] = (),
    ):
        self.source = source
        self.target = target
        self._items: list[Correspondence] = []
        for correspondence in correspondences:
            self.add(correspondence)

    def add(self, correspondence: Correspondence) -> None:
        if correspondence.source.schema != self.source.name:
            raise MappingError(
                f"correspondence source {correspondence.source} is not in "
                f"schema {self.source.name!r}"
            )
        if correspondence.target.schema != self.target.name:
            raise MappingError(
                f"correspondence target {correspondence.target} is not in "
                f"schema {self.target.name!r}"
            )
        self.source.resolve(correspondence.source.path)
        self.target.resolve(correspondence.target.path)
        self._items.append(correspondence)

    def add_pair(
        self,
        source_path: str,
        target_path: str,
        confidence: float = 1.0,
        expression: Optional[str] = None,
    ) -> Correspondence:
        correspondence = Correspondence(
            ElementPath(self.source.name, source_path),
            ElementPath(self.target.name, target_path),
            confidence,
            expression,
        )
        self.add(correspondence)
        return correspondence

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Correspondence]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def for_source(self, path: str) -> list[Correspondence]:
        return sorted(
            (c for c in self._items if c.source.path == path),
            key=lambda c: -c.confidence,
        )

    def for_target(self, path: str) -> list[Correspondence]:
        return sorted(
            (c for c in self._items if c.target.path == path),
            key=lambda c: -c.confidence,
        )

    def top_k(self, k: int) -> "CorrespondenceSet":
        """Keep the k best candidates per source element — the paper's
        recommended deliverable for engineered-mapping design."""
        kept: list[Correspondence] = []
        by_source: dict[str, list[Correspondence]] = {}
        for correspondence in self._items:
            by_source.setdefault(correspondence.source.path, []).append(
                correspondence
            )
        for candidates in by_source.values():
            candidates.sort(key=lambda c: -c.confidence)
            kept.extend(candidates[:k])
        return CorrespondenceSet(self.source, self.target, kept)

    def above(self, threshold: float) -> "CorrespondenceSet":
        return CorrespondenceSet(
            self.source,
            self.target,
            (c for c in self._items if c.confidence >= threshold),
        )

    def best_one_to_one(self) -> "CorrespondenceSet":
        """A stable greedy one-to-one selection by descending confidence
        (the classical matcher output for comparison in benchmarks)."""
        chosen: list[Correspondence] = []
        used_sources: set[str] = set()
        used_targets: set[str] = set()
        for correspondence in sorted(self._items, key=lambda c: -c.confidence):
            if correspondence.source.path in used_sources:
                continue
            if correspondence.target.path in used_targets:
                continue
            chosen.append(correspondence)
            used_sources.add(correspondence.source.path)
            used_targets.add(correspondence.target.path)
        return CorrespondenceSet(self.source, self.target, chosen)

    def entity_pairs(self) -> set[tuple[str, str]]:
        """Entity-level pairs implied by the correspondences (attribute
        correspondences imply their owning entities correspond)."""
        pairs: set[tuple[str, str]] = set()
        for correspondence in self._items:
            pairs.add(
                (correspondence.source.entity, correspondence.target.entity)
            )
        return pairs

    def attribute_pairs(self) -> list[Correspondence]:
        return [
            c
            for c in self._items
            if not c.source.is_entity and not c.target.is_entity
        ]

    def describe(self) -> str:
        return "\n".join(str(c) for c in self._items) or "(no correspondences)"
