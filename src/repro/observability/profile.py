"""Span-tree post-processing: critical path, self-time rollups, and
Chrome-trace-event export.

The tracer records inclusive wall time per span.  This module turns a
finished trace into the three views perf work actually needs:

* :func:`critical_path` — the most expensive root-to-leaf chain, i.e.
  where an optimization could shorten the end-to-end run;
* :func:`rollup` — per-span-name aggregation of calls, inclusive time,
  and *self* time (inclusive minus direct children — the time spent in
  the span's own code), sorted so the hottest name tops the list;
* :func:`export_chrome_trace` — the whole tree as Chrome trace-event
  JSON (``"X"`` complete events grouped by recording thread), loadable
  in Perfetto / ``chrome://tracing`` for a zoomable timeline.

Everything here reads the finished span tree only — no engine state,
no enable/disable interaction — so it works on a live tracer or on
spans rebuilt from a JSONL export.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.observability.tracing import Span, tracer


def _roots(spans: Optional[Sequence[Span]]) -> list[Span]:
    if spans is None:
        return list(tracer.roots)
    return list(spans)


def _walk(roots: Iterable[Span]) -> Iterable[Span]:
    stack = list(reversed(list(roots)))
    while stack:
        span = stack.pop()
        yield span
        stack.extend(reversed(span.children))


def span_self_ms(span: Span) -> float:
    """Inclusive wall time minus the direct children's inclusive time
    (clamped at zero — clock granularity can make children appear to
    overrun their parent by microseconds)."""
    if span.wall_ms is None:
        return 0.0
    children = sum(c.wall_ms or 0.0 for c in span.children)
    return max(0.0, span.wall_ms - children)


def critical_path(roots: Optional[Sequence[Span]] = None) -> list[Span]:
    """The most expensive root-to-leaf chain of the trace: start from
    the costliest root, then repeatedly descend into the costliest
    child.  Empty when nothing was recorded."""
    candidates = [r for r in _roots(roots) if r.wall_ms is not None]
    if not candidates:
        return []
    span = max(candidates, key=lambda s: s.wall_ms)
    path = [span]
    while span.children:
        finished = [c for c in span.children if c.wall_ms is not None]
        if not finished:
            break
        span = max(finished, key=lambda s: s.wall_ms)
        path.append(span)
    return path


def render_critical_path(roots: Optional[Sequence[Span]] = None) -> str:
    path = critical_path(roots)
    if not path:
        return "(no finished spans)"
    total = path[0].wall_ms or 0.0
    lines = [f"critical path: {len(path)} span(s), {total:.2f}ms total"]
    for depth, span in enumerate(path):
        share = (span.wall_ms / total * 100.0) if total else 0.0
        lines.append(
            f"{'  ' * depth}→ {span.name}  {span.wall_ms:.2f}ms"
            f"  ({share:.0f}% of root, self {span_self_ms(span):.2f}ms)"
        )
    return "\n".join(lines)


@dataclass
class RollupEntry:
    """Aggregate cost of one span name across the trace."""

    name: str
    calls: int
    total_ms: float       # sum of inclusive wall times
    self_ms: float        # sum of (inclusive − direct children)
    max_ms: float         # worst single call, inclusive

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "total_ms": self.total_ms,
            "self_ms": self.self_ms,
            "max_ms": self.max_ms,
        }


def rollup(roots: Optional[Sequence[Span]] = None) -> list[RollupEntry]:
    """Per-name aggregation over every finished span, sorted by self
    time (descending) — the profile view: who actually burned the
    wall clock, with child time attributed to the child."""
    by_name: dict[str, RollupEntry] = {}
    for span in _walk(_roots(roots)):
        if span.wall_ms is None:
            continue
        entry = by_name.get(span.name)
        if entry is None:
            entry = by_name[span.name] = RollupEntry(span.name, 0, 0.0, 0.0,
                                                     0.0)
        entry.calls += 1
        entry.total_ms += span.wall_ms
        entry.self_ms += span_self_ms(span)
        entry.max_ms = max(entry.max_ms, span.wall_ms)
    return sorted(
        by_name.values(), key=lambda e: (-e.self_ms, -e.total_ms, e.name)
    )


def render_rollup(roots: Optional[Sequence[Span]] = None) -> str:
    entries = rollup(roots)
    if not entries:
        return "(no finished spans)"
    width = max(len(e.name) for e in entries)
    width = max(width, len("span"))
    lines = [
        f"  {'span'.ljust(width)}  calls   self(ms)  total(ms)    max(ms)"
    ]
    for e in entries:
        lines.append(
            f"  {e.name.ljust(width)}  {e.calls:>5}  {e.self_ms:>9.2f}"
            f"  {e.total_ms:>9.2f}  {e.max_ms:>9.2f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def chrome_trace_events(
    roots: Optional[Sequence[Span]] = None,
    pid: int = 1,
    process_name: str = "repro-engine",
) -> list[dict]:
    """The trace as Chrome trace-event objects: one ``"X"`` (complete)
    event per finished span plus ``"M"`` metadata naming the process
    and each recording thread.  Timestamps are microseconds relative to
    the earliest span, so the timeline starts at zero."""
    spans = [s for s in _walk(_roots(roots)) if s.wall_ms is not None]
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    if not spans:
        return events
    epoch0 = min(s.started_at for s in spans)
    tids: dict[str, int] = {}
    for span in spans:
        thread = span.thread or "MainThread"
        tid = tids.get(thread)
        if tid is None:
            tid = tids[thread] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread},
                }
            )
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": (span.started_at - epoch0) * 1_000_000.0,
                "dur": span.wall_ms * 1000.0,
                "args": {
                    "span_id": span.span_id,
                    **{k: _jsonable(v) for k, v in span.attributes.items()},
                },
            }
        )
    return events


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def export_chrome_trace(
    path: Union[str, Path],
    roots: Optional[Sequence[Span]] = None,
) -> Path:
    """Write the trace as a Perfetto-loadable Chrome trace JSON file."""
    path = Path(path)
    payload = {
        "traceEvents": chrome_trace_events(roots),
        "displayTimeUnit": "ms",
    }
    path.write_text(json.dumps(payload, indent=1))
    return path
