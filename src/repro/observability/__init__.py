"""Engine-wide tracing and metrics (dependency-free).

The paper's runtime is a *services* layer — mapping debugging, data
provenance, inspection of executable transformations (§5) — and every
known complexity cliff (SO-tgd composition's exponential lower bound,
quasi-inverse search) makes per-operator telemetry the prerequisite
for perf work.  This package provides:

* a hierarchical **span tracer** (:mod:`repro.observability.tracing`)
  — context-manager API, thread-local active-span stack, wall/CPU time
  via ``perf_counter``/``process_time``, structured attributes, JSONL
  export, tree rendering;
* a **metrics registry** (:mod:`repro.observability.metrics`) —
  counters, gauges, fixed-bucket histograms with percentile summaries;
* an :func:`instrumented` decorator wiring both through any callable.

**Disabled by default.**  Every instrumented site guards on one shared
flag; :func:`enable` flips it for a session, :func:`disable` restores
the near-zero-overhead state.  ``repro trace <script>`` and
``repro metrics <script>`` expose the collected data on the CLI;
``benchmarks/harness.py`` routes benchmark runs through the registry.
"""

from __future__ import annotations

from repro.observability.instrument import instrumented
from repro.observability.metrics import (
    COUNT_BUCKETS,
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from repro.observability.profile import (
    RollupEntry,
    chrome_trace_events,
    critical_path,
    export_chrome_trace,
    render_critical_path,
    render_rollup,
    rollup,
    span_self_ms,
)
from repro.observability.state import STATE
from repro.observability.tracing import Span, Tracer, current_span, tracer

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RollupEntry",
    "STATE",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "critical_path",
    "current_span",
    "disable",
    "enable",
    "export_chrome_trace",
    "instrumented",
    "is_enabled",
    "registry",
    "render_critical_path",
    "render_rollup",
    "reset",
    "rollup",
    "span",
    "span_self_ms",
    "tracer",
]


def enable() -> None:
    """Turn tracing + metric collection on, process-wide."""
    STATE.enabled = True


def disable() -> None:
    """Return to the near-zero-overhead disabled state (recorded spans
    and metrics are kept until :func:`reset`)."""
    STATE.enabled = False


def is_enabled() -> bool:
    return STATE.enabled


def reset() -> None:
    """Drop all recorded spans, metrics, and query-log entries, and
    restore estimator tunables to their defaults."""
    from repro.observability.querylog import QUERY_LOG
    from repro.observability.stats import ESTIMATION

    tracer.reset()
    registry.reset()
    QUERY_LOG.clear()
    ESTIMATION.reset()


def span(name: str, **attributes: object):
    """Module-level shorthand for ``tracer.span(...)``."""
    return tracer.span(name, **attributes)
