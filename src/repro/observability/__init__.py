"""Engine-wide tracing and metrics (dependency-free).

The paper's runtime is a *services* layer — mapping debugging, data
provenance, inspection of executable transformations (§5) — and every
known complexity cliff (SO-tgd composition's exponential lower bound,
quasi-inverse search) makes per-operator telemetry the prerequisite
for perf work.  This package provides:

* a hierarchical **span tracer** (:mod:`repro.observability.tracing`)
  — context-manager API, thread-local active-span stack, wall/CPU time
  via ``perf_counter``/``process_time``, structured attributes, JSONL
  export, tree rendering;
* a **metrics registry** (:mod:`repro.observability.metrics`) —
  counters, gauges, fixed-bucket histograms with percentile summaries;
* an :func:`instrumented` decorator wiring both through any callable;
* request-scoped **trace context** propagation
  (:mod:`repro.observability.context`) — capture a
  :class:`TraceContext` on the caller's thread, restore it on shard
  workers / hop threads / the synchronizer so their spans join the
  caller's trace, with adaptive head+tail **sampling**
  (:mod:`repro.observability.sampling`);
* a bounded, trace-correlated **event journal**
  (:mod:`repro.observability.journal`) of engine lifecycle events —
  chase rounds, reconciliations, backpressure waits, re-optimizations,
  evictions, and every silent fallback;
* a **health monitor** (:mod:`repro.observability.health`) judging
  metric-derived signals against SLO thresholds, behind
  ``repro health`` and the live ``repro top`` dashboard
  (:mod:`repro.observability.top`).

**Disabled by default.**  Every instrumented site guards on one shared
flag; :func:`enable` flips it for a session, :func:`disable` restores
the near-zero-overhead state.  ``repro trace <script>`` and
``repro metrics <script>`` expose the collected data on the CLI;
``benchmarks/harness.py`` routes benchmark runs through the registry.
"""

from __future__ import annotations

from repro.observability.context import (
    TraceContext,
    activate,
    capture,
    current_context,
    propagating,
)
from repro.observability.health import (
    MONITOR,
    HealthConfig,
    HealthMonitor,
    HealthReport,
    HealthSignal,
)
from repro.observability.instrument import instrumented
from repro.observability.journal import (
    JOURNAL,
    EventJournal,
    JournalEvent,
    journal,
    record_backpressure,
)
from repro.observability.metrics import (
    COUNT_BUCKETS,
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from repro.observability.sampling import SAMPLER, Sampler
from repro.observability.profile import (
    RollupEntry,
    chrome_trace_events,
    critical_path,
    export_chrome_trace,
    render_critical_path,
    render_rollup,
    rollup,
    span_self_ms,
)
from repro.observability.state import STATE
from repro.observability.top import render_top
from repro.observability.tracing import (
    Span,
    Tracer,
    current_span,
    current_trace_id,
    tracer,
)

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "DEFAULT_BUCKETS",
    "EventJournal",
    "Gauge",
    "HealthConfig",
    "HealthMonitor",
    "HealthReport",
    "HealthSignal",
    "Histogram",
    "JOURNAL",
    "JournalEvent",
    "MONITOR",
    "MetricsRegistry",
    "RollupEntry",
    "SAMPLER",
    "STATE",
    "Sampler",
    "Span",
    "TraceContext",
    "Tracer",
    "activate",
    "capture",
    "chrome_trace_events",
    "critical_path",
    "current_context",
    "current_span",
    "current_trace_id",
    "disable",
    "enable",
    "export_chrome_trace",
    "instrumented",
    "is_enabled",
    "journal",
    "propagating",
    "record_backpressure",
    "registry",
    "render_critical_path",
    "render_rollup",
    "render_top",
    "reset",
    "rollup",
    "span",
    "span_self_ms",
    "tracer",
]


def enable() -> None:
    """Turn tracing + metric collection on, process-wide."""
    STATE.enabled = True


def disable() -> None:
    """Return to the near-zero-overhead disabled state (recorded spans
    and metrics are kept until :func:`reset`)."""
    STATE.enabled = False


def is_enabled() -> bool:
    return STATE.enabled


def reset() -> None:
    """Drop all recorded telemetry — spans, metrics, query-log and
    journal entries — stop the health monitor, restore estimator
    tunables, and re-read the sampler's environment config."""
    from repro.observability.querylog import QUERY_LOG
    from repro.observability.stats import ESTIMATION

    MONITOR.reset()
    tracer.reset()
    registry.reset()
    QUERY_LOG.clear()
    JOURNAL.clear()
    SAMPLER.reset()
    ESTIMATION.reset()


def span(name: str, **attributes: object):
    """Module-level shorthand for ``tracer.span(...)``."""
    return tracer.span(name, **attributes)
