"""The ``@instrumented`` decorator.

Wraps a callable in a span.  While tracing is disabled the wrapper is
one attribute check plus the delegated call — the overhead contract
verified by ``benchmarks/bench_observability.py``.

``attrs`` receives the wrapped callable's arguments and returns the
span's attribute dict; it runs only when tracing is enabled, so
input-size computations (row counts, constraint counts) cost nothing
in the disabled state.
"""

from __future__ import annotations

import functools
from typing import Callable, Optional

from repro.observability.state import STATE
from repro.observability.tracing import tracer


def instrumented(name: Optional[str] = None,
                 attrs: Optional[Callable[..., dict]] = None):
    """Decorate a function so each call emits a span.

    ``@instrumented`` (bare), ``@instrumented("op.compose")``, or
    ``@instrumented("op.compose", attrs=lambda m1, m2, *a: {...})``.
    """
    if callable(name):  # bare @instrumented
        function, name = name, None
        return instrumented()(function)

    def decorate(function: Callable) -> Callable:
        label = name or function.__qualname__

        @functools.wraps(function)
        def wrapper(*args, **kwargs):
            if not STATE.enabled:
                return function(*args, **kwargs)
            attributes = attrs(*args, **kwargs) if attrs is not None else {}
            span = tracer.start(label, **attributes)
            try:
                return function(*args, **kwargs)
            finally:
                tracer.finish(span)

        wrapper.__instrumented__ = label
        return wrapper

    return decorate
