"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry (:data:`registry`) is a process-wide name → metric map.
Recording sites in the engine guard every update with
``STATE.enabled`` so a disabled registry costs one attribute check.
Each metric's update path (``inc`` / ``set`` / ``observe``) is
serialized on a per-metric lock, so concurrent shard workers never
lose increments; the enable/disable switch itself stays unguarded for
code (the benchmark harness, tests) that manages it explicitly.

Histograms use *fixed* bucket bounds so percentile summaries need no
stored samples: a percentile is located in its bucket by cumulative
count and linearly interpolated inside it — the classical Prometheus
estimation, exact at bucket boundaries and bounded by the bucket width
in between.
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from pathlib import Path
from typing import Optional, Sequence, Union

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prometheus_name(name: str) -> str:
    """Sanitize a metric name to the Prometheus grammar
    (``[a-zA-Z_:][a-zA-Z0-9_:]*``)."""
    sanitized = _PROM_INVALID.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prometheus_value(value: float) -> str:
    """Render a sample value: integral floats without the trailing
    ``.0`` noise (bucket bounds read as ``le="10"``, not ``le="10.0"``)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double-quote, and line feed."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """Escape ``# HELP`` text (backslash and line feed only — quotes
    are legal in help text)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


#: Dotted-prefix → ``# HELP`` text for well-known metric families;
#: anything unmatched gets a generic line naming the source metric.
HELP_TEXTS: tuple[tuple[str, str], ...] = (
    ("span.", "Span timing recorded by the repro tracer"),
    ("chase.", "Chase engine activity"),
    ("query.plan_cache.", "Compiled-plan cache activity"),
    ("query.reopt.", "Adaptive re-optimization activity"),
    ("query.vectorized.", "Vectorized executor activity"),
    ("query.", "Query execution activity"),
    ("backpressure.", "Time threads spent blocked on bounded queues"),
    ("trace.sampler.", "Trace sampler decisions"),
    ("health.", "Health monitor activity"),
    ("runtime.", "Runtime service activity"),
)


def _help_for(name: str) -> str:
    for prefix, text in HELP_TEXTS:
        if name.startswith(prefix):
            return text
    return f"repro metric {name}"

#: Default bounds, tuned for millisecond latencies (spans) but serving
#: row/trigger counts acceptably; pass explicit bounds for counts.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0,
    100.0, 500.0, 1_000.0, 5_000.0, 10_000.0,
)

#: Bounds for size-like observations (delta sizes, row counts).
COUNT_BUCKETS: tuple[float, ...] = (
    0, 1, 2, 5, 10, 25, 50, 100, 250, 500,
    1_000, 2_500, 5_000, 10_000, 50_000, 100_000,
)


class Counter:
    """A monotonically increasing count.

    Updates are serialized on a lock (the registry hands every metric
    its own lock): ``value += amount`` is a read-modify-write, so
    unguarded concurrent shard workers could lose increments."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: Optional[threading.Lock] = None):
        self.name = name
        self.value = 0
        self._lock = lock if lock is not None else threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (last write wins, atomically)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: Optional[threading.Lock] = None):
        self.name = name
        self.value: Optional[float] = None
        self._lock = lock if lock is not None else threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with interpolated percentile summaries."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max", "_lock")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS,
                 lock: Optional[threading.Lock] = None):
        self.name = name
        self._lock = lock if lock is not None else threading.Lock()
        self.bounds = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # last: +Inf
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        with self._lock:
            self.bucket_counts[bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """Estimated q-th percentile (q in [0, 100]) by cumulative
        bucket counts with linear interpolation inside the bucket.

        Edge semantics are exact rather than interpolated: ``None`` on
        an empty histogram, the observed ``min`` for ``q=0``, the
        observed ``max`` for ``q=100`` (``q`` outside [0, 100] is
        clamped), and the single observed value when all observations
        are equal — including overflow-bucket observations beyond the
        last bound, which interpolate between the last bound and
        ``max`` instead of against an unbounded bucket."""
        return self._estimate(
            self.bounds, list(self.bucket_counts), self.min, self.max, q
        )

    @staticmethod
    def _estimate(
        bounds: Sequence[float],
        bucket_counts: Sequence[int],
        minimum: Optional[float],
        maximum: Optional[float],
        q: float,
    ) -> Optional[float]:
        count = sum(bucket_counts)
        if not count or minimum is None or maximum is None:
            return None
        if minimum == maximum:
            return minimum          # one observation / one distinct value
        if q <= 0:
            return minimum
        if q >= 100:
            return maximum
        rank = q / 100.0 * count
        cumulative = 0
        for index, bucket_count in enumerate(bucket_counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                lower = bounds[index - 1] if index > 0 else minimum
                upper = bounds[index] if index < len(bounds) else maximum
                lower = max(lower, minimum)
                upper = min(upper, maximum)
                if upper <= lower:
                    return upper    # zero-width after clamping
                fraction = (rank - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
        return maximum

    def summary(self) -> dict:
        # Copy-on-read: one consistent snapshot of the bucket counts
        # serves all three percentiles, and the count is derived from
        # that same copy, so a concurrent observe() can neither raise
        # nor tear the summary (it is at worst one observation stale).
        bucket_counts = list(self.bucket_counts)
        minimum, maximum, total = self.min, self.max, self.total
        count = sum(bucket_counts)
        return {
            "count": count,
            "sum": round(total, 6),
            "min": minimum,
            "max": maximum,
            "mean": round(total / count, 6) if count else None,
            "p50": self._estimate(self.bounds, bucket_counts,
                                  minimum, maximum, 50),
            "p90": self._estimate(self.bounds, bucket_counts,
                                  minimum, maximum, 90),
            "p99": self._estimate(self.bounds, bucket_counts,
                                  minimum, maximum, 99),
        }

    def to_dict(self) -> dict:
        return {"type": "histogram", **self.summary()}


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name → metric, with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()
        #: Bumped on every :meth:`reset`; callers that cache metric
        #: objects (the tracer's per-span-name fast path) compare this
        #: to invalidate their caches.
        self.generation = 0

    def _get_or_create(self, name: str, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = self._metrics[name] = factory()
        return metric

    def counter(self, name: str) -> Counter:
        metric = self._get_or_create(name, lambda: Counter(name, lock=threading.Lock()))
        if not isinstance(metric, Counter):
            raise TypeError(f"{name!r} is a {type(metric).__name__}, "
                            "not a Counter")
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get_or_create(name, lambda: Gauge(name, lock=threading.Lock()))
        if not isinstance(metric, Gauge):
            raise TypeError(f"{name!r} is a {type(metric).__name__}, "
                            "not a Gauge")
        return metric

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        metric = self._get_or_create(
            name, lambda: Histogram(name, buckets or DEFAULT_BUCKETS,
                              lock=threading.Lock())
        )
        if not isinstance(metric, Histogram):
            raise TypeError(f"{name!r} is a {type(metric).__name__}, "
                            "not a Histogram")
        return metric

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._view())

    def reset(self) -> None:
        with self._lock:
            self._metrics = {}
            self.generation += 1

    def _view(self) -> dict[str, Metric]:
        """Copy-on-read: a stable map for iteration while writer
        threads may still be registering metrics (a live dict would
        raise ``RuntimeError: dictionary changed size``)."""
        with self._lock:
            return dict(self._metrics)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """JSON-ready {name: {type, ...values}} of every metric.

        Safe to call while other threads record: the name map is
        copied under the lock and each histogram summary reads one
        consistent copy of its bucket counts."""
        view = self._view()
        return {name: view[name].to_dict() for name in sorted(view)}

    def export_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.snapshot(), indent=2,
                                   default=str) + "\n")
        return path

    def render_prometheus(self) -> str:
        """Prometheus text-exposition rendering of every metric.

        Counters and gauges emit one sample each (unset gauges are
        skipped — Prometheus has no ``null``); histograms emit the
        standard cumulative ``_bucket{le="..."}`` series ending at
        ``le="+Inf"`` plus ``_sum`` and ``_count``.  Every family gets
        ``# HELP`` and ``# TYPE`` lines; metric names are sanitized to
        the Prometheus grammar (``.`` → ``_``) and label values are
        escaped per the exposition format."""
        view = self._view()
        lines: list[str] = []
        for name in sorted(view):
            metric = view[name]
            prom = _prometheus_name(name)
            help_line = f"# HELP {prom} {_escape_help(_help_for(name))}"
            if isinstance(metric, Counter):
                lines.append(help_line)
                lines.append(f"# TYPE {prom} counter")
                lines.append(f"{prom} {metric.value}")
            elif isinstance(metric, Gauge):
                if metric.value is None:
                    continue
                lines.append(help_line)
                lines.append(f"# TYPE {prom} gauge")
                lines.append(f"{prom} {_prometheus_value(metric.value)}")
            else:
                # One consistent copy: writers may observe concurrently.
                bucket_counts = list(metric.bucket_counts)
                lines.append(help_line)
                lines.append(f"# TYPE {prom} histogram")
                cumulative = 0
                for bound, count in zip(metric.bounds, bucket_counts):
                    cumulative += count
                    bound_label = _escape_label_value(
                        _prometheus_value(bound)
                    )
                    lines.append(
                        f'{prom}_bucket{{le="{bound_label}"}}'
                        f" {cumulative}"
                    )
                cumulative += bucket_counts[-1]
                lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{prom}_sum {_prometheus_value(metric.total)}")
                lines.append(f"{prom}_count {cumulative}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render(self) -> str:
        """Human-readable metric summaries, one line per metric."""
        view = self._view()
        if not view:
            return "(no metrics recorded)"
        lines = [f"metrics: {len(view)} recorded"]
        for name in sorted(view):
            metric = view[name]
            if isinstance(metric, Counter):
                lines.append(f"  {name} = {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"  {name} = {metric.value}")
            else:
                s = metric.summary()

                def fmt(v):
                    return f"{v:.3f}" if isinstance(v, float) else str(v)

                lines.append(
                    f"  {name}: count={s['count']} mean={fmt(s['mean'])} "
                    f"p50={fmt(s['p50'])} p90={fmt(s['p90'])} "
                    f"p99={fmt(s['p99'])} max={fmt(s['max'])}"
                )
        return "\n".join(lines)


#: Process-wide registry used by all engine instrumentation.
registry = MetricsRegistry()
