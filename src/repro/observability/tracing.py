"""Hierarchical span tracer.

A *span* is one timed region of engine work — an operator invocation, a
runtime-service call, a chase run.  Spans nest: each thread keeps a
stack of active spans, and a span started while another is active
becomes its child, so one Figure-5 evolution script yields a single
coherent tree (script → operator → chase).

The tracer is a process-wide singleton (:data:`tracer`) guarded by
:data:`repro.observability.state.STATE`: while disabled,
:meth:`Tracer.span` is a no-op context manager that yields ``None`` and
touches no shared state.

Exports: :meth:`Tracer.render` prints the tree with per-span wall time
and attributes; :meth:`Tracer.export_jsonl` writes one JSON object per
span (see docs/OBSERVABILITY.md for the schema).  Finishing a span also
feeds the metrics registry — a ``span.<name>.calls`` counter and a
``span.<name>.wall_ms`` histogram — which is what makes operator
latency summaries exportable without any extra wiring.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.observability.state import STATE


@dataclass
class Span:
    """One timed, attributed region of work."""

    name: str
    span_id: str
    parent_id: Optional[str]
    started_at: float                      # epoch seconds
    attributes: dict[str, object] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    wall_ms: Optional[float] = None        # set when the span finishes
    cpu_ms: Optional[float] = None
    thread: str = ""
    _wall0: float = field(default=0.0, repr=False)
    _cpu0: float = field(default=0.0, repr=False)

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def set_attributes(self, **attributes: object) -> None:
        self.attributes.update(attributes)

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "started_at": self.started_at,
            "wall_ms": self.wall_ms,
            "cpu_ms": self.cpu_ms,
            "thread": self.thread,
            "attributes": self.attributes,
        }


class Tracer:
    """Thread-safe hierarchical tracer with a per-thread active stack."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.roots: list[Span] = []

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost active span of this thread (None when idle or
        tracing is disabled)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    def start(
        self,
        name: str,
        parent: Optional[Span] = None,
        **attributes: object,
    ) -> Span:
        """Begin a span unconditionally (callers must have checked
        ``STATE.enabled``; prefer :meth:`span`).

        ``parent`` overrides the implicit this-thread nesting: shard
        workers pass the coordinator's chase span so their rounds join
        its tree instead of becoming disconnected roots.  The explicit
        parent must still be open (child appends are atomic under the
        GIL, so concurrent workers may share one parent)."""
        with self._lock:
            span_id = f"s{next(self._ids):04d}"
        if parent is None:
            parent = self.current()
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent.span_id if parent else None,
            started_at=time.time(),
            attributes=dict(attributes),
            thread=threading.current_thread().name,
        )
        if parent is not None:
            parent.children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        self._stack().append(span)
        span._wall0 = time.perf_counter()
        span._cpu0 = time.process_time()
        return span

    def finish(self, span: Span) -> None:
        span.wall_ms = (time.perf_counter() - span._wall0) * 1000.0
        span.cpu_ms = (time.process_time() - span._cpu0) * 1000.0
        stack = self._stack()
        if span in stack:            # tolerate mismatched finish order
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        from repro.observability.metrics import registry

        registry.counter(f"span.{span.name}.calls").inc()
        registry.histogram(f"span.{span.name}.wall_ms").observe(span.wall_ms)

    @contextmanager
    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        **attributes: object,
    ) -> Iterator[Optional[Span]]:
        """Context manager for one span; yields ``None`` (and does no
        work at all) while tracing is disabled.  ``parent`` explicitly
        re-parents the span (see :meth:`start`)."""
        if not STATE.enabled:
            yield None
            return
        span = self.start(name, parent=parent, **attributes)
        try:
            yield span
        finally:
            self.finish(span)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        with self._lock:
            self.roots = []
            self._ids = itertools.count(1)
        self._local = threading.local()

    def iter_spans(self) -> Iterator[Span]:
        """All recorded spans, depth-first.

        Copy-on-read: the root list and each child list are copied
        before traversal, so exporting or rendering while another
        thread is still recording spans never raises ``list changed
        size during iteration`` (late spans may simply be absent)."""
        with self._lock:
            stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(list(span.children)))

    def span_count(self) -> int:
        return sum(1 for _ in self.iter_spans())

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export_jsonl(self, path: Union[str, Path]) -> Path:
        """One JSON object per span, parents before children."""
        path = Path(path)
        lines = [
            json.dumps(span.to_dict(), default=str)
            for span in self.iter_spans()
        ]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path

    def render(self, attributes: bool = True) -> str:
        """The span tree as indented text with per-span wall time.
        Copy-on-read like :meth:`iter_spans` — safe against concurrent
        recording."""
        with self._lock:
            roots = list(self.roots)
        if not roots:
            return "(no spans recorded)"
        lines = [f"trace: {self.span_count()} spans, "
                 f"{len(roots)} root(s)"]

        def emit(span: Span, prefix: str, is_last: bool) -> None:
            connector = "└─ " if is_last else "├─ "
            wall = f"{span.wall_ms:.2f}ms" if span.wall_ms is not None \
                else "(open)"
            attrs = ""
            if attributes and span.attributes:
                rendered = " ".join(
                    f"{k}={v}" for k, v in sorted(span.attributes.items())
                )
                attrs = f"  [{rendered}]"
            lines.append(
                f"{prefix}{connector}{span.name}  {wall}"
                f"  ({span.span_id}){attrs}"
            )
            child_prefix = prefix + ("   " if is_last else "│  ")
            children = list(span.children)
            for index, child in enumerate(children):
                emit(child, child_prefix, index == len(children) - 1)

        for index, root in enumerate(roots):
            emit(root, "", index == len(roots) - 1)
        return "\n".join(lines)


#: Process-wide tracer used by all engine instrumentation.
tracer = Tracer()


def current_span() -> Optional[Span]:
    """The innermost active span of the calling thread."""
    return tracer.current()
