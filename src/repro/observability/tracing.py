"""Hierarchical span tracer with request-scoped trace context.

A *span* is one timed region of engine work — an operator invocation, a
runtime-service call, a chase run.  Spans nest: each thread keeps a
stack of active spans, and a span started while another is active
becomes its child.  Every span carries the **trace id** of its root
(W3C-style 32-hex lowercase), so one request yields one correlatable
tree even when its work fans out across shard workers, p2p hop threads
and the queued synchronizer — those threads join the caller's trace by
*attaching* a captured :class:`~repro.observability.context.TraceContext`
(see :meth:`Tracer.attach`; the high-level helpers live in
:mod:`repro.observability.context`).

Root spans pass through the head sampler
(:data:`repro.observability.sampling.SAMPLER`): a head-dropped trace is
still built and timed, but is only attached to the tracer's root list
if, at finish time, it turns out slow or errored (tail-keep).  The
span context manager stamps an ``error`` attribute on exceptions, which
is what makes error traces tail-keepable.

The tracer is a process-wide singleton (:data:`tracer`) guarded by
:data:`repro.observability.state.STATE`: while disabled,
:meth:`Tracer.span` is a no-op context manager that yields ``None`` and
touches no shared state.

Exports: :meth:`Tracer.render` prints the tree with per-span wall time
and attributes; :meth:`Tracer.export_jsonl` writes one JSON object per
span (see docs/OBSERVABILITY.md for the schema).  Finishing a span also
feeds the metrics registry — a ``span.<name>.calls`` counter and a
``span.<name>.wall_ms`` histogram — which is what makes operator
latency summaries exportable without any extra wiring.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.observability.sampling import SAMPLER
from repro.observability.state import STATE


class Span:
    """One timed, attributed region of work.

    A hand-rolled ``__slots__`` class rather than a dataclass: one
    ``Span`` is allocated per instrumented call on the enabled hot
    path, and the slim constructor is a measurable part of the
    enabled-overhead contract.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "started_at", "trace_id",
        "attributes", "children", "wall_ms", "cpu_ms", "thread",
        "sampled", "_wall0", "_cpu0",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: Optional[str],
        started_at: float,                 # epoch seconds
        trace_id: str = "",
        attributes: Optional[dict] = None,
        children: Optional[list] = None,
        wall_ms: Optional[float] = None,   # set when the span finishes
        cpu_ms: Optional[float] = None,
        thread: str = "",
        sampled: bool = True,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.started_at = started_at
        self.trace_id = trace_id
        self.attributes = attributes if attributes is not None else {}
        self.children = children if children is not None else []
        self.wall_ms = wall_ms
        self.cpu_ms = cpu_ms
        self.thread = thread
        self.sampled = sampled
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __repr__(self) -> str:
        return (f"Span(name={self.name!r}, span_id={self.span_id!r}, "
                f"parent_id={self.parent_id!r}, "
                f"trace_id={self.trace_id!r}, wall_ms={self.wall_ms!r})")

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def set_attributes(self, **attributes: object) -> None:
        self.attributes.update(attributes)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "started_at": self.started_at,
            "wall_ms": self.wall_ms,
            "cpu_ms": self.cpu_ms,
            "thread": self.thread,
            "attributes": self.attributes,
        }


class Tracer:
    """Thread-safe hierarchical tracer with a per-thread active stack
    and a per-thread attached remote context (cross-thread parenting)."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self.roots: list[Span] = []
        # Per-span-name (calls counter, wall_ms histogram) pairs so
        # finish() skips the f-string + registry lookup per span;
        # invalidated when the registry generation moves (reset).
        self._metric_cache: dict[str, tuple] = {}
        self._metric_gen = -1

    # ------------------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _remotes(self) -> list:
        remotes = getattr(self._local, "remotes", None)
        if remotes is None:
            remotes = self._local.remotes = []
        return remotes

    def current(self) -> Optional[Span]:
        """The innermost active span of this thread (None when idle or
        tracing is disabled)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def current_parent(self) -> Optional[Span]:
        """The span a new span on this thread would nest under: the
        innermost active local span, else the attached remote
        context's span (cross-thread propagation)."""
        stack = self._stack()
        if stack:
            return stack[-1]
        remotes = self._remotes()
        if remotes:
            ctx = remotes[-1]
            return ctx.span if ctx is not None else None
        return None

    # ------------------------------------------------------------------
    # remote-context attachment (see repro.observability.context)
    # ------------------------------------------------------------------
    def attach(self, ctx) -> object:
        """Attach a captured :class:`TraceContext` to this thread: the
        next span started with no local parent nests under
        ``ctx.span`` and inherits its trace id.  Returns a token for
        :meth:`detach`.  Attachments nest (a stack per thread)."""
        remotes = self._remotes()
        remotes.append(ctx)
        return ctx

    def detach(self, token: object) -> None:
        """Pop the innermost attachment (tolerates a token that is no
        longer on the stack — e.g. after a reset)."""
        remotes = self._remotes()
        if remotes and remotes[-1] is token:
            remotes.pop()
        elif token in remotes:           # mismatched detach order
            remotes.remove(token)

    # ------------------------------------------------------------------
    def start(self, name: str, **attributes: object) -> Span:
        """Begin a span unconditionally (callers must have checked
        ``STATE.enabled``; prefer :meth:`span`).

        Parentage: the innermost active span of this thread, else the
        attached remote context (a shard worker or hop thread running
        propagated work), else a new root.  Roots mint a fresh trace
        id and pass through the head sampler; children inherit both
        the trace id and the sampling decision."""
        stack = self._stack()
        if stack:
            parent = stack[-1]
        else:
            remotes = getattr(self._local, "remotes", None)
            ctx = remotes[-1] if remotes else None
            parent = ctx.span if ctx is not None else None
        if parent is not None:
            with self._lock:
                span_id = f"s{next(self._ids):04d}"
            trace_id = parent.trace_id
            sampled = parent.sampled
        else:
            with self._lock:
                span_id = f"s{next(self._ids):04d}"
                trace_id = f"{next(self._trace_ids):032x}"
            sampled = SAMPLER.decide(name)
        span = Span(
            name=name,
            span_id=span_id,
            parent_id=parent.span_id if parent else None,
            started_at=time.time(),
            trace_id=trace_id,
            # **attributes is already a per-call dict: no copy needed.
            attributes=attributes,
            thread=threading.current_thread().name,
            sampled=sampled,
        )
        if parent is not None:
            # Child appends are atomic under the GIL, so concurrent
            # worker threads may share one (still-open) parent.
            parent.children.append(span)
        elif sampled:
            with self._lock:
                self.roots.append(span)
        # A head-dropped root is kept off the root list for now; it is
        # promoted at finish time if slow or errored (tail-keep).
        stack.append(span)
        span._wall0 = time.perf_counter()
        span._cpu0 = time.process_time()
        return span

    def finish(self, span: Span) -> None:
        span.wall_ms = (time.perf_counter() - span._wall0) * 1000.0
        span.cpu_ms = (time.process_time() - span._cpu0) * 1000.0
        stack = self._stack()
        if span in stack:            # tolerate mismatched finish order
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        from repro.observability.metrics import registry

        if not span.sampled and span.parent_id is None:
            # Tail-keep: promote slow/error traces after the fact.
            if (
                span.wall_ms >= SAMPLER.tail_keep_ms
                or "error" in span.attributes
            ):
                span.sampled = True
                self._promote(span)
                SAMPLER.note_tail_promoted()
                registry.counter("trace.sampler.tail_promoted").inc()
            else:
                registry.counter("trace.sampler.dropped").inc()
        if self._metric_gen != registry.generation:
            self._metric_cache = {}
            self._metric_gen = registry.generation
        pair = self._metric_cache.get(span.name)
        if pair is None:
            pair = (
                registry.counter(f"span.{span.name}.calls"),
                registry.histogram(f"span.{span.name}.wall_ms"),
            )
            self._metric_cache[span.name] = pair
        pair[0].inc()
        pair[1].observe(span.wall_ms)

    def _promote(self, root: Span) -> None:
        """Attach a tail-kept root (and its whole tree) to the kept
        set, marking every reachable span sampled."""
        stack = [root]
        while stack:
            node = stack.pop()
            node.sampled = True
            stack.extend(node.children)
        with self._lock:
            self.roots.append(root)

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Optional[Span]]:
        """Context manager for one span; yields ``None`` (and does no
        work at all) while tracing is disabled.  Exceptions stamp an
        ``error`` attribute (the tail-keep trigger) and propagate."""
        if not STATE.enabled:
            yield None
            return
        span = self.start(name, **attributes)
        try:
            yield span
        except BaseException as exc:
            span.set_attribute("error", type(exc).__name__)
            raise
        finally:
            self.finish(span)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        with self._lock:
            self.roots = []
            self._ids = itertools.count(1)
            self._trace_ids = itertools.count(1)
        self._local = threading.local()

    def iter_spans(self) -> Iterator[Span]:
        """All recorded spans, depth-first.

        Copy-on-read: the root list and each child list are copied
        before traversal, so exporting or rendering while another
        thread is still recording spans never raises ``list changed
        size during iteration`` (late spans may simply be absent)."""
        with self._lock:
            stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(list(span.children)))

    def span_count(self) -> int:
        return sum(1 for _ in self.iter_spans())

    def trace_ids(self) -> list[str]:
        """Distinct trace ids across the kept roots, in root order."""
        seen: dict[str, None] = {}
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            seen.setdefault(root.trace_id)
        return list(seen)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export_jsonl(self, path: Union[str, Path]) -> Path:
        """One JSON object per span, parents before children."""
        path = Path(path)
        lines = [
            json.dumps(span.to_dict(), default=str)
            for span in self.iter_spans()
        ]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path

    def render(self, attributes: bool = True) -> str:
        """The span tree as indented text with per-span wall time.
        Copy-on-read like :meth:`iter_spans` — safe against concurrent
        recording."""
        with self._lock:
            roots = list(self.roots)
        if not roots:
            return "(no spans recorded)"
        lines = [f"trace: {self.span_count()} spans, "
                 f"{len(roots)} root(s)"]

        def emit(span: Span, prefix: str, is_last: bool) -> None:
            connector = "└─ " if is_last else "├─ "
            wall = f"{span.wall_ms:.2f}ms" if span.wall_ms is not None \
                else "(open)"
            attrs = ""
            if attributes and span.attributes:
                rendered = " ".join(
                    f"{k}={v}" for k, v in sorted(span.attributes.items())
                )
                attrs = f"  [{rendered}]"
            lines.append(
                f"{prefix}{connector}{span.name}  {wall}"
                f"  ({span.span_id}){attrs}"
            )
            child_prefix = prefix + ("   " if is_last else "│  ")
            children = list(span.children)
            for index, child in enumerate(children):
                emit(child, child_prefix, index == len(children) - 1)

        for index, root in enumerate(roots):
            emit(root, "", index == len(roots) - 1)
        return "\n".join(lines)


#: Process-wide tracer used by all engine instrumentation.
tracer = Tracer()


def current_span() -> Optional[Span]:
    """The innermost active span of the calling thread."""
    return tracer.current()


def current_trace_id() -> str:
    """The calling thread's trace id — from its innermost active span,
    or from an attached remote context; empty when neither exists."""
    span = tracer.current_parent()
    return span.trace_id if span is not None else ""
