"""Adaptive trace sampling: head decisions per root-span kind, with
tail-keep for slow or failed traces.

Always-on tracing in a high-traffic runtime cannot afford to *keep*
every trace, but it must still *time* every request — tail latency and
errors are exactly the traces worth keeping.  The sampler therefore
splits the decision:

* **head sampling** — when a *root* span starts, :meth:`Sampler.decide`
  answers "record this trace?" from a per-root-kind rate (longest
  dotted-prefix match, so ``query.execute`` can sample at 10% while
  ``logic.chase`` keeps everything).  Decisions are deterministic —
  a per-kind counter keeps every ``round(1/rate)``-th trace, starting
  with the first — so tests and replays see the same traces every run;
* **tail-keep** — a head-dropped trace is still built (its spans nest
  normally, on this thread and on propagated worker threads) but is
  not attached to the tracer's root list.  When the root finishes, the
  trace is *promoted* after the fact if it was slow
  (``tail_keep_ms``) or errored (the span context manager stamps an
  ``error`` attribute on exceptions).  Otherwise the whole tree is
  simply dropped and garbage-collected.

The sampler is configured from ``REPRO_TRACE_SAMPLE`` (re-read on
every :func:`repro.observability.reset`):

* ``REPRO_TRACE_SAMPLE=1`` — sampling active, keep-all rate (the CI
  lane's "always-on" setting);
* ``REPRO_TRACE_SAMPLE=0.25`` — keep every 4th trace of each kind;
* ``REPRO_TRACE_SAMPLE=query.execute=0.1,default=0.5,tail_ms=250`` —
  per-kind rates, a default, and the tail-keep threshold.

While unconfigured (no env var, no :meth:`Sampler.configure` call) the
sampler is *inactive*: every root is kept and no sampler counters are
recorded, which keeps the pre-sampling behaviour byte-identical.
"""

from __future__ import annotations

import os
import threading
from typing import Optional

#: Environment knob, re-read by :meth:`Sampler.reset`.
ENV_VAR = "REPRO_TRACE_SAMPLE"

#: Default tail-keep threshold (ms): head-dropped traces slower than
#: this are promoted into the kept set when their root finishes.
DEFAULT_TAIL_KEEP_MS = 250.0


def _parse_env(raw: str) -> Optional[dict]:
    """Parse ``REPRO_TRACE_SAMPLE`` into ``{"default": float,
    "rates": {...}, "tail_ms": float}``; ``None`` when unset/invalid."""
    raw = raw.strip()
    if not raw:
        return None
    out = {"default": 1.0, "rates": {}, "tail_ms": DEFAULT_TAIL_KEEP_MS}
    try:
        for part in raw.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                out["default"] = float(part)
                continue
            key, value = part.split("=", 1)
            key = key.strip()
            if key == "default":
                out["default"] = float(value)
            elif key == "tail_ms":
                out["tail_ms"] = float(value)
            else:
                out["rates"][key] = float(value)
    except ValueError:
        return None
    return out


class Sampler:
    """Deterministic head sampler with per-root-kind rates.

    Thread-safe: decisions mutate per-kind counters under a lock (root
    spans can start on any thread).  Inactive until configured — see
    the module docstring.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.active = False
        self.default_rate = 1.0
        self.rates: dict[str, float] = {}
        self.tail_keep_ms = DEFAULT_TAIL_KEEP_MS
        self._counts: dict[str, int] = {}
        self.kept = 0
        self.dropped = 0
        self.tail_promoted = 0
        self.reset()

    # ------------------------------------------------------------------
    def configure(
        self,
        default_rate: Optional[float] = None,
        rates: Optional[dict[str, float]] = None,
        tail_keep_ms: Optional[float] = None,
    ) -> None:
        """Activate the sampler and set rates/thresholds in place."""
        with self._lock:
            self.active = True
            if default_rate is not None:
                self.default_rate = float(default_rate)
            if rates is not None:
                self.rates = dict(rates)
            if tail_keep_ms is not None:
                self.tail_keep_ms = float(tail_keep_ms)

    def reset(self) -> None:
        """Clear decision counters and re-apply ``REPRO_TRACE_SAMPLE``
        (inactive when the variable is unset)."""
        parsed = _parse_env(os.environ.get(ENV_VAR, ""))
        with self._lock:
            self._counts = {}
            self.kept = 0
            self.dropped = 0
            self.tail_promoted = 0
            if parsed is None:
                self.active = False
                self.default_rate = 1.0
                self.rates = {}
                self.tail_keep_ms = DEFAULT_TAIL_KEEP_MS
            else:
                self.active = True
                self.default_rate = parsed["default"]
                self.rates = parsed["rates"]
                self.tail_keep_ms = parsed["tail_ms"]

    # ------------------------------------------------------------------
    def rate_for(self, kind: str) -> float:
        """The sampling rate for a root-span kind: exact name, then
        longest dotted prefix, then the default."""
        rates = self.rates
        if kind in rates:
            return rates[kind]
        probe = kind
        while "." in probe:
            probe = probe.rsplit(".", 1)[0]
            if probe in rates:
                return rates[probe]
        return self.default_rate

    def decide(self, kind: str) -> bool:
        """Head decision for a new root span of ``kind``.  Always True
        while inactive.  Deterministic: the first trace of each kind is
        always kept, then every ``round(1/rate)``-th."""
        if not self.active:
            return True
        rate = self.rate_for(kind)
        with self._lock:
            n = self._counts.get(kind, 0)
            self._counts[kind] = n + 1
            if rate <= 0.0:
                keep = False
            elif rate >= 1.0:
                keep = True
            else:
                keep = n % max(1, round(1.0 / rate)) == 0
            if keep:
                self.kept += 1
            else:
                self.dropped += 1
        return keep

    def note_tail_promoted(self) -> None:
        with self._lock:
            self.tail_promoted += 1
            self.dropped -= 1
            self.kept += 1

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            return {
                "active": self.active,
                "default_rate": self.default_rate,
                "rates": dict(self.rates),
                "tail_keep_ms": self.tail_keep_ms,
                "kept": self.kept,
                "dropped": self.dropped,
                "tail_promoted": self.tail_promoted,
            }


#: Process-wide sampler consulted by the tracer at root-span creation.
SAMPLER = Sampler()
