"""Per-relation statistics: the substrate for cardinality estimation.

The ROADMAP's cost-based-optimization item needs per-relation
cardinalities, per-column distinct counts and value distributions, and
*feedback* (estimate vs. actual divergence).  This module holds the
data model; the instances layer maintains it (see
:meth:`repro.instances.database.Instance.relation_stats`, which caches
a :class:`RelationStats` per relation under the same validation
contract as the persistent attribute indexes and cached column
batches: appends absorbed in place, removals/epoch bumps rebuilding),
and :mod:`repro.algebra.estimate` consumes it.

A :class:`ColumnStats` keeps an exact value→count map (the engine's
relations are small enough that a full frequency table is cheaper than
maintaining an approximate sketch would be to get right), which yields
distinct counts, null/labeled-null fractions, min/max over ordered
values, and a most-common-values view — everything the classical
selectivity rules need.

The :data:`ESTIMATION` config also lives here: the divergence factor
beyond which an EXPLAIN ANALYZE node is flagged (the hook the
PlanCache evict/refingerprint feedback loop will key on) and the
most-common-values sketch size.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.instances.labeled_null import LabeledNull

#: Number kinds that participate in min/max tracking together
#: (``bool`` is an ``int`` in Python and orders with numbers).
_NUMERIC = (int, float)


class EstimationConfig:
    """Tunables for the estimator and its divergence flagging."""

    __slots__ = ("divergence_factor", "mcv_size")

    DEFAULT_DIVERGENCE_FACTOR = 4.0
    DEFAULT_MCV_SIZE = 8

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.divergence_factor = self.DEFAULT_DIVERGENCE_FACTOR
        self.mcv_size = self.DEFAULT_MCV_SIZE


#: Process-wide estimator configuration (reset by
#: :func:`repro.observability.reset`).
ESTIMATION = EstimationConfig()


def _stat_key(value: object) -> object:
    """A hashable frequency-table key for an arbitrary cell value —
    the same images :func:`repro.instances.database.hashable_key`
    produces, computed here without importing the instances layer
    (which imports us lazily)."""
    try:
        hash(value)
    except TypeError:
        return ("<unhashable>", repr(value))
    return value


def display_key(key: object) -> object:
    """The human-facing form of a frequency-table key."""
    if isinstance(key, tuple) and len(key) == 2 and key[0] == "<unhashable>":
        return key[1]
    return key


class ColumnStats:
    """Frequency statistics for one column of one relation.

    ``counts`` maps value keys (see :func:`_stat_key`) of non-null,
    non-labeled-null cells to their multiplicity; ``present`` counts
    rows carrying the column at all (relations are ragged);
    ``nulls``/``labeled`` count SQL nulls and labeled nulls.  ``lo`` /
    ``hi`` track min/max while every observed value stays within one
    ordered kind (all numbers, or all strings) — a mixed column turns
    ordering off rather than guessing a cross-type order.
    """

    __slots__ = ("present", "nulls", "labeled", "counts", "kind", "lo", "hi")

    def __init__(self) -> None:
        self.present = 0
        self.nulls = 0
        self.labeled = 0
        self.counts: dict[object, int] = {}
        self.kind: Optional[str] = None  # None | "num" | "str" | "off"
        self.lo: object = None
        self.hi: object = None

    # ------------------------------------------------------------------
    def observe(self, value: object) -> None:
        self.present += 1
        if value is None:
            self.nulls += 1
            return
        if isinstance(value, LabeledNull):
            self.labeled += 1
            return
        key = _stat_key(value)
        self.counts[key] = self.counts.get(key, 0) + 1
        kind = self.kind
        if kind == "off":
            return
        if isinstance(value, _NUMERIC):
            value_kind = "num"
        elif isinstance(value, str):
            value_kind = "str"
        else:
            value_kind = "off"
        if kind is None:
            self.kind = value_kind
            if value_kind != "off":
                self.lo = self.hi = value
            return
        if value_kind != kind:
            self.kind = "off"
            self.lo = self.hi = None
            return
        if value < self.lo:
            self.lo = value
        elif value > self.hi:
            self.hi = value

    # ------------------------------------------------------------------
    @property
    def distinct(self) -> int:
        """Distinct non-null values (labeled nulls counted separately)."""
        return len(self.counts)

    @property
    def non_null(self) -> int:
        return self.present - self.nulls - self.labeled

    def frequency(self, value: object) -> Optional[int]:
        """Exact occurrence count of ``value``, or None when the column
        was never observed (callers fall back to default selectivity)."""
        if not self.present:
            return None
        return self.counts.get(_stat_key(value), 0)

    def most_common(self, k: Optional[int] = None) -> list[tuple[object, int]]:
        """The top-``k`` (value, count) pairs, most frequent first —
        the MCV sketch (ties broken by value repr for determinism)."""
        if k is None:
            k = ESTIMATION.mcv_size
        ranked = sorted(
            self.counts.items(), key=lambda item: (-item[1], repr(item[0]))
        )
        return [(display_key(key), count) for key, count in ranked[:k]]

    @property
    def ordered(self) -> bool:
        return self.kind in ("num", "str") and self.lo is not None

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnStats):
            return NotImplemented
        return (
            self.present == other.present
            and self.nulls == other.nulls
            and self.labeled == other.labeled
            and self.counts == other.counts
            and self.kind == other.kind
            and self.lo == other.lo
            and self.hi == other.hi
        )

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ColumnStats present={self.present} distinct={self.distinct} "
            f"nulls={self.nulls} labeled={self.labeled} kind={self.kind}>"
        )

    def to_dict(self, mcv: Optional[int] = None) -> dict:
        return {
            "present": self.present,
            "distinct": self.distinct,
            "nulls": self.nulls,
            "labeled_nulls": self.labeled,
            "min": self.lo,
            "max": self.hi,
            "most_common": [
                [repr(value), count] for value, count in self.most_common(mcv)
            ],
        }


class RelationStats:
    """Row count plus per-column :class:`ColumnStats` for one relation.

    Built once from the backing rows and then *absorbed* forward on
    appends (:meth:`absorb`), so keeping statistics fresh costs work
    proportional to the rows added since the last read, not to the
    relation.
    """

    __slots__ = ("relation", "rows", "columns")

    def __init__(self, relation: str) -> None:
        self.relation = relation
        self.rows = 0
        self.columns: dict[str, ColumnStats] = {}

    @classmethod
    def from_rows(
        cls, relation: str, rows: Iterable[Mapping[str, object]]
    ) -> "RelationStats":
        stats = cls(relation)
        stats.absorb(rows)
        return stats

    def absorb(self, rows: Iterable[Mapping[str, object]]) -> None:
        """Fold freshly appended rows into the statistics in place."""
        columns = self.columns
        added = 0
        for row in rows:
            added += 1
            for name, value in row.items():
                column = columns.get(name)
                if column is None:
                    column = columns[name] = ColumnStats()
                column.observe(value)
        self.rows += added

    # ------------------------------------------------------------------
    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)

    def null_fraction(self, name: str) -> float:
        """Fraction of rows where ``name`` is SQL null, a labeled null,
        or absent altogether (``IS NULL`` treats all three as null)."""
        if not self.rows:
            return 0.0
        column = self.columns.get(name)
        if column is None:
            return 1.0
        missing = self.rows - column.present
        return (column.nulls + column.labeled + missing) / self.rows

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationStats):
            return NotImplemented
        return (
            self.relation == other.relation
            and self.rows == other.rows
            and self.columns == other.columns
        )

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RelationStats {self.relation} rows={self.rows} "
            f"columns={sorted(self.columns)}>"
        )

    def to_dict(self, mcv: Optional[int] = None) -> dict:
        return {
            "relation": self.relation,
            "rows": self.rows,
            "columns": {
                name: self.columns[name].to_dict(mcv)
                for name in sorted(self.columns)
            },
        }

    def render(self) -> str:
        """A compact human-readable table, one line per column."""
        lines = [f"{self.relation}: {self.rows} rows"]
        for name in sorted(self.columns):
            column = self.columns[name]
            parts = [
                f"distinct={column.distinct}",
                f"nulls={column.nulls + column.labeled}"
                f"/{self.rows}",
            ]
            if column.ordered:
                parts.append(f"min={column.lo!r} max={column.hi!r}")
            mcv = column.most_common(3)
            if mcv:
                shown = ", ".join(f"{v!r}×{c}" for v, c in mcv)
                parts.append(f"mcv=[{shown}]")
            lines.append(f"  {name}: " + "  ".join(parts))
        return "\n".join(lines)
