"""Benchmark regression diffing: fresh ``BENCH_*.json`` vs baselines.

The repo commits one baseline JSON per benchmark suite (harness-v1
files plus the chase-trajectory and observability-contract formats).
This module extracts comparable numeric metrics from each format,
classifies every metric by direction, and diffs a fresh run against
the committed baseline with *generous* relative thresholds — timing on
shared CI hardware is noisy, so the watchdog is tuned to catch
step-change regressions (an accidental O(n²), a dropped fast path),
not 10% jitter:

* **lower-better** (wall times: ``... ms`` / ``... s`` cells, timing
  entries, ``*_seconds`` fields) — regressed when fresh > 2× baseline;
* **higher-better** (``...x`` speedup cells, ``speedup`` /
  ``*_rows_per_sec`` fields) — regressed when fresh < 0.5× baseline;
* **ceiling** (``disabled_overhead_percent``) — regressed when fresh
  exceeds the absolute 5.0 contract from docs/OBSERVABILITY.md,
  regardless of the baseline; ``stats_overhead_percent`` (the enabled
  stats/query-path bound) is judged the same way against an absolute
  10.0 ceiling;
* **floor** — harness payloads may declare absolute minimums for
  specific keys (``"floors": {"skewed-chain/speedup": 2.0}``, written
  by ``Harness.floor``); a floored metric regresses when fresh drops
  below its floor, regardless of the baseline — this is how the
  optimizer suite's ≥2× skewed-join win is enforced as a contract
  rather than a relative drift check;
* **info** (row counts, rounds, percentages without a contract) —
  never regress; drift is reported as ``changed``.

Keys present on only one side (a new size, a renamed workload) are
reported as ``new`` / ``missing`` and never fail the check — smoke
runs diff cleanly against full baselines because only the key
intersection is judged.

``benchmarks/regression.py`` wraps this as a CLI (``diff`` over
existing files, ``check`` to re-run suites and diff), surfaced as
``repro bench diff`` and ``make bench-check``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

#: Relative slowdown tolerated on lower-better metrics (1.0 ⇒ 2×).
LOWER_REL_THRESHOLD = 1.0
#: Relative drop tolerated on higher-better metrics (0.5 ⇒ half).
HIGHER_REL_THRESHOLD = 0.5
#: Absolute limit for the disabled-overhead contract (percent).
OVERHEAD_CEILING = 5.0
#: Absolute limit for the enabled stats/query-path contract (percent).
STATS_OVERHEAD_CEILING = 10.0
#: Relative drift below which info metrics count as unchanged.
INFO_TOLERANCE = 0.01

_MS_CELL = re.compile(r"^([0-9]+(?:\.[0-9]+)?)\s*ms$")
_S_CELL = re.compile(r"^([0-9]+(?:\.[0-9]+)?)\s*s$")
_X_CELL = re.compile(r"^([0-9]+(?:\.[0-9]+)?)x$")


@dataclass(frozen=True)
class Metric:
    """One extracted numeric observation."""

    key: str
    value: float
    kind: str  # "lower" | "higher" | "ceiling" | "stats_ceiling" |
    #          # "floor" | "info"
    floor: Optional[float] = None  # set when kind == "floor"


@dataclass
class Finding:
    """The comparison verdict for one metric key."""

    key: str
    kind: str
    status: str  # "ok" | "improved" | "regressed" | "changed" | "new" | "missing"
    baseline: Optional[float]
    fresh: Optional[float]
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "kind": self.kind,
            "status": self.status,
            "baseline": self.baseline,
            "fresh": self.fresh,
            "detail": self.detail,
        }


@dataclass
class DiffReport:
    """All findings for one baseline/fresh file pair."""

    name: str
    findings: list[Finding] = field(default_factory=list)

    @property
    def regressions(self) -> list[Finding]:
        return [f for f in self.findings if f.status == "regressed"]

    @property
    def compared(self) -> int:
        return sum(
            1 for f in self.findings if f.status not in ("new", "missing")
        )

    def render(self, verbose: bool = False) -> str:
        order = {"regressed": 0, "changed": 1, "improved": 2,
                 "missing": 3, "new": 4, "ok": 5}
        shown = [
            f for f in sorted(self.findings,
                              key=lambda f: (order[f.status], f.key))
            if verbose or f.status != "ok"
        ]
        lines = [
            f"{self.name}: {self.compared} metric(s) compared, "
            f"{len(self.regressions)} regression(s)"
        ]
        for f in shown:
            base = "-" if f.baseline is None else f"{f.baseline:g}"
            fresh = "-" if f.fresh is None else f"{f.fresh:g}"
            marker = "!!" if f.status == "regressed" else "  "
            lines.append(
                f" {marker} [{f.status:<9}] {f.key}: {base} -> {fresh}"
                + (f"  ({f.detail})" if f.detail else "")
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "compared": self.compared,
            "regressions": len(self.regressions),
            "findings": [f.to_dict() for f in self.findings],
        }


# ----------------------------------------------------------------------
# metric extraction
# ----------------------------------------------------------------------
def _kind_for_field(name: str) -> str:
    if name.endswith("disabled_overhead_percent"):
        return "ceiling"
    if name.endswith("stats_overhead_percent"):
        return "stats_ceiling"
    if name.endswith("sampled_overhead_percent"):
        return "stats_ceiling"
    if name.endswith("_seconds") or name.endswith("_ms"):
        return "lower"
    if name == "speedup" or name.endswith("_rows_per_sec"):
        return "higher"
    return "info"


def _cell_metric(cell: object) -> Optional[tuple[float, str]]:
    """(value, kind) when a table cell is a recognizable measurement."""
    if not isinstance(cell, str):
        return None
    text = cell.strip()
    match = _MS_CELL.match(text)
    if match:
        return float(match.group(1)), "lower"
    match = _S_CELL.match(text)
    if match:
        return float(match.group(1)) * 1000.0, "lower"
    match = _X_CELL.match(text)
    if match:
        return float(match.group(1)), "higher"
    return None


def extract_metrics(payload: dict) -> list[Metric]:
    """Comparable metrics from any committed BENCH format."""
    if payload.get("format") == "harness-v1":
        return _extract_harness(payload)
    if "contract" in payload:
        return _extract_contract(payload)
    if isinstance(payload.get("results"), list):
        return _extract_trajectory(payload)
    return []


def _extract_harness(payload: dict) -> list[Metric]:
    floors = payload.get("floors") or {}
    metrics: list[Metric] = []
    for table in payload.get("tables", []):
        headers = table.get("headers", [])
        for row in table.get("rows", []):
            label_cells = []
            measured: list[tuple[str, float, str]] = []
            for header, cell in zip(headers, row):
                parsed = _cell_metric(cell)
                if parsed is None:
                    label_cells.append(str(cell))
                else:
                    measured.append((header, parsed[0], parsed[1]))
            label = "/".join(label_cells)
            for header, value, kind in measured:
                key = f"{label}/{header}"
                if key in floors:
                    metrics.append(
                        Metric(key, value, "floor", float(floors[key]))
                    )
                else:
                    metrics.append(Metric(key, value, kind))
    for name, seconds in payload.get("timings_seconds", {}).items():
        metrics.append(Metric(f"timing/{name}", float(seconds), "lower"))
    return metrics


def _extract_trajectory(payload: dict) -> list[Metric]:
    """The BENCH_chase.json shape: a results list of flat dicts keyed
    by workload and size."""
    metrics: list[Metric] = []
    for result in payload["results"]:
        workload = result.get("workload", "?")
        size = result.get("source_rows", "?")
        prefix = f"{workload}/rows={size}"
        for name, value in result.items():
            if name in ("workload", "source_rows"):
                continue
            if isinstance(value, bool):
                metrics.append(
                    Metric(f"{prefix}/{name}", float(value), "info")
                )
            elif isinstance(value, (int, float)):
                metrics.append(
                    Metric(f"{prefix}/{name}", float(value),
                           _kind_for_field(name))
                )
    return metrics


def _extract_contract(payload: dict) -> list[Metric]:
    """The BENCH_observability.json shape: nested sections of numeric
    leaves, with the disabled-overhead ceiling contract."""
    metrics: list[Metric] = []
    for section, body in payload.items():
        if not isinstance(body, dict):
            continue
        for name, value in body.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            metrics.append(
                Metric(f"{section}.{name}", float(value),
                       _kind_for_field(f"{section}.{name}"))
            )
    return metrics


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------
def _judge(
    kind: str, baseline: float, fresh: float,
    floor: Optional[float] = None,
) -> tuple[str, str]:
    if kind == "floor":
        if floor is not None and fresh < floor:
            return "regressed", f"below the {floor:g} floor"
        return "ok", ""
    if kind == "ceiling":
        if fresh > OVERHEAD_CEILING:
            return "regressed", f"exceeds the {OVERHEAD_CEILING:g} ceiling"
        return "ok", ""
    if kind == "stats_ceiling":
        if fresh > STATS_OVERHEAD_CEILING:
            return (
                "regressed",
                f"exceeds the {STATS_OVERHEAD_CEILING:g} ceiling",
            )
        return "ok", ""
    if kind == "lower":
        if baseline > 0 and fresh > baseline * (1.0 + LOWER_REL_THRESHOLD):
            return (
                "regressed",
                f"{fresh / baseline:.1f}x slower than baseline "
                f"(limit {1.0 + LOWER_REL_THRESHOLD:g}x)",
            )
        if baseline > 0 and fresh < baseline * HIGHER_REL_THRESHOLD:
            return "improved", f"{baseline / max(fresh, 1e-12):.1f}x faster"
        return "ok", ""
    if kind == "higher":
        if baseline > 0 and fresh < baseline * HIGHER_REL_THRESHOLD:
            return (
                "regressed",
                f"dropped to {fresh / baseline:.0%} of baseline "
                f"(limit {HIGHER_REL_THRESHOLD:.0%})",
            )
        if baseline > 0 and fresh > baseline * (1.0 + LOWER_REL_THRESHOLD):
            return "improved", f"{fresh / baseline:.1f}x higher"
        return "ok", ""
    # info
    reference = max(abs(baseline), abs(fresh), 1e-12)
    if abs(fresh - baseline) / reference > INFO_TOLERANCE:
        return "changed", "informational only"
    return "ok", ""


def diff_payloads(
    name: str, baseline: dict, fresh: dict
) -> DiffReport:
    """Compare two parsed BENCH payloads; only the key intersection is
    judged (see module docstring)."""
    base_metrics = {m.key: m for m in extract_metrics(baseline)}
    fresh_metrics = {m.key: m for m in extract_metrics(fresh)}
    report = DiffReport(name)
    for key in sorted(base_metrics.keys() | fresh_metrics.keys()):
        base = base_metrics.get(key)
        new = fresh_metrics.get(key)
        if base is None:
            report.findings.append(
                Finding(key, new.kind, "new", None, new.value)
            )
            continue
        if new is None:
            report.findings.append(
                Finding(key, base.kind, "missing", base.value, None)
            )
            continue
        # A floor declared on either side applies (the fresh payload's
        # declaration wins, so a suite can tighten its own contract).
        floor = new.floor if new.floor is not None else base.floor
        kind = "floor" if floor is not None else base.kind
        status, detail = _judge(kind, base.value, new.value, floor)
        report.findings.append(
            Finding(key, kind, status, base.value, new.value, detail)
        )
    return report


def diff_files(
    baseline: Union[str, Path], fresh: Union[str, Path]
) -> DiffReport:
    baseline = Path(baseline)
    fresh = Path(fresh)
    return diff_payloads(
        baseline.name,
        json.loads(baseline.read_text()),
        json.loads(fresh.read_text()),
    )


def diff_dirs(
    baseline_dir: Union[str, Path],
    fresh_dir: Union[str, Path],
    names: Optional[Sequence[str]] = None,
) -> list[DiffReport]:
    """Diff every ``BENCH_*.json`` present in *both* directories
    (optionally restricted to ``names``)."""
    baseline_dir = Path(baseline_dir)
    fresh_dir = Path(fresh_dir)
    reports = []
    for fresh_path in sorted(fresh_dir.glob("BENCH_*.json")):
        if names and fresh_path.name not in names:
            continue
        baseline_path = baseline_dir / fresh_path.name
        if not baseline_path.exists():
            reports.append(
                DiffReport(
                    fresh_path.name,
                    [Finding("(file)", "info", "new", None, None,
                             "no committed baseline")],
                )
            )
            continue
        reports.append(diff_files(baseline_path, fresh_path))
    return reports
