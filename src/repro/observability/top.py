"""`repro top`: a live terminal dashboard over the telemetry state.

One render frame combines, top to bottom:

* the health line — latest :class:`HealthReport` signal statuses;
* the busiest span kinds — ``span.*.wall_ms`` histograms ranked by
  total wall time, with call counts and p50/p99;
* key engine counters and gauges (chase, plan cache, queries,
  backpressure, sampler);
* the journal tail — the most recent engine events.

Rendering is pure read (registry snapshot + journal snapshot + one
health evaluation), so a frame can be taken while the engine is mid
request.  The CLI loop clears the screen between frames; ``--once``
prints a single frame for scripting.
"""

from __future__ import annotations

import time
from typing import Optional

#: Counter/gauge names (exact or dotted prefix) surfaced in the
#: dashboard's "engine counters" block, in display order.
KEY_COUNTERS: tuple[str, ...] = (
    "query.execute.count",
    "query.plan_cache.hits",
    "query.plan_cache.misses",
    "query.plan_cache.evictions",
    "query.reopt.scheduled",
    "query.reopt.applied",
    "query.log.slow",
    "chase.shard.rounds",
    "chase.sequential_fallbacks",
    "backpressure",
    "trace.sampler",
    "health.alerts",
)


def _matches(name: str, patterns: tuple[str, ...]) -> bool:
    return any(
        name == p or name.startswith(p + ".") for p in patterns
    )


def render_top(
    span_limit: int = 8,
    journal_limit: int = 8,
    now: Optional[float] = None,
) -> str:
    """One dashboard frame as plain text."""
    from repro.observability.health import MONITOR
    from repro.observability.journal import JOURNAL
    from repro.observability.metrics import registry
    from repro.observability.sampling import SAMPLER
    from repro.observability.tracing import tracer

    lines: list[str] = []
    stamp = time.strftime(
        "%H:%M:%S", time.localtime(now if now is not None else time.time())
    )
    sampler = SAMPLER.snapshot()
    sampler_note = (
        f"sampler kept={sampler['kept']} dropped={sampler['dropped']} "
        f"tail+={sampler['tail_promoted']}"
        if sampler["active"] else "sampler off"
    )
    lines.append(
        f"repro top · {stamp} · traces={len(tracer.trace_ids())} "
        f"spans={tracer.span_count()} · {sampler_note}"
    )
    lines.append("")

    # health
    report = MONITOR.evaluate()
    lines.append(report.render())
    lines.append("")

    # busiest span kinds by total wall time
    snapshot = registry.snapshot()
    span_rows = []
    for name, data in snapshot.items():
        if not (name.startswith("span.") and name.endswith(".wall_ms")):
            continue
        if data["type"] != "histogram" or not data["count"]:
            continue
        kind = name[len("span."):-len(".wall_ms")]
        span_rows.append((data["sum"], kind, data))
    span_rows.sort(reverse=True)
    lines.append(f"busiest spans (top {span_limit} by total wall time)")
    if not span_rows:
        lines.append("  (no spans recorded)")
    for total, kind, data in span_rows[:span_limit]:
        p50 = data["p50"] if data["p50"] is not None else 0.0
        p99 = data["p99"] if data["p99"] is not None else 0.0
        lines.append(
            f"  {kind:<34s} {total:>10.1f}ms total  "
            f"×{data['count']:<6d} p50={p50:.2f}ms p99={p99:.2f}ms"
        )
    lines.append("")

    # key engine counters/gauges
    lines.append("engine counters")
    shown = 0
    for name in sorted(snapshot):
        data = snapshot[name]
        if data["type"] == "histogram" or not _matches(name, KEY_COUNTERS):
            continue
        value = data["value"]
        if value is None:
            continue
        lines.append(f"  {name:<40s} {value}")
        shown += 1
    if not shown:
        lines.append("  (none recorded)")
    lines.append("")

    # journal tail
    events = JOURNAL.tail(journal_limit)
    lines.append(f"journal (last {journal_limit} of {len(JOURNAL)})")
    if not events:
        lines.append("  (journal empty)")
    for event in events:
        lines.append("  " + event.render())
    return "\n".join(lines)
