"""Bounded, thread-safe engine event journal.

Metrics say *how much*; traces say *how long*; the journal says *what
happened* — a structured, trace-correlated record of engine lifecycle
events that would otherwise be invisible: chase rounds and egd
reconciliations, inbox backpressure waits, re-optimizations and
plan-cache evictions, and every silent fallback the engine takes
(vectorized stage → row closures, sharded chase → sequential engine,
incremental maintenance → full re-exchange), plus the health monitor's
alerts.

Events live in a bounded ring (:class:`EventJournal`, default 512
entries) so an event flood costs one deque append per event and a
fixed amount of memory.  Each event carries the recording thread's
trace id (from the active span or an attached remote context), which
is what lets ``repro top`` and post-mortems line journal entries up
against the span tree of one request.  An optional JSONL sink mirrors
every event to a file as it is recorded.

Recording is guarded by ``STATE.enabled`` at the call sites via the
:func:`journal` helper, preserving the disabled-overhead contract; the
``record_once`` variant dedupes hot-path events (e.g. a vectorized
stage falling back on every batch) to one entry per key per clear.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import IO, Optional, Union


class JournalEvent:
    """One structured engine event."""

    __slots__ = ("seq", "when", "kind", "trace_id", "attrs")

    def __init__(
        self,
        seq: int,
        when: float,
        kind: str,
        trace_id: str,
        attrs: dict,
    ) -> None:
        self.seq = seq
        self.when = when
        self.kind = kind
        self.trace_id = trace_id
        self.attrs = attrs

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "when": self.when,
            "kind": self.kind,
            "trace_id": self.trace_id,
            **self.attrs,
        }

    def render(self) -> str:
        attrs = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        trace = self.trace_id[-8:] if self.trace_id else "-"
        return f"#{self.seq:<5d} {self.kind:<36s} trace={trace:<9s} {attrs}"


class EventJournal:
    """Bounded ring of :class:`JournalEvent` with an optional JSONL
    sink.  All operations are safe under concurrent recording from
    shard workers, hop threads, and the synchronizer worker."""

    DEFAULT_CAPACITY = 512

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._events: deque[JournalEvent] = deque(maxlen=capacity)
        self._seq = 0
        self._once: set[str] = set()
        self._sink: Optional[IO[str]] = None
        self._sink_path: Optional[Path] = None

    # ------------------------------------------------------------------
    def configure(
        self,
        capacity: Optional[int] = None,
        sink: Union[str, Path, None] = None,
    ) -> None:
        """Resize the ring and/or (re)open a JSONL sink.  ``sink=None``
        leaves the current sink alone; pass ``sink=""`` to close it."""
        with self._lock:
            if capacity is not None:
                self._events = deque(self._events, maxlen=int(capacity))
            if sink is not None:
                self._close_sink_locked()
                if sink != "":
                    self._sink_path = Path(sink)
                    self._sink = open(self._sink_path, "a")

    def _close_sink_locked(self) -> None:
        if self._sink is not None:
            try:
                self._sink.close()
            except OSError:
                pass
        self._sink = None
        self._sink_path = None

    # ------------------------------------------------------------------
    def record(
        self, kind: str, trace_id: Optional[str] = None, **attrs: object
    ) -> JournalEvent:
        """Append one event.  The trace id defaults to the recording
        thread's (active span or attached remote context)."""
        if trace_id is None:
            from repro.observability.tracing import current_trace_id

            trace_id = current_trace_id()
        with self._lock:
            self._seq += 1
            event = JournalEvent(
                seq=self._seq,
                when=time.time(),
                kind=kind,
                trace_id=trace_id,
                attrs=attrs,
            )
            self._events.append(event)
            if self._sink is not None:
                try:
                    self._sink.write(
                        json.dumps(event.to_dict(), default=str) + "\n"
                    )
                    self._sink.flush()
                except OSError:
                    self._close_sink_locked()
        return event

    def record_once(
        self,
        key: str,
        kind: str,
        trace_id: Optional[str] = None,
        **attrs: object,
    ) -> Optional[JournalEvent]:
        """Record an event at most once per ``key`` until the next
        :meth:`clear` — the hot-path dedupe for per-batch fallbacks."""
        with self._lock:
            if key in self._once:
                return None
            self._once.add(key)
        return self.record(kind, trace_id=trace_id, **attrs)

    # ------------------------------------------------------------------
    def events(self, kind: Optional[str] = None) -> list[JournalEvent]:
        """A snapshot of the ring, oldest first, optionally filtered by
        kind (exact match or dotted prefix)."""
        with self._lock:
            events = list(self._events)
        if kind is None:
            return events
        return [
            e for e in events
            if e.kind == kind or e.kind.startswith(kind + ".")
        ]

    def tail(self, count: int = 10) -> list[JournalEvent]:
        with self._lock:
            events = list(self._events)
        return events[-count:]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def render(self, count: Optional[int] = None) -> str:
        events = self.events()
        if count is not None:
            events = events[-count:]
        if not events:
            return "(journal empty)"
        return "\n".join(event.render() for event in events)

    def export_jsonl(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        events = self.events()
        lines = [json.dumps(e.to_dict(), default=str) for e in events]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path

    def clear(self) -> None:
        """Drop all events, reset the sequence and the once-keys, and
        close any sink (tests must not leak file handles)."""
        with self._lock:
            self._events.clear()
            self._seq = 0
            self._once.clear()
            self._close_sink_locked()


#: Process-wide journal used by all engine instrumentation.
JOURNAL = EventJournal()


def journal(kind: str, **attrs: object) -> None:
    """Record an engine event iff observability is enabled — the
    one-liner used at engine call sites."""
    from repro.observability.state import STATE

    if STATE.enabled:
        JOURNAL.record(kind, **attrs)


def record_backpressure(site: str, wait_seconds: float, **attrs: object) -> None:
    """Record one bounded-queue backpressure wait: feeds the
    ``backpressure.wait_ms`` histogram (the health monitor's signal)
    and journals the stall with the waiting thread's trace id.
    Callers invoke this only when a wait actually happened."""
    from repro.observability.metrics import registry
    from repro.observability.state import STATE

    if not STATE.enabled:
        return
    wait_ms = wait_seconds * 1000.0
    registry.histogram("backpressure.wait_ms").observe(wait_ms)
    registry.counter(f"backpressure.{site}.waits").inc()
    JOURNAL.record(
        "backpressure.wait", site=site, wait_ms=round(wait_ms, 3), **attrs
    )
