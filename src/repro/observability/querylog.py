"""Plan-fingerprinted query log.

A bounded in-memory ring buffer of recent query executions, recorded
by :func:`repro.algebra.evaluator.evaluate` (all three engines) while
observability is enabled.  Each entry carries the plan's structural
fingerprint (the plan-cache key, so log entries correlate with cached
plans and with ``query.execute`` spans), the engine, whether the plan
cache hit, wall time, output rows, and — when the cardinality
estimator could score the plan — the worst estimate↔actual divergent
node.  Entries over the slow-query threshold are marked ``slow``;
entries whose flagged divergence scheduled an adaptive re-optimization
(see :meth:`repro.algebra.plan_cache.PlanCache.note_divergence`) are
marked ``reopt``.

Like the tracer and the metrics registry, the log is process-wide
(:data:`QUERY_LOG`), disabled-by-default via the same ``STATE.enabled``
guard (callers check it; the log itself just stores), and cleared by
:func:`repro.observability.reset`.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Optional

DEFAULT_CAPACITY = 256
DEFAULT_SLOW_MS = 100.0


class QueryLogEntry:
    """One recorded query execution."""

    __slots__ = (
        "seq",
        "when",
        "fingerprint",
        "engine",
        "cache_hit",
        "wall_ms",
        "rows_out",
        "worst",
        "slow",
        "reopt",
        "trace_id",
    )

    def __init__(
        self,
        seq: int,
        when: float,
        fingerprint: str,
        engine: str,
        cache_hit: bool,
        wall_ms: float,
        rows_out: int,
        worst: Optional[dict],
        slow: bool,
        reopt: bool = False,
        trace_id: str = "",
    ) -> None:
        self.seq = seq
        self.when = when
        self.fingerprint = fingerprint
        self.engine = engine
        self.cache_hit = cache_hit
        self.wall_ms = wall_ms
        self.rows_out = rows_out
        self.worst = worst
        self.slow = slow
        self.reopt = reopt
        self.trace_id = trace_id

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "when": self.when,
            "fingerprint": self.fingerprint,
            "engine": self.engine,
            "cache_hit": self.cache_hit,
            "wall_ms": self.wall_ms,
            "rows_out": self.rows_out,
            "worst_divergent": self.worst,
            "slow": self.slow,
            "reopt": self.reopt,
            "trace_id": self.trace_id,
        }

    def render(self) -> str:
        parts = [
            f"#{self.seq}",
            self.fingerprint[:12],
            self.engine,
            "hit" if self.cache_hit else "miss",
            f"{self.wall_ms:.2f}ms",
            f"rows={self.rows_out}",
        ]
        if self.worst is not None:
            flag = " ⚠" if self.worst.get("flagged") else ""
            parts.append(
                f"div=×{self.worst['ratio']:.1f}"
                f"@#{self.worst['node_id']}{flag}"
            )
        if self.reopt:
            parts.append("REOPT")
        if self.slow:
            parts.append("SLOW")
        return "  ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<QueryLogEntry {self.render()}>"


class QueryLog:
    """Thread-safe bounded ring buffer of :class:`QueryLogEntry`.

    ``capacity`` bounds memory (oldest entries fall off); ``slow_ms``
    is the slow-query threshold applied at record time.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        slow_ms: float = DEFAULT_SLOW_MS,
    ) -> None:
        self._lock = threading.Lock()
        self._entries: deque[QueryLogEntry] = deque(maxlen=capacity)
        self.slow_ms = slow_ms
        self._seq = 0

    # ------------------------------------------------------------------
    def configure(
        self,
        capacity: Optional[int] = None,
        slow_ms: Optional[float] = None,
    ) -> None:
        """Adjust bounds in place (existing entries kept, oldest
        dropped if the new capacity is smaller)."""
        with self._lock:
            if capacity is not None and capacity != self._entries.maxlen:
                self._entries = deque(self._entries, maxlen=capacity)
            if slow_ms is not None:
                self.slow_ms = slow_ms

    @property
    def capacity(self) -> int:
        return self._entries.maxlen

    # ------------------------------------------------------------------
    def record(
        self,
        fingerprint: str,
        engine: str,
        cache_hit: bool,
        wall_ms: float,
        rows_out: int,
        worst: Optional[dict] = None,
        reopt: bool = False,
    ) -> QueryLogEntry:
        # Stamp the recording thread's trace id so log entries line up
        # with the span tree of the request that ran the query.
        from repro.observability.tracing import current_trace_id

        entry = QueryLogEntry(
            seq=0,
            when=time.time(),
            fingerprint=fingerprint,
            engine=engine,
            cache_hit=cache_hit,
            wall_ms=wall_ms,
            rows_out=rows_out,
            worst=worst,
            slow=wall_ms >= self.slow_ms,
            reopt=reopt,
            trace_id=current_trace_id(),
        )
        with self._lock:
            self._seq += 1
            entry.seq = self._seq
            self._entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    def entries(self) -> list[QueryLogEntry]:
        """A stable copy, oldest first."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def recorded(self) -> int:
        """Total entries ever recorded (including rotated-out ones)."""
        with self._lock:
            return self._seq

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._seq = 0

    # ------------------------------------------------------------------
    def slow_entries(self) -> list[QueryLogEntry]:
        return [entry for entry in self.entries() if entry.slow]

    def render(self, limit: int = 20, slow_only: bool = False) -> str:
        """The newest ``limit`` entries, oldest first, one per line."""
        entries = self.slow_entries() if slow_only else self.entries()
        if not entries:
            return "(query log empty)"
        shown = entries[-limit:]
        lines = [entry.render() for entry in shown]
        hidden = len(entries) - len(shown)
        if hidden:
            lines.insert(0, f"… {hidden} older entries")
        return "\n".join(lines)

    def export_jsonl(self) -> str:
        """All entries as JSON Lines, oldest first."""
        return "\n".join(
            json.dumps(entry.to_dict(), sort_keys=True, default=repr)
            for entry in self.entries()
        )


#: Process-wide query log (see module docstring).
QUERY_LOG = QueryLog()
