"""The single on/off switch shared by tracing and metrics.

Kept in its own leaf module so that every instrumented call site in the
engine can do a plain attribute check (``if STATE.enabled: ...``)
without importing the tracer or the registry — the disabled-by-default
contract is "one guard check, nothing else".
"""

from __future__ import annotations


class _ObservabilityState:
    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


#: Process-wide switch.  Flip through
#: :func:`repro.observability.enable` / ``disable``, not directly.
STATE = _ObservabilityState()
