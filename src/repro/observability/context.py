"""Trace-context capture and cross-thread propagation.

A :class:`TraceContext` is a portable handle on "the request this work
belongs to": the W3C-style trace id plus the span the work should nest
under.  The engine's fan-out points — shard workers in
:mod:`repro.logic.sharding`, p2p hop threads in
:mod:`repro.runtime.p2p`, the :class:`QueuedSynchronizer` worker in
:mod:`repro.runtime.synchronization` — capture the context on the
caller's thread and restore it on the worker thread, so spans started
over there automatically join the caller's trace instead of becoming
orphan roots.  This replaces the old manual ``span(parent=...)``
re-parenting.

Three usage shapes:

* ``ctx = capture()`` then ``with activate(ctx): ...`` on the worker —
  explicit capture/restore around a block;
* ``fn = propagating(fn)`` — wrap a callable *at submit time*; every
  invocation runs under the context that was current when the wrapper
  was built.  Safe for reused pool threads: the context is attached
  per call and always detached;
* ``ctx.traceparent()`` — the W3C ``traceparent`` rendering, for
  logging or future wire protocols.

All helpers are no-ops when tracing is disabled (``capture()`` returns
``None`` and ``activate(None)`` / ``propagating`` pass through), so the
wrappers can sit unconditionally on the thread-spawn paths.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, TypeVar

from repro.observability.tracing import Span, tracer

_F = TypeVar("_F", bound=Callable)


@dataclass(frozen=True)
class TraceContext:
    """An immutable handle on a trace position: the trace id plus the
    span new work should nest under."""

    trace_id: str
    span: Optional[Span]

    @property
    def span_id(self) -> str:
        return self.span.span_id if self.span is not None else ""

    def traceparent(self) -> str:
        """W3C ``traceparent`` header value
        (``00-<trace_id>-<span_id16>-<flags>``); the sampled flag
        mirrors the head-sampling decision."""
        span_id = (self.span_id or "0").replace("s", "")
        flags = "01"
        if self.span is not None and not self.span.sampled:
            flags = "00"
        return f"00-{self.trace_id:0>32}-{span_id:0>16}-{flags}"


def current_context() -> Optional[TraceContext]:
    """The calling thread's trace position — from its innermost active
    span, or an attached remote context; ``None`` when idle."""
    span = tracer.current_parent()
    if span is None:
        return None
    return TraceContext(trace_id=span.trace_id, span=span)


def capture() -> Optional[TraceContext]:
    """Capture the calling thread's trace context for hand-off to a
    worker thread.  ``None`` when there is nothing to propagate (no
    active span — including the tracing-disabled case)."""
    return current_context()


@contextmanager
def activate(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Restore a captured context on this thread for the duration of
    the block: spans started inside nest under ``ctx.span`` and carry
    its trace id.  ``activate(None)`` is a no-op pass-through."""
    if ctx is None:
        yield None
        return
    token = tracer.attach(ctx)
    try:
        yield ctx
    finally:
        tracer.detach(token)


def propagating(fn: _F, ctx: Optional[TraceContext] = None) -> _F:
    """Wrap ``fn`` so every call runs under the trace context current
    at *wrap* time (or an explicitly supplied one).

    This is the executor-submit adapter: build the wrapper on the
    coordinator thread while its span is open, hand it to a pool /
    ``Thread`` target, and the worker's spans join the coordinator's
    trace.  When there is no context to carry, ``fn`` is returned
    unwrapped (zero overhead on the disabled path)."""
    if ctx is None:
        ctx = capture()
    if ctx is None:
        return fn

    @functools.wraps(fn)
    def runner(*args, **kwargs):
        with activate(ctx):
            return fn(*args, **kwargs)

    return runner  # type: ignore[return-value]
