"""Health monitor: SLO-threshold evaluation over engine metrics.

The monitor turns the raw registry/query-log state into a handful of
*signals* a human (or CI) can act on, each compared against a
configurable threshold:

* ``shard_imbalance`` — max/mean of per-shard chase round wall time
  (``span.chase.shard.round.wall_ms``): a high ratio means the
  co-partitioning key is skewed and one worker is pacing every round;
* ``backpressure_ms`` — total time threads spent blocked on bounded
  queues (``backpressure.wait_ms``): sustained waits mean inbox/hop
  capacities are undersized for the workload;
* ``cache_eviction_rate`` — plan-cache evictions per lookup
  (``query.plan_cache.*``): thrash, i.e. the working set of plans no
  longer fits;
* ``divergence_rate`` — fraction of logged queries whose worst
  estimate↔actual divergence was flagged: the statistics are stale;
* ``slow_query_rate`` — fraction of logged queries over the query
  log's slow threshold.

Signals with too few samples report ``no-data`` rather than guessing.
Each breach journals a ``health.alert`` event and bumps the
``health.alerts`` counter, so alerts correlate with traces like any
other engine event.  :meth:`HealthMonitor.start` runs the evaluation
on a daemon thread at a fixed interval (the ``repro top`` refresh
path); one-shot evaluation backs ``repro health`` with CI-friendly
exit codes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields, replace
from typing import Optional


@dataclass(frozen=True)
class HealthConfig:
    """SLO thresholds and minimum-sample guards.

    Threshold fields end in ``_max``; a signal alerts when its value
    exceeds the threshold.  ``min_*`` fields guard against judging
    from too few samples (below them the signal is ``no-data``).
    """

    shard_imbalance_max: float = 4.0
    backpressure_ms_max: float = 1_000.0
    cache_eviction_rate_max: float = 0.5
    divergence_rate_max: float = 0.5
    slow_query_rate_max: float = 0.25
    min_shard_rounds: int = 4
    min_cache_lookups: int = 20
    min_query_samples: int = 20

    def with_overrides(self, overrides: dict[str, float]) -> "HealthConfig":
        """A copy with ``key=value`` overrides applied; unknown keys
        raise ``KeyError`` (the CLI turns that into exit code 2)."""
        known = {f.name for f in fields(self)}
        for key in overrides:
            if key not in known:
                raise KeyError(key)
        ints = {"min_shard_rounds", "min_cache_lookups", "min_query_samples"}
        coerced = {
            k: int(v) if k in ints else float(v)
            for k, v in overrides.items()
        }
        return replace(self, **coerced)


@dataclass
class HealthSignal:
    """One evaluated signal: value vs threshold plus a status."""

    name: str
    value: Optional[float]
    threshold: float
    status: str                      # "ok" | "alert" | "no-data"
    detail: str = ""

    def render(self) -> str:
        marker = {"ok": "✓", "alert": "✗", "no-data": "·"}[self.status]
        value = "n/a" if self.value is None else f"{self.value:.3f}"
        line = (f"{marker} {self.name:<20s} {value:>10s}  "
                f"(max {self.threshold:g})")
        if self.detail:
            line += f"  {self.detail}"
        return line

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "value": self.value,
            "threshold": self.threshold,
            "status": self.status,
            "detail": self.detail,
        }


@dataclass
class HealthReport:
    """The full signal set from one evaluation."""

    signals: list[HealthSignal] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.alerts

    @property
    def alerts(self) -> list[HealthSignal]:
        return [s for s in self.signals if s.status == "alert"]

    def render(self) -> str:
        if not self.signals:
            return "(no health signals)"
        header = "health: OK" if self.ok else \
            f"health: {len(self.alerts)} ALERT(S)"
        return "\n".join([header] + [
            "  " + signal.render() for signal in self.signals
        ])

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "signals": [signal.to_dict() for signal in self.signals],
        }


class HealthMonitor:
    """Evaluates health signals on demand or periodically."""

    def __init__(self, config: Optional[HealthConfig] = None) -> None:
        self._lock = threading.Lock()
        self.config = config or HealthConfig()
        self.last_report: Optional[HealthReport] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # signal derivation
    # ------------------------------------------------------------------
    def evaluate(self, config: Optional[HealthConfig] = None) -> HealthReport:
        """Derive every signal from the current registry / query-log
        state.  Pure read — no journal events, no counters."""
        from repro.observability.metrics import registry
        from repro.observability.querylog import QUERY_LOG

        cfg = config or self.config
        signals: list[HealthSignal] = []

        # shard imbalance: max/mean of per-shard round wall time
        name = "span.chase.shard.round.wall_ms"
        value = None
        detail = ""
        count = 0
        if name in registry:
            hist = registry.histogram(name)
            count = hist.count
            if count >= cfg.min_shard_rounds and hist.mean:
                value = hist.max / hist.mean
                detail = f"rounds={count}"
        signals.append(self._judge(
            "shard_imbalance", value, cfg.shard_imbalance_max,
            detail or f"rounds={count}<{cfg.min_shard_rounds}",
        ))

        # backpressure: total blocked time on bounded queues
        name = "backpressure.wait_ms"
        value = None
        detail = ""
        if name in registry:
            hist = registry.histogram(name)
            if hist.count:
                value = hist.total
                detail = f"waits={hist.count}"
        if value is None:
            value = 0.0
            detail = "waits=0"
        signals.append(self._judge(
            "backpressure_ms", value, cfg.backpressure_ms_max, detail,
        ))

        # plan-cache thrash: evictions per lookup
        snapshot = registry.snapshot()
        lookups = sum(
            m["value"] for key, m in snapshot.items()
            if key in ("query.plan_cache.hits", "query.plan_cache.misses")
            and m["type"] == "counter"
        )
        evictions = sum(
            m["value"] for key, m in snapshot.items()
            if key.startswith("query.plan_cache.evictions")
            and m["type"] == "counter"
        )
        value = None
        detail = f"lookups={lookups}<{cfg.min_cache_lookups}"
        if lookups >= cfg.min_cache_lookups:
            value = evictions / lookups
            detail = f"evictions={evictions} lookups={lookups}"
        signals.append(self._judge(
            "cache_eviction_rate", value, cfg.cache_eviction_rate_max,
            detail,
        ))

        # estimate divergence and slow-query rates from the query log
        entries = QUERY_LOG.entries()
        samples = len(entries)
        if samples >= cfg.min_query_samples:
            flagged = sum(
                1 for e in entries
                if e.worst is not None and e.worst.get("flagged")
            )
            slow = sum(1 for e in entries if e.slow)
            signals.append(self._judge(
                "divergence_rate", flagged / samples,
                cfg.divergence_rate_max, f"flagged={flagged}/{samples}",
            ))
            signals.append(self._judge(
                "slow_query_rate", slow / samples,
                cfg.slow_query_rate_max, f"slow={slow}/{samples}",
            ))
        else:
            detail = f"queries={samples}<{cfg.min_query_samples}"
            signals.append(self._judge(
                "divergence_rate", None, cfg.divergence_rate_max, detail,
            ))
            signals.append(self._judge(
                "slow_query_rate", None, cfg.slow_query_rate_max, detail,
            ))

        return HealthReport(signals=signals)

    @staticmethod
    def _judge(
        name: str,
        value: Optional[float],
        threshold: float,
        detail: str,
    ) -> HealthSignal:
        if value is None:
            status = "no-data"
        elif value > threshold:
            status = "alert"
        else:
            status = "ok"
        return HealthSignal(
            name=name, value=value, threshold=threshold,
            status=status, detail=detail,
        )

    # ------------------------------------------------------------------
    def check(self, config: Optional[HealthConfig] = None) -> HealthReport:
        """Evaluate and *act*: journal a ``health.alert`` event per
        breached signal and bump the ``health.alerts`` counter."""
        from repro.observability.journal import JOURNAL
        from repro.observability.metrics import registry
        from repro.observability.state import STATE

        report = self.evaluate(config)
        with self._lock:
            self.last_report = report
        if STATE.enabled:
            for signal in report.alerts:
                registry.counter("health.alerts").inc()
                JOURNAL.record(
                    "health.alert",
                    signal=signal.name,
                    value=round(signal.value, 4)
                    if signal.value is not None else None,
                    threshold=signal.threshold,
                    detail=signal.detail,
                )
        return report

    # ------------------------------------------------------------------
    # periodic evaluation
    # ------------------------------------------------------------------
    def start(self, interval: float = 5.0) -> None:
        """Run :meth:`check` every ``interval`` seconds on a daemon
        thread (idempotent while already running)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, args=(interval,),
                name="repro-health", daemon=True,
            )
            self._thread.start()

    def _run(self, interval: float) -> None:
        while not self._stop.wait(interval):
            self.check()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=2.0)
        with self._lock:
            self._thread = None

    def reset(self) -> None:
        """Stop any periodic thread and restore default thresholds."""
        self.stop()
        with self._lock:
            self.config = HealthConfig()
            self.last_report = None


#: Process-wide monitor behind ``repro health`` / ``repro top``.
MONITOR = HealthMonitor()
