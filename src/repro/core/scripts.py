"""Model-management scripts: canned operator sequences.

The paper's Section 6 describes schema-evolution procedures as
"sequences of model management operations".  This module packages the
two it walks through:

* :func:`migrate_script` — Figure 5's simple path: given mapV-S and
  mapS-S′, migrate the database and re-target the view by composition
  (Section 6.1);
* :func:`evolve_view_script` — the richer path of Sections 6.2–6.3:
  after S evolves to S′, Diff finds the new parts of S′, and Merge
  folds them into the view so users see the new information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.instances.database import Instance
from repro.mappings.correspondence import CorrespondenceSet
from repro.mappings.mapping import Mapping
from repro.metamodel.schema import Schema
from repro.observability.instrument import instrumented
from repro.operators.compose import compose
from repro.operators.diff import SchemaSlice, diff, extract
from repro.operators.merge import MergeResult, merge
from repro.runtime.executor import exchange


@dataclass
class ScriptResult:
    """Outcome of a script run: every produced artifact, plus a log."""

    artifacts: dict[str, object] = field(default_factory=dict)
    log: list[str] = field(default_factory=list)

    def record(self, name: str, artifact: object, message: str) -> None:
        self.artifacts[name] = artifact
        self.log.append(message)

    def describe(self) -> str:
        return "\n".join(self.log)


@instrumented("script.migrate")
def migrate_script(
    map_v_s: Mapping,
    map_s_sprime: Mapping,
    database: Optional[Instance] = None,
) -> ScriptResult:
    """Figure 5 / Section 6.1: cope with S evolving to S′.

    1. (optional) migrate the database D to D′ through mapS-S′;
    2. compose mapV-S with mapS-S′ to re-target the view:
       mapV-S′ = mapV-S ∘ mapS-S′.
    """
    result = ScriptResult()
    if database is not None:
        migrated = exchange(map_s_sprime, database)
        result.record(
            "database",
            migrated,
            f"migrated D ({database.total_rows()} rows) to D′ "
            f"({migrated.total_rows()} rows) via {map_s_sprime.name}",
        )
    composed = compose(map_v_s, map_s_sprime)
    result.record(
        "mapping",
        composed,
        f"composed {map_v_s.name} ∘ {map_s_sprime.name} → {composed.name} "
        f"[{composed.language.value}]",
    )
    return result


@instrumented("script.evolve_view")
def evolve_view_script(
    view_schema: Schema,
    map_v_s: Mapping,
    map_s_sprime: Mapping,
    correspondences: Optional[CorrespondenceSet] = None,
) -> ScriptResult:
    """Sections 6.2–6.3: update the view V to include the *new* parts
    of S′.

    1. Invert mapS-S′ (so it reads from S′);
    2. Diff(S′, Invert(mapS-S′)) — the parts of S′ absent from S;
    3. Compose mapV-S ∘ mapS-S′ (the re-targeted view mapping);
    4. Merge V with the Diff schema, using the provided correspondences
       (or none: the new parts simply extend the view).
    """
    result = ScriptResult()
    s_prime = map_s_sprime.target
    inverted = map_s_sprime.invert()
    result.record("inverted", inverted,
                  f"inverted {map_s_sprime.name} → {inverted.name}")
    new_parts: SchemaSlice = diff(s_prime, inverted)
    result.record(
        "diff",
        new_parts,
        f"Diff({s_prime.name}) found "
        f"{sorted(new_parts.participating) or 'nothing new'}",
    )
    composed = compose(map_v_s, map_s_sprime)
    result.record(
        "composed",
        composed,
        f"composed view mapping {composed.name}",
    )
    if correspondences is None:
        correspondences = CorrespondenceSet(view_schema, new_parts.schema)
    merged: MergeResult = merge(view_schema, new_parts.schema, correspondences)
    result.record(
        "merged",
        merged,
        f"merged view with new parts → {merged.schema.name} "
        f"({len(merged.schema.entities)} entities)",
    )
    return result
