"""The model management engine facade — the paper's Figure 1 box.

One object exposing every design-time operator (Match, ModelGen,
TransGen, Compose, Invert/Inverse, Extract, Diff, Merge), the mapping
runtime services, and the metadata repository, so that tools (the ETL
builder, wrapper generator, query mediator, ... in :mod:`repro.tools`)
embed a single component "with relatively modest customization"
(Section 2).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.core.repository import MetadataRepository
from repro.instances.database import Instance
from repro.mappings.correspondence import CorrespondenceSet
from repro.mappings.interpretation import interpret_as_tgds, interpret_snowflake
from repro.mappings.mapping import Mapping
from repro.metamodel.schema import Schema
from repro.observability.instrument import instrumented
from repro.operators import compose as _compose_module
from repro.operators.compose import compose as _compose
from repro.operators.diff import SchemaSlice, diff as _diff, extract as _extract
from repro.operators.inverse import (
    inverse as _inverse,
    invert as _invert,
    quasi_inverse as _quasi_inverse,
)
from repro.operators.match import MatchConfig, match as _match
from repro.operators.merge import MergeResult, merge as _merge
from repro.operators.modelgen import (
    InheritanceStrategy,
    ModelGenResult,
    modelgen as _modelgen,
)
from repro.operators.transgen import transgen as _transgen
from repro.runtime.access_control import AccessController
from repro.runtime.debugging import MappingDebugger
from repro.runtime.errors import ErrorTranslator
from repro.runtime.executor import exchange as _exchange
from repro.runtime.integrity import (
    check_constraint_propagation,
    inexpressible_constraints,
)
from repro.runtime.loader import BatchLoader
from repro.runtime.notifications import MaterializedTarget
from repro.runtime.p2p import PeerNetwork
from repro.runtime.query_processor import QueryProcessor
from repro.runtime.updates import UpdatePropagator


def _schema_attrs(schema: Schema, prefix: str = "schema") -> dict:
    """Input-size attributes for a schema argument."""
    return {
        f"{prefix}.entities": len(schema.entities),
        f"{prefix}.constraints": len(schema.constraints),
    }


def _mapping_attrs(mapping: Mapping, prefix: str = "mapping") -> dict:
    return {
        f"{prefix}.name": mapping.name,
        f"{prefix}.constraints": mapping.constraint_count(),
    }


class ModelManagementEngine:
    """The generic schema-and-mapping manipulation engine.

    >>> engine = ModelManagementEngine()
    >>> correspondences = engine.match(source_schema, target_schema)
    >>> mapping = engine.interpret(correspondences)
    >>> views = engine.transgen(mapping)
    """

    def __init__(self, repository_dir: Optional[Union[str, Path]] = None):
        self.repository = MetadataRepository(repository_dir)

    # ------------------------------------------------------------------
    # design-time operators (Sections 3, 4, 6)
    # ------------------------------------------------------------------
    @instrumented("engine.match", attrs=lambda self, source, target,
                  config=None: {**_schema_attrs(source, "source"),
                                **_schema_attrs(target, "target")})
    def match(
        self,
        source: Schema,
        target: Schema,
        config: Optional[MatchConfig] = None,
    ) -> CorrespondenceSet:
        """Match: propose top-k correspondence candidates (§3.1.1)."""
        return _match(source, target, config)

    @instrumented("engine.interpret", attrs=lambda self, correspondences,
                  style="tgd", *a, **k: {
                      "correspondences": len(correspondences),
                      "style": style})
    def interpret(
        self,
        correspondences: CorrespondenceSet,
        style: str = "tgd",
        source_root: Optional[str] = None,
        target_root: Optional[str] = None,
    ) -> Mapping:
        """Turn correspondences into mapping constraints (§3.1.2):
        ``style="tgd"`` for the Clio-style st-tgds, ``style="snowflake"``
        for the Figure 4 equality interpretation."""
        if style == "snowflake":
            return interpret_snowflake(correspondences, source_root, target_root)
        return interpret_as_tgds(correspondences)

    @instrumented("engine.modelgen", attrs=lambda self, schema,
                  target_metamodel, *a, **k: {
                      **_schema_attrs(schema),
                      "target.metamodel": target_metamodel})
    def modelgen(
        self,
        schema: Schema,
        target_metamodel: str,
        strategy: InheritanceStrategy = InheritanceStrategy.TPT,
    ) -> ModelGenResult:
        """ModelGen: translate to another metamodel, with instance-level
        mapping constraints (§3.2)."""
        return _modelgen(schema, target_metamodel, strategy)

    @instrumented("engine.transgen", attrs=lambda self, mapping,
                  compute_core=False: _mapping_attrs(mapping))
    def transgen(self, mapping: Mapping, compute_core: bool = False):
        """TransGen: compile constraints into executable
        transformations (§4)."""
        return _transgen(mapping, compute_core=compute_core)

    @instrumented("engine.compose", attrs=lambda self, first, second,
                  *a, **k: {**_mapping_attrs(first, "first"),
                            **_mapping_attrs(second, "second")})
    def compose(self, first: Mapping, second: Mapping,
                prefer_first_order: bool = True) -> Mapping:
        """Compose (§6.1)."""
        return _compose(first, second, prefer_first_order)

    @instrumented("engine.invert",
                  attrs=lambda self, mapping: _mapping_attrs(mapping))
    def invert(self, mapping: Mapping) -> Mapping:
        """Syntactic Invert (§6.2)."""
        return _invert(mapping)

    @instrumented("engine.inverse", attrs=lambda self, mapping,
                  samples=None: _mapping_attrs(mapping))
    def inverse(self, mapping: Mapping,
                samples: Optional[Sequence[Instance]] = None) -> Mapping:
        """Exact inverse, when one exists (§6.4)."""
        return _inverse(mapping, samples)

    @instrumented("engine.quasi_inverse",
                  attrs=lambda self, mapping: _mapping_attrs(mapping))
    def quasi_inverse(self, mapping: Mapping) -> Mapping:
        """Quasi-inverse (§6.4)."""
        return _quasi_inverse(mapping)

    @instrumented("engine.extract", attrs=lambda self, schema, mapping: {
        **_schema_attrs(schema), **_mapping_attrs(mapping)})
    def extract(self, schema: Schema, mapping: Mapping) -> SchemaSlice:
        """Extract (§6.2)."""
        return _extract(schema, mapping)

    @instrumented("engine.diff", attrs=lambda self, schema, mapping: {
        **_schema_attrs(schema), **_mapping_attrs(mapping)})
    def diff(self, schema: Schema, mapping: Mapping) -> SchemaSlice:
        """Diff (§6.2)."""
        return _diff(schema, mapping)

    @instrumented("engine.merge", attrs=lambda self, first, second,
                  correspondences: {**_schema_attrs(first, "first"),
                                    **_schema_attrs(second, "second"),
                                    "correspondences": len(correspondences)})
    def merge(self, first: Schema, second: Schema,
              correspondences: CorrespondenceSet) -> MergeResult:
        """Merge (§6.3)."""
        return _merge(first, second, correspondences)

    # ------------------------------------------------------------------
    # runtime services (Section 5)
    # ------------------------------------------------------------------
    @instrumented("engine.exchange", attrs=lambda self, mapping, source,
                  compute_core=False: {**_mapping_attrs(mapping),
                                       "source.rows": source.total_rows()})
    def exchange(self, mapping: Mapping, source: Instance,
                 compute_core: bool = False) -> Instance:
        """Data exchange: materialize the target."""
        return _exchange(mapping, source, compute_core)

    def query_processor(
        self,
        mapping: Mapping,
        source: Instance,
        engine: Optional[str] = None,
    ) -> QueryProcessor:
        return QueryProcessor(mapping, source, engine=engine)

    def update_propagator(
        self, mapping: Mapping, engine: Optional[str] = None
    ) -> UpdatePropagator:
        return UpdatePropagator(mapping, engine=engine)

    def debugger(self, mapping: Mapping) -> MappingDebugger:
        return MappingDebugger(mapping)

    def error_translator(self, mapping: Mapping) -> ErrorTranslator:
        return ErrorTranslator(mapping)

    def materialized_target(self, mapping: Mapping,
                            source: Instance) -> MaterializedTarget:
        return MaterializedTarget(mapping, source)

    def access_controller(self, mapping: Mapping) -> AccessController:
        return AccessController(mapping)

    def batch_loader(self, mapping: Mapping, validate: bool = True) -> BatchLoader:
        return BatchLoader(mapping, validate)

    def peer_network(self) -> PeerNetwork:
        return PeerNetwork()

    def check_integrity_propagation(self, mapping: Mapping,
                                    source: Instance):
        return check_constraint_propagation(mapping, source)

    def runtime_enforced_constraints(self, mapping: Mapping):
        """Target constraints the source layer cannot express (§5)."""
        return inexpressible_constraints(mapping)

    def keyword_index(self, mapping: Mapping, source: Instance):
        """Index the source, search in target context (§5 'Indexing')."""
        from repro.runtime.indexing import KeywordIndex

        return KeywordIndex(mapping, source)

    def pushdown_triggers(self, triggers, mapping: Mapping):
        """Translate target-level triggers to the source (§5 'Business
        logic')."""
        from repro.runtime.business_logic import pushdown

        return pushdown(triggers, mapping)

    def synchronizer(self, primary, replica):
        """Object-level replication executed at the source level (§5
        'Synchronization logic')."""
        from repro.runtime.synchronization import Synchronizer

        return Synchronizer(primary, replica)

    def incremental_matcher(self, source: Schema, target: Schema,
                            config: Optional[MatchConfig] = None):
        """An interactive matching session with decision-driven
        re-ranking (§3.1.1 / the incremental matching of [18])."""
        from repro.operators.match.incremental import IncrementalMatcher

        return IncrementalMatcher(source, target, config)

    def validate_schema(self, schema: Schema) -> list[str]:
        """Well-formedness report for a schema."""
        from repro.metamodel.validation import schema_violations

        return schema_violations(schema)

    @instrumented("engine.evolve", attrs=lambda self, schema, changes,
                  name=None: {**_schema_attrs(schema),
                              "changes": len(changes)})
    def evolve(self, schema: Schema, changes, name: Optional[str] = None):
        """Apply a structured change script, deriving the evolved
        schema *and* the evolution mapping mapS-S′ (§6.1's first step,
        automated)."""
        from repro.operators.evolution import evolve

        return evolve(schema, changes, name)
