"""The metadata repository (paper, Figure 1, "Metadata Repository").

Named, versioned storage of schemas and mappings, with optional JSON
persistence to disk.  Versions are append-only: saving under an
existing name creates a new version; loads default to the latest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.errors import RepositoryError
from repro.mappings.mapping import Mapping
from repro.metamodels.serialization import (
    mapping_from_dict,
    mapping_to_dict,
    schema_from_dict,
    schema_to_dict,
)
from repro.metamodel.schema import Schema


@dataclass
class VersionedArtifact:
    """One stored version of a schema or mapping."""

    name: str
    version: int
    kind: str  # "schema" | "mapping"
    payload: dict
    comment: str = ""


class MetadataRepository:
    """In-memory repository with optional directory-backed persistence."""

    def __init__(self, directory: Optional[Union[str, Path]] = None):
        self._store: dict[tuple[str, str], list[VersionedArtifact]] = {}
        self.directory = Path(directory) if directory else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._load_from_disk()

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def save_schema(self, schema: Schema, name: Optional[str] = None,
                    comment: str = "") -> VersionedArtifact:
        return self._save("schema", name or schema.name,
                          schema_to_dict(schema), comment)

    def save_mapping(self, mapping: Mapping, name: Optional[str] = None,
                     comment: str = "") -> VersionedArtifact:
        return self._save("mapping", name or mapping.name,
                          mapping_to_dict(mapping), comment)

    def _save(self, kind: str, name: str, payload: dict,
              comment: str) -> VersionedArtifact:
        versions = self._store.setdefault((kind, name), [])
        artifact = VersionedArtifact(
            name=name,
            version=len(versions) + 1,
            kind=kind,
            payload=payload,
            comment=comment,
        )
        versions.append(artifact)
        if self.directory is not None:
            path = self.directory / f"{kind}__{name}__v{artifact.version}.json"
            path.write_text(json.dumps(
                {"comment": comment, "payload": payload}, default=str
            ))
        return artifact

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def load_schema(self, name: str, version: Optional[int] = None) -> Schema:
        return schema_from_dict(self._load("schema", name, version).payload)

    def load_mapping(self, name: str, version: Optional[int] = None) -> Mapping:
        return mapping_from_dict(self._load("mapping", name, version).payload)

    def _load(self, kind: str, name: str,
              version: Optional[int]) -> VersionedArtifact:
        versions = self._store.get((kind, name))
        if not versions:
            raise RepositoryError(f"no {kind} named {name!r}")
        if version is None:
            return versions[-1]
        for artifact in versions:
            if artifact.version == version:
                return artifact
        raise RepositoryError(
            f"{kind} {name!r} has no version {version} "
            f"(latest is {versions[-1].version})"
        )

    def versions_of(self, kind: str, name: str) -> list[int]:
        return [a.version for a in self._store.get((kind, name), [])]

    def list_schemas(self) -> list[str]:
        return sorted(n for k, n in self._store if k == "schema")

    def list_mappings(self) -> list[str]:
        return sorted(n for k, n in self._store if k == "mapping")

    def history(self, kind: str, name: str) -> list[VersionedArtifact]:
        return list(self._store.get((kind, name), []))

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _load_from_disk(self) -> None:
        assert self.directory is not None
        for path in sorted(self.directory.glob("*__*__v*.json")):
            stem_parts = path.stem.split("__")
            if len(stem_parts) != 3:
                continue
            kind, name, version_tag = stem_parts
            data = json.loads(path.read_text())
            versions = self._store.setdefault((kind, name), [])
            versions.append(
                VersionedArtifact(
                    name=name,
                    version=int(version_tag[1:]),
                    kind=kind,
                    payload=data["payload"],
                    comment=data.get("comment", ""),
                )
            )
        for versions in self._store.values():
            versions.sort(key=lambda a: a.version)
