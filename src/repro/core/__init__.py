"""Engine facade, metadata repository, and model-management scripts —
the component box of the paper's Figure 1.
"""

from repro.core.engine import ModelManagementEngine
from repro.core.repository import MetadataRepository, VersionedArtifact
from repro.core.scripts import evolve_view_script, migrate_script, ScriptResult

__all__ = [
    "ModelManagementEngine",
    "MetadataRepository",
    "VersionedArtifact",
    "evolve_view_script",
    "migrate_script",
    "ScriptResult",
]
