"""Exception hierarchy for the model management engine.

Every error raised by :mod:`repro` derives from :class:`ModelManagementError`
so that embedding tools can catch engine failures with a single handler and
translate them into their own error vocabulary (the paper's Section 5
"Errors" runtime service does exactly that via
:mod:`repro.runtime.errors`).
"""

from __future__ import annotations


class ModelManagementError(Exception):
    """Base class for all errors raised by the engine."""


class SchemaError(ModelManagementError):
    """A schema is malformed or an element reference cannot be resolved."""


class TypeMismatchError(SchemaError):
    """A value or expression does not conform to the declared type."""


class ConstraintViolation(ModelManagementError):
    """An integrity constraint is violated by a database instance."""

    def __init__(self, constraint, message: str):
        super().__init__(message)
        self.constraint = constraint


class MappingError(ModelManagementError):
    """A mapping is malformed or used with schemas it does not relate."""


class ExpressivenessError(MappingError):
    """An operator needs more (or less) expressive constraints than given.

    The paper's central theme is that operator behaviour is sensitive to
    mapping-language expressiveness; this error surfaces the boundary,
    e.g. when a composition result is not first-order expressible and the
    caller demanded st-tgds.
    """


class CompositionError(MappingError):
    """Composition failed (schemas do not chain, or language mismatch)."""


class InversionError(MappingError):
    """No (quasi-)inverse exists for the given mapping."""


class ChaseFailure(ModelManagementError):
    """The chase failed: an equality-generating dependency equated two
    distinct constants, so no solution exists for this source instance."""


class ChaseNonTermination(ModelManagementError):
    """The chase exceeded its step budget; the dependency set is probably
    not weakly acyclic."""


class TransformationError(ModelManagementError):
    """Transformation generation or execution failed."""


class RoundTripError(TransformationError):
    """Generated query/update views do not round-trip (are lossy)."""


class EvaluationError(ModelManagementError):
    """A relational algebra expression could not be evaluated."""


class AccessDenied(ModelManagementError):
    """The runtime's access-control service rejected an operation."""


class RepositoryError(ModelManagementError):
    """Metadata repository failure (unknown name, version conflict...)."""
