"""Query mediation / EII (paper, Section 1.1: "query mediators to
access heterogeneous databases").

A mediator exposes one *global* schema over several sources, each
connected by its own mapping.  Target queries are answered by
unioning the per-source answers (GAV-style mediation); conjunctive
queries get certain-answer semantics per source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algebra.expressions import RelExpr
from repro.errors import MappingError
from repro.instances.database import Instance, Row, freeze_row
from repro.logic.formulas import ConjunctiveQuery
from repro.mappings.mapping import Mapping
from repro.metamodel.schema import Schema
from repro.runtime.query_processor import QueryProcessor


@dataclass
class _Source:
    name: str
    mapping: Mapping
    data: Instance
    processor: QueryProcessor


class QueryMediator:
    """One global schema, many mapped sources.

    ``engine`` selects the algebra execution engine used by every
    per-source processor and the union-side re-aggregation (None →
    process default)."""

    def __init__(self, global_schema: Schema, engine: Optional[str] = None):
        self.global_schema = global_schema
        self.engine = engine
        self._sources: dict[str, _Source] = {}

    def add_source(self, name: str, mapping: Mapping, data: Instance) -> None:
        if mapping.target.name != self.global_schema.name:
            raise MappingError(
                f"source {name!r}: mapping targets {mapping.target.name!r}, "
                f"not the global schema {self.global_schema.name!r}"
            )
        if name in self._sources:
            raise MappingError(f"duplicate source {name!r}")
        self._sources[name] = _Source(
            name=name,
            mapping=mapping,
            data=data,
            processor=QueryProcessor(mapping, data, engine=self.engine),
        )

    def sources(self) -> list[str]:
        return sorted(self._sources)

    def refresh(self, name: str, data: Instance) -> None:
        source = self._sources[name]
        source.data = data
        source.processor = QueryProcessor(
            source.mapping, data, engine=self.engine
        )

    # ------------------------------------------------------------------
    def answer(self, query: RelExpr, distinct: bool = True) -> list[Row]:
        """Answer an algebra query over the global schema by unioning
        per-source answers.

        Aggregations and sorts are *decomposed*: the inner query runs
        per source, the union is formed, and the aggregate/sort runs
        over the combined rows — otherwise a group spanning two sources
        would be reported once per source.
        """
        from repro.algebra import expressions as E
        from repro.algebra.evaluator import evaluate
        from repro.instances.database import Instance

        outer: list[RelExpr] = []
        inner = query
        while isinstance(inner, (E.Aggregate, E.Sort)):
            outer.append(inner)
            inner = inner.inputs()[0]

        combined: list[Row] = []
        seen: set[frozenset] = set()
        for source in self._sources.values():
            for row in source.processor.answer_algebra(inner):
                frozen = freeze_row(row)
                if distinct and frozen in seen:
                    continue
                seen.add(frozen)
                combined.append(row)
        if not outer:
            return combined
        # Re-apply the aggregate/sort stack over the unioned rows.
        staging = Instance()
        staging.insert_all("$union", combined)
        rebuilt: RelExpr = E.Scan("$union")
        for node in reversed(outer):
            if isinstance(node, E.Aggregate):
                rebuilt = E.Aggregate(rebuilt, node.group_by,
                                      node.aggregations)
            else:
                rebuilt = E.Sort(rebuilt, node.keys)
        return evaluate(rebuilt, staging, engine=self.engine)

    def answer_cq(self, query: ConjunctiveQuery) -> list[tuple]:
        """Certain answers of a CQ, unioned across sources."""
        combined: list[tuple] = []
        seen: set[tuple] = set()
        for source in self._sources.values():
            for answer in source.processor.answer_cq(query):
                if answer not in seen:
                    seen.add(answer)
                    combined.append(answer)
        return combined

    def explain(self, query: RelExpr) -> dict[str, str]:
        """Per-source query plans (unfolded when possible)."""
        plans = {}
        for source in self._sources.values():
            try:
                plans[source.name] = repr(source.processor.unfolded(query))
            except Exception:  # noqa: BLE001 - tgd sources have no unfolding
                plans[source.name] = "(certain answers over exchanged data)"
        return plans
