"""An ETL pipeline builder on the engine (paper, Section 1.1, first
bullet: "simplify the programming of scripts to extract data from
sources, clean it, reshape it, and load it into a data warehouse").

A pipeline is a list of steps, each owning a mapping; running the
pipeline exchanges data step by step with per-step row cleaning and
collects load statistics.  The warehouse-flavoured extras the paper
mentions in Section 5 ("deduplication or other heuristic operators,
staging of data in mini-batches") appear as the ``deduplicate`` and
``batch_size`` knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.instances.database import Instance, Row
from repro.instances.validation import violations
from repro.mappings.mapping import Mapping
from repro.runtime.executor import exchange

Cleaner = Callable[[str, Row], Optional[Row]]


@dataclass
class EtlStep:
    """One hop of the pipeline: a mapping plus optional row cleaning."""

    mapping: Mapping
    cleaner: Optional[Cleaner] = None
    deduplicate: bool = True
    name: str = ""
    engine: Optional[str] = None

    def run(self, data: Instance) -> tuple[Instance, dict]:
        cleaned = data
        dropped = 0
        if self.cleaner is not None:
            cleaned = Instance(data.schema)
            for relation, rows in data.relations.items():
                for row in rows:
                    kept = self.cleaner(relation, dict(row))
                    if kept is None:
                        dropped += 1
                    else:
                        cleaned.insert(relation, kept)
        result = exchange(self.mapping, cleaned, engine=self.engine)
        if self.deduplicate:
            result = result.deduplicated()
        stats = {
            "step": self.name or self.mapping.name,
            "rows_in": data.total_rows(),
            "rows_dropped_by_cleaner": dropped,
            "rows_out": result.total_rows(),
        }
        return result, stats


class EtlPipeline:
    """Compose steps source → staging → ... → warehouse."""

    def __init__(self, name: str = "etl", engine: Optional[str] = None):
        self.name = name
        #: Algebra engine every step's exchange runs on (None → default).
        self.engine = engine
        self.steps: list[EtlStep] = []

    def add_step(
        self,
        mapping: Mapping,
        cleaner: Optional[Cleaner] = None,
        deduplicate: bool = True,
        name: str = "",
    ) -> "EtlPipeline":
        self.steps.append(
            EtlStep(mapping=mapping, cleaner=cleaner,
                    deduplicate=deduplicate, name=name, engine=self.engine)
        )
        return self

    def run(
        self,
        source: Instance,
        batch_size: Optional[int] = None,
        validate_output: bool = True,
    ) -> tuple[Instance, list[dict]]:
        """Run the pipeline; with ``batch_size``, the source is staged
        through in mini-batches and results unioned (the Section 5
        "staging of data in mini-batches")."""
        stats: list[dict] = []
        if batch_size is None:
            batches = [source]
        else:
            batches = list(_mini_batches(source, batch_size))
        combined: Optional[Instance] = None
        for index, batch in enumerate(batches):
            current = batch
            for step in self.steps:
                current, step_stats = step.run(current)
                step_stats["batch"] = index
                stats.append(step_stats)
            combined = current if combined is None else combined.union(current)
        assert combined is not None
        result = combined.deduplicated()
        if self.steps:
            result.schema = self.steps[-1].mapping.target
        if validate_output and result.schema is not None:
            problems = violations(result)
            stats.append({"step": "validation", "violations": len(problems)})
        return result, stats


def _mini_batches(source: Instance, batch_size: int):
    """Split a source instance into row-count-bounded batches,
    relation by relation (each batch keeps whole relations' slices)."""
    total = source.total_rows()
    if total == 0:
        yield source
        return
    offsets = {relation: 0 for relation in source.relations}
    while any(
        offsets[relation] < len(rows)
        for relation, rows in source.relations.items()
    ):
        batch = Instance(source.schema)
        budget = batch_size
        for relation, rows in source.relations.items():
            if budget <= 0:
                break
            start = offsets[relation]
            take = rows[start : start + budget]
            if take:
                batch.insert_all(relation, take)
                offsets[relation] += len(take)
                budget -= len(take)
        yield batch
