"""Heuristic cleaning operators for ETL pipelines.

The paper's §5 "Data exchange" bullet notes warehouse mappings involve
"deduplication or other heuristic operators".  This module provides
cleaner factories plugging into :class:`~repro.tools.etl.EtlStep`:

* :func:`fuzzy_dedup` — approximate duplicate elimination: rows whose
  key columns agree and whose fuzzy columns are lexically similar above
  a threshold collapse onto the first-seen representative;
* :func:`null_filter` — drop rows with nulls in required columns;
* :func:`range_filter` — drop rows outside a numeric range;
* :func:`normalizer` — canonicalize string columns (case/whitespace);
* :func:`chain` — compose cleaners left to right.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.instances.database import Row
from repro.instances.labeled_null import is_null
from repro.operators.match.lexical import name_similarity

Cleaner = Callable[[str, Row], Optional[Row]]


def chain(*cleaners: Cleaner) -> Cleaner:
    """Apply cleaners in order; the first to drop a row wins."""

    def run(relation: str, row: Row) -> Optional[Row]:
        current: Optional[Row] = row
        for cleaner in cleaners:
            if current is None:
                return None
            current = cleaner(relation, current)
        return current

    return run


def null_filter(required: Sequence[str]) -> Cleaner:
    """Drop rows with (labeled or SQL) nulls in the given columns."""
    required_set = set(required)

    def run(relation: str, row: Row) -> Optional[Row]:
        for column in required_set:
            if column in row and is_null(row[column]):
                return None
        return row

    return run


def range_filter(column: str, minimum=None, maximum=None) -> Cleaner:
    """Drop rows whose numeric ``column`` falls outside [min, max]."""

    def run(relation: str, row: Row) -> Optional[Row]:
        value = row.get(column)
        if value is None:
            return row
        if minimum is not None and value < minimum:
            return None
        if maximum is not None and value > maximum:
            return None
        return row

    return run


def normalizer(columns: Sequence[str], lowercase: bool = True) -> Cleaner:
    """Trim and collapse whitespace (and optionally lowercase) the
    given string columns."""
    column_set = set(columns)

    def run(relation: str, row: Row) -> Optional[Row]:
        cleaned = dict(row)
        for column in column_set:
            value = cleaned.get(column)
            if isinstance(value, str):
                text = " ".join(value.split())
                cleaned[column] = text.lower() if lowercase else text
        return cleaned

    return run


class fuzzy_dedup:  # noqa: N801 - factory used like a function
    """Stateful approximate deduplication.

    Two rows are duplicates when they agree exactly on ``exact_columns``
    and every ``fuzzy_column`` pair scores ≥ ``threshold`` under the
    lexical similarity used by the matcher.  The first-seen row is the
    representative; later duplicates are dropped.  State is per
    pipeline run — construct a fresh instance per run.
    """

    def __init__(
        self,
        exact_columns: Sequence[str] = (),
        fuzzy_columns: Sequence[str] = (),
        threshold: float = 0.85,
    ):
        self.exact_columns = tuple(exact_columns)
        self.fuzzy_columns = tuple(fuzzy_columns)
        self.threshold = threshold
        self._seen: dict[str, list[Row]] = {}
        self.dropped = 0

    def __call__(self, relation: str, row: Row) -> Optional[Row]:
        bucket = self._seen.setdefault(relation, [])
        for representative in bucket:
            if self._duplicates(representative, row):
                self.dropped += 1
                return None
        bucket.append(row)
        return row

    def _duplicates(self, a: Row, b: Row) -> bool:
        for column in self.exact_columns:
            if a.get(column) != b.get(column):
                return False
        for column in self.fuzzy_columns:
            left, right = a.get(column), b.get(column)
            if left is None or right is None:
                if left is not right:
                    return False
                continue
            if name_similarity(str(left), str(right)) < self.threshold:
                return False
        return bool(self.exact_columns or self.fuzzy_columns)
