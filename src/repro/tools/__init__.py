"""The tool layer of Figure 1.

Section 1.1 lists the product categories where engineered mappings are
central; Section 2's thesis is that one engine can serve them all.
Each tool here is a deliberately thin adapter over
:class:`~repro.core.engine.ModelManagementEngine`, demonstrating the
reuse the paper calls for:

* :mod:`~repro.tools.etl` — extract-transform-load pipelines;
* :mod:`~repro.tools.wrapper` — OO wrapper generation over a
  relational source (queries *and* updates);
* :mod:`~repro.tools.mediator` — query mediation over multiple
  sources (EII);
* :mod:`~repro.tools.message_mapper` — message translation between
  two formats;
* :mod:`~repro.tools.report` — a report writer over mapped data.
"""

from repro.tools.etl import EtlPipeline, EtlStep
from repro.tools.wrapper import WrapperGenerator, GeneratedWrapper
from repro.tools.mediator import QueryMediator
from repro.tools.message_mapper import MessageMapper
from repro.tools.report import ReportWriter, ReportSpec
from repro.tools.cleaning import (
    chain,
    fuzzy_dedup,
    normalizer,
    null_filter,
    range_filter,
)

__all__ = [
    "chain",
    "fuzzy_dedup",
    "normalizer",
    "null_filter",
    "range_filter",
    "EtlPipeline",
    "EtlStep",
    "WrapperGenerator",
    "GeneratedWrapper",
    "QueryMediator",
    "MessageMapper",
    "ReportWriter",
    "ReportSpec",
]
