"""A report writer over mapped data (paper, Section 1.1: "report
writers that map between structured data sources and a report
format").

A :class:`ReportSpec` declares the report's query — relation, computed
columns, filters, grouping, ordering — against the *target* schema;
the writer answers it through the mapping (so reports run directly
against sources) and renders fixed-width text or CSV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.algebra import expressions as E
from repro.algebra import scalars as S
from repro.instances.database import Instance, Row
from repro.mappings.mapping import Mapping
from repro.runtime.query_processor import QueryProcessor


@dataclass
class ReportSpec:
    """Declarative report definition over a target entity."""

    entity: str
    columns: Sequence[str]
    title: str = ""
    where: Optional[S.Predicate] = None
    group_by: Sequence[str] = ()
    aggregations: Sequence[tuple[str, str, Optional[str]]] = ()
    order_by: Sequence[str] = ()
    typed: bool = False  # scan a hierarchy extent instead of a relation

    def to_query(self) -> E.RelExpr:
        expr: E.RelExpr = (
            E.EntityScan(self.entity) if self.typed else E.Scan(self.entity)
        )
        if self.where is not None:
            expr = E.Select(expr, self.where)
        if self.group_by or self.aggregations:
            expr = E.Aggregate(
                expr,
                list(self.group_by),
                [
                    (name, func, S.Col(column) if column else None)
                    for name, func, column in self.aggregations
                ],
            )
        else:
            expr = E.project_names(expr, list(self.columns))
        if self.order_by:
            expr = E.Sort(expr, list(self.order_by))
        return expr

    def output_columns(self) -> list[str]:
        if self.group_by or self.aggregations:
            return list(self.group_by) + [n for n, _, _ in self.aggregations]
        return list(self.columns)


class ReportWriter:
    """Runs report specs through a mapping and renders them."""

    def __init__(self, mapping: Mapping, source: Instance):
        self.processor = QueryProcessor(mapping, source)

    def rows(self, spec: ReportSpec) -> list[Row]:
        return self.processor.answer_algebra(spec.to_query())

    # ------------------------------------------------------------------
    def render_text(self, spec: ReportSpec) -> str:
        """Fixed-width text rendering."""
        rows = self.rows(spec)
        columns = spec.output_columns()
        widths = {
            column: max(
                len(column), *(len(_cell(r.get(column))) for r in rows)
            ) if rows else len(column)
            for column in columns
        }
        lines = []
        if spec.title:
            lines.append(spec.title)
            lines.append("=" * len(spec.title))
        header = "  ".join(column.ljust(widths[column]) for column in columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in rows:
            lines.append(
                "  ".join(
                    _cell(row.get(column)).ljust(widths[column])
                    for column in columns
                )
            )
        lines.append(f"({len(rows)} rows)")
        return "\n".join(lines)

    def render_csv(self, spec: ReportSpec) -> str:
        rows = self.rows(spec)
        columns = spec.output_columns()
        lines = [",".join(columns)]
        for row in rows:
            lines.append(
                ",".join(_csv_cell(row.get(column)) for column in columns)
            )
        return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _csv_cell(value: object) -> str:
    text = _cell(value)
    if "," in text or '"' in text:
        return '"' + text.replace('"', '""') + '"'
    return text
