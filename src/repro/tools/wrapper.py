"""Wrapper generation (paper, Section 1.1: "produce an object-oriented
wrapper for a relational database … wrappers often need to support
incremental updates").

The generator runs the full engine pipeline:

1. ModelGen the relational schema into an OO/ER view (or accept a
   hand-written inheritance mapping);
2. TransGen the query and update views;
3. emit Python dataclass source for the object model;
4. return a :class:`GeneratedWrapper` whose object-level API —
   ``all()``, ``get()``, ``insert()``, ``delete()`` — reads through the
   query view and writes through update propagation, with error
   translation back into object vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ModelManagementError
from repro.instances.database import TYPE_FIELD, Instance, Row
from repro.mappings.mapping import Mapping
from repro.metamodel.schema import Schema
from repro.metamodels.objects import emit_classes
from repro.operators.modelgen import InheritanceStrategy, modelgen
from repro.operators.transgen import TransformationPair, transgen
from repro.runtime.errors import ErrorTranslator
from repro.runtime.updates import UpdatePropagator, UpdateSet


class GeneratedWrapper:
    """An object-oriented facade over a relational database."""

    def __init__(
        self,
        mapping: Mapping,
        database: Instance,
        engine: Optional[str] = None,
    ):
        self.mapping = mapping
        self.database = database
        self.engine = engine
        views = transgen(mapping)
        if not isinstance(views, TransformationPair):
            raise ModelManagementError(
                "wrapper generation needs a bidirectional mapping"
            )
        self.views = views
        self.propagator = UpdatePropagator(mapping, engine=engine)
        self.errors = ErrorTranslator(mapping)
        self._objects: Optional[Instance] = None

    # ------------------------------------------------------------------
    @property
    def object_schema(self) -> Schema:
        return self.mapping.target

    def _materialized(self) -> Instance:
        if self._objects is None:
            self._objects = self.views.query_view.apply(
                self.database, engine=self.engine
            )
            self._objects.schema = self.object_schema
        return self._objects

    def refresh(self) -> None:
        self._objects = None

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def all(self, entity: str, strict: bool = False) -> list[Row]:
        """All objects of (sub)type ``entity``."""
        try:
            return self._materialized().objects_of(entity, strict=strict)
        except Exception as error:  # noqa: BLE001 - translated for the user
            raise self.errors.translate(error, operation=f"read {entity}")

    def get(self, entity: str, **key: object) -> Optional[Row]:
        for row in self.all(entity):
            if all(row.get(k) == v for k, v in key.items()):
                return row
        return None

    # ------------------------------------------------------------------
    # writes (incremental updates, translated to the source)
    # ------------------------------------------------------------------
    def insert(self, entity: str, **values: object) -> Row:
        update = UpdateSet().insert_object(entity, **values)
        return self._write(update, f"insert {entity}")

    def delete(self, entity: str, **key: object) -> None:
        root = self.object_schema.entity(entity).root()
        pattern = dict(key)
        update = UpdateSet().delete(root.name, **pattern)
        self._write(update, f"delete {entity}")

    def _write(self, update: UpdateSet, operation: str):
        try:
            _, new_source, new_target = self.propagator.propagate(
                self._materialized(), update, source_instance=self.database
            )
        except Exception as error:  # noqa: BLE001
            raise self.errors.translate(error, operation=operation)
        self.database.relations = new_source.relations
        self._objects = new_target
        return None


@dataclass
class WrapperGenerator:
    """End-to-end wrapper generation from a relational schema."""

    strategy: InheritanceStrategy = InheritanceStrategy.TPT

    def generate_from_mapping(
        self, mapping: Mapping, database: Instance
    ) -> tuple[GeneratedWrapper, str]:
        """Wrap an existing inheritance mapping; returns the wrapper and
        the generated dataclass source code."""
        source_code = emit_classes(mapping.target)
        return GeneratedWrapper(mapping, database), source_code

    def generate(
        self, relational_schema: Schema, database: Instance
    ) -> tuple[GeneratedWrapper, str]:
        """Derive an object model from a flat relational schema via
        ModelGen, then wrap it."""
        result = modelgen(relational_schema, "er", self.strategy)
        # ModelGen's mapping is derived → original; the wrapper wants
        # tables as source and objects as target, which is the inverse.
        mapping = result.mapping.invert()
        source_code = emit_classes(result.schema)
        return GeneratedWrapper(mapping, database), source_code
