"""Message mapping (paper, Section 1.1: "simplify the programming of
message translation between different formats", the EAI scenario).

Messages are nested documents; the mapper flattens them per the source
message schema, exchanges through a mapping, and re-nests per the
target message schema — the composition of three engine facilities the
paper's message-oriented middleware scenario needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import MappingError
from repro.instances.database import Instance
from repro.mappings.mapping import Mapping
from repro.metamodel.schema import Schema
from repro.metamodels.nested import flatten_documents, nest_instance
from repro.runtime.executor import exchange


@dataclass
class MessageMapper:
    """Translate messages of one nested format into another.

    ``source_root`` / ``target_root`` name the message's root entity in
    each schema; ``mapping`` relates the *flattened* forms.
    """

    source_schema: Schema
    source_root: str
    target_schema: Schema
    target_root: str
    mapping: Mapping

    def __post_init__(self):
        if self.mapping.source.name != self.source_schema.name and (
            self.mapping.source.name
            != f"{self.source_schema.name}_relational"
        ):
            # The mapping may be phrased over the flattened schema.
            pass
        self.source_schema.entity(self.source_root)
        self.target_schema.entity(self.target_root)

    def translate(self, messages: list[dict]) -> list[dict]:
        """Nested source messages → nested target messages."""
        flat = flatten_documents(self.source_schema, self.source_root, messages)
        exchanged = exchange(self.mapping, flat)
        exchanged.schema = self.target_schema
        return nest_instance(self.target_schema, self.target_root, exchanged)

    def translate_one(self, message: dict) -> Optional[dict]:
        results = self.translate([message])
        return results[0] if results else None
