"""Lossless JSON serialization of schemas and mappings.

The metadata repository (:mod:`repro.core.repository`) persists its
artifacts through this module.  Every universal-metamodel construct and
every constraint-language tier round-trips; algebra expressions inside
equality constraints are serialized structurally.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra import expressions as E
from repro.algebra import scalars as S
from repro.errors import RepositoryError
from repro.logic.dependencies import EGD, TGD
from repro.logic.formulas import Atom, Equality
from repro.logic.second_order import Implication, SecondOrderTGD
from repro.logic.terms import Const, FuncTerm, Term, Var
from repro.mappings.mapping import EqualityConstraint, Mapping
from repro.metamodel.constraints import (
    Covering,
    Disjointness,
    InclusionDependency,
    KeyConstraint,
    NotNull,
)
from repro.metamodel.elements import (
    Association,
    AssociationEnd,
    Attribute,
    Cardinality,
    Containment,
    Entity,
    Reference,
)
from repro.metamodel.schema import Schema
from repro.metamodel.types import (
    ParametricType,
    PrimitiveType,
    DataType,
    primitive,
)


# ----------------------------------------------------------------------
# types
# ----------------------------------------------------------------------
def _type_to_dict(t: DataType) -> dict:
    if isinstance(t, ParametricType):
        return {
            "kind": "parametric",
            "name": t.name,
            "base": t.base,
            "params": list(t.params),
        }
    return {"kind": "primitive", "name": t.name}


def _type_from_dict(data: dict) -> DataType:
    if data["kind"] == "parametric":
        return ParametricType(
            name=data["name"],
            base=data["base"],
            params=tuple(data["params"]),
        )
    return primitive(data["name"])


# ----------------------------------------------------------------------
# schemas
# ----------------------------------------------------------------------
def schema_to_dict(schema: Schema) -> dict:
    return {
        "name": schema.name,
        "metamodel": schema.metamodel,
        "documentation": schema.documentation,
        "entities": [
            {
                "name": entity.name,
                "abstract": entity.is_abstract,
                "parent": entity.parent.name if entity.parent else None,
                "key": list(entity.key),
                "attributes": [
                    {
                        "name": attribute.name,
                        "type": _type_to_dict(attribute.data_type),
                        "nullable": attribute.nullable,
                    }
                    for attribute in entity.attributes
                ],
            }
            for entity in schema.entities.values()
        ],
        "associations": [
            {
                "name": association.name,
                "source": _end_to_dict(association.source),
                "target": _end_to_dict(association.target),
            }
            for association in schema.associations.values()
        ],
        "containments": [
            {
                "name": containment.name,
                "parent": containment.parent.name,
                "child": containment.child.name,
                "cardinality": [containment.cardinality.min,
                                containment.cardinality.max],
            }
            for containment in schema.containments.values()
        ],
        "references": [
            {
                "name": reference.name,
                "owner": reference.owner.name,
                "target": reference.target.name,
                "via": list(reference.via_attributes),
                "cardinality": [reference.cardinality.min,
                                reference.cardinality.max],
            }
            for reference in schema.references.values()
        ],
        "constraints": [_constraint_to_dict(c) for c in schema.constraints],
    }


def _end_to_dict(end: AssociationEnd) -> dict:
    return {
        "role": end.role,
        "entity": end.entity.name,
        "cardinality": [end.cardinality.min, end.cardinality.max],
    }


def _constraint_to_dict(constraint) -> dict:
    if isinstance(constraint, KeyConstraint):
        return {
            "kind": "key",
            "entity": constraint.entity,
            "attributes": list(constraint.attributes),
            "primary": constraint.is_primary,
        }
    if isinstance(constraint, InclusionDependency):
        return {
            "kind": "inclusion",
            "source": constraint.source,
            "source_attributes": list(constraint.source_attributes),
            "target": constraint.target,
            "target_attributes": list(constraint.target_attributes),
        }
    if isinstance(constraint, Disjointness):
        return {"kind": "disjoint", "entities": list(constraint.entities)}
    if isinstance(constraint, Covering):
        return {
            "kind": "covering",
            "entity": constraint.entity,
            "covered_by": list(constraint.covered_by),
        }
    if isinstance(constraint, NotNull):
        return {
            "kind": "not_null",
            "entity": constraint.entity,
            "attribute": constraint.attribute,
        }
    raise RepositoryError(f"unserializable constraint {constraint!r}")


def schema_from_dict(data: dict) -> Schema:
    schema = Schema(data["name"], data["metamodel"])
    schema.documentation = data.get("documentation", "")
    for entity_data in data["entities"]:
        entity = Entity(entity_data["name"], entity_data.get("abstract", False))
        entity.key = tuple(entity_data.get("key", ()))
        for attribute_data in entity_data["attributes"]:
            entity.add_attribute(
                Attribute(
                    attribute_data["name"],
                    _type_from_dict(attribute_data["type"]),
                    attribute_data.get("nullable", False),
                )
            )
        schema.add_entity(entity)
    for entity_data in data["entities"]:
        parent = entity_data.get("parent")
        if parent:
            schema.entities[entity_data["name"]].parent = schema.entity(parent)
    for association_data in data.get("associations", []):
        schema.add_association(
            Association(
                association_data["name"],
                _end_from_dict(association_data["source"], schema),
                _end_from_dict(association_data["target"], schema),
            )
        )
    for containment_data in data.get("containments", []):
        schema.add_containment(
            Containment(
                containment_data["name"],
                schema.entity(containment_data["parent"]),
                schema.entity(containment_data["child"]),
                Cardinality(*containment_data["cardinality"]),
            )
        )
    for reference_data in data.get("references", []):
        schema.add_reference(
            Reference(
                reference_data["name"],
                schema.entity(reference_data["owner"]),
                schema.entity(reference_data["target"]),
                tuple(reference_data.get("via", ())),
                Cardinality(*reference_data["cardinality"]),
            )
        )
    for constraint_data in data.get("constraints", []):
        schema.add_constraint(_constraint_from_dict(constraint_data))
    return schema


def _end_from_dict(data: dict, schema: Schema) -> AssociationEnd:
    return AssociationEnd(
        data["role"], schema.entity(data["entity"]),
        Cardinality(*data["cardinality"]),
    )


def _constraint_from_dict(data: dict):
    kind = data["kind"]
    if kind == "key":
        return KeyConstraint(
            data["entity"], tuple(data["attributes"]), data["primary"]
        )
    if kind == "inclusion":
        return InclusionDependency(
            data["source"], tuple(data["source_attributes"]),
            data["target"], tuple(data["target_attributes"]),
        )
    if kind == "disjoint":
        return Disjointness(tuple(data["entities"]))
    if kind == "covering":
        return Covering(data["entity"], tuple(data["covered_by"]))
    if kind == "not_null":
        return NotNull(data["entity"], data["attribute"])
    raise RepositoryError(f"unknown constraint kind {kind!r}")


# ----------------------------------------------------------------------
# terms / atoms / dependencies
# ----------------------------------------------------------------------
def _term_to_dict(term: Term) -> dict:
    if isinstance(term, Var):
        return {"var": term.name}
    if isinstance(term, Const):
        return {"const": term.value}
    return {
        "func": term.function,
        "args": [_term_to_dict(a) for a in term.args],
    }


def _term_from_dict(data: dict) -> Term:
    if "var" in data:
        return Var(data["var"])
    if "const" in data:
        return Const(data["const"])
    return FuncTerm(
        data["func"], tuple(_term_from_dict(a) for a in data["args"])
    )


def _atom_to_dict(atom: Atom) -> dict:
    return {
        "relation": atom.relation,
        "args": [[name, _term_to_dict(term)] for name, term in atom.args],
    }


def _atom_from_dict(data: dict) -> Atom:
    return Atom(
        data["relation"],
        tuple((name, _term_from_dict(term)) for name, term in data["args"]),
    )


def _tgd_to_dict(tgd: TGD) -> dict:
    return {
        "kind": "tgd",
        "name": tgd.name,
        "body": [_atom_to_dict(a) for a in tgd.body],
        "head": [_atom_to_dict(a) for a in tgd.head],
    }


def _egd_to_dict(egd: EGD) -> dict:
    return {
        "kind": "egd",
        "name": egd.name,
        "body": [_atom_to_dict(a) for a in egd.body],
        "equalities": [
            [_term_to_dict(e.left), _term_to_dict(e.right)]
            for e in egd.equalities
        ],
    }


# ----------------------------------------------------------------------
# algebra expressions
# ----------------------------------------------------------------------
def _scalar_to_dict(scalar: S.Scalar) -> dict:
    if isinstance(scalar, S.Col):
        return {"op": "col", "name": scalar.name}
    if isinstance(scalar, S.Lit):
        return {"op": "lit", "value": scalar.value}
    if isinstance(scalar, S._Bool):
        return {"op": "bool", "value": scalar.value}
    if isinstance(scalar, S.Comparison):
        return {
            "op": "cmp", "cmp": scalar.op,
            "left": _scalar_to_dict(scalar.left),
            "right": _scalar_to_dict(scalar.right),
        }
    if isinstance(scalar, S.And):
        return {"op": "and",
                "operands": [_scalar_to_dict(p) for p in scalar.operands]}
    if isinstance(scalar, S.Or):
        return {"op": "or",
                "operands": [_scalar_to_dict(p) for p in scalar.operands]}
    if isinstance(scalar, S.Not):
        return {"op": "not", "operand": _scalar_to_dict(scalar.operand)}
    if isinstance(scalar, S.IsNull):
        return {"op": "isnull", "operand": _scalar_to_dict(scalar.operand),
                "negated": scalar.negated}
    if isinstance(scalar, S.IsOf):
        return {"op": "isof", "entity": scalar.entity, "only": scalar.only}
    if isinstance(scalar, S.In):
        return {"op": "in", "operand": _scalar_to_dict(scalar.operand),
                "values": sorted(scalar.values, key=repr)}
    if isinstance(scalar, S.Case):
        return {
            "op": "case",
            "whens": [
                [_scalar_to_dict(p), _scalar_to_dict(v)]
                for p, v in scalar.whens
            ],
            "default": _scalar_to_dict(scalar.default),
        }
    if isinstance(scalar, E._JoinEq):
        return {"op": "joineq", "left": scalar.left_col,
                "right": scalar.right_col}
    raise RepositoryError(f"unserializable scalar {scalar!r}")


def _scalar_from_dict(data: dict) -> S.Scalar:
    op = data["op"]
    if op == "col":
        return S.Col(data["name"])
    if op == "lit":
        return S.Lit(data["value"])
    if op == "bool":
        return S.TRUE if data["value"] else S.FALSE
    if op == "cmp":
        return S.Comparison(
            data["cmp"], _scalar_from_dict(data["left"]),
            _scalar_from_dict(data["right"]),
        )
    if op == "and":
        return S.And(*(_scalar_from_dict(p) for p in data["operands"]))
    if op == "or":
        return S.Or(*(_scalar_from_dict(p) for p in data["operands"]))
    if op == "not":
        return S.Not(_scalar_from_dict(data["operand"]))
    if op == "isnull":
        return S.IsNull(_scalar_from_dict(data["operand"]), data["negated"])
    if op == "isof":
        return S.IsOf(data["entity"], data["only"])
    if op == "in":
        return S.In(_scalar_from_dict(data["operand"]), data["values"])
    if op == "case":
        return S.Case(
            [(_scalar_from_dict(p), _scalar_from_dict(v))
             for p, v in data["whens"]],
            _scalar_from_dict(data["default"]),
        )
    if op == "joineq":
        return E._JoinEq(data["left"], data["right"])
    raise RepositoryError(f"unknown scalar op {op!r}")


def _expr_to_dict(expr: E.RelExpr) -> dict:
    if isinstance(expr, E.Scan):
        return {"op": "scan", "relation": expr.relation}
    if isinstance(expr, E.EntityScan):
        return {"op": "escan", "entity": expr.entity, "only": expr.only}
    if isinstance(expr, E.Values):
        return {"op": "values", "rows": [dict(r) for r in expr.rows]}
    if isinstance(expr, E.Select):
        return {"op": "select", "input": _expr_to_dict(expr.input),
                "predicate": _scalar_to_dict(expr.predicate)}
    if isinstance(expr, E.Project):
        return {
            "op": "project", "input": _expr_to_dict(expr.input),
            "outputs": [[n, _scalar_to_dict(s)] for n, s in expr.outputs],
        }
    if isinstance(expr, E.Extend):
        return {"op": "extend", "input": _expr_to_dict(expr.input),
                "name": expr.name, "scalar": _scalar_to_dict(expr.scalar)}
    if isinstance(expr, E.Join):
        return {
            "op": "join", "kind": expr.kind,
            "left": _expr_to_dict(expr.left),
            "right": _expr_to_dict(expr.right),
            "predicate": _scalar_to_dict(expr.predicate),
            "right_prefix": expr.right_prefix,
        }
    if isinstance(expr, E.UnionAll):
        return {"op": "union", "left": _expr_to_dict(expr.left),
                "right": _expr_to_dict(expr.right)}
    if isinstance(expr, E.Difference):
        return {"op": "difference", "left": _expr_to_dict(expr.left),
                "right": _expr_to_dict(expr.right)}
    if isinstance(expr, E.Distinct):
        return {"op": "distinct", "input": _expr_to_dict(expr.input)}
    if isinstance(expr, E.Rename):
        return {"op": "rename", "input": _expr_to_dict(expr.input),
                "mapping": dict(expr.mapping)}
    if isinstance(expr, E.Sort):
        return {"op": "sort", "input": _expr_to_dict(expr.input),
                "keys": list(expr.keys)}
    if isinstance(expr, E.Aggregate):
        return {
            "op": "aggregate", "input": _expr_to_dict(expr.input),
            "group_by": list(expr.group_by),
            "aggregations": [
                [n, f, _scalar_to_dict(s) if s is not None else None]
                for n, f, s in expr.aggregations
            ],
        }
    raise RepositoryError(f"unserializable expression {expr!r}")


def _expr_from_dict(data: dict) -> E.RelExpr:
    op = data["op"]
    if op == "scan":
        return E.Scan(data["relation"])
    if op == "escan":
        return E.EntityScan(data["entity"], data["only"])
    if op == "values":
        return E.Values(data["rows"])
    if op == "select":
        return E.Select(_expr_from_dict(data["input"]),
                        _scalar_from_dict(data["predicate"]))
    if op == "project":
        return E.Project(
            _expr_from_dict(data["input"]),
            [(n, _scalar_from_dict(s)) for n, s in data["outputs"]],
        )
    if op == "extend":
        return E.Extend(_expr_from_dict(data["input"]), data["name"],
                        _scalar_from_dict(data["scalar"]))
    if op == "join":
        return E.Join(
            _expr_from_dict(data["left"]), _expr_from_dict(data["right"]),
            _scalar_from_dict(data["predicate"]), data["kind"],
            data.get("right_prefix"),
        )
    if op == "union":
        return E.UnionAll(_expr_from_dict(data["left"]),
                          _expr_from_dict(data["right"]))
    if op == "difference":
        return E.Difference(_expr_from_dict(data["left"]),
                            _expr_from_dict(data["right"]))
    if op == "distinct":
        return E.Distinct(_expr_from_dict(data["input"]))
    if op == "rename":
        return E.Rename(_expr_from_dict(data["input"]), data["mapping"])
    if op == "sort":
        return E.Sort(_expr_from_dict(data["input"]), data["keys"])
    if op == "aggregate":
        return E.Aggregate(
            _expr_from_dict(data["input"]), data["group_by"],
            [
                (n, f, _scalar_from_dict(s) if s is not None else None)
                for n, f, s in data["aggregations"]
            ],
        )
    raise RepositoryError(f"unknown expression op {op!r}")


# ----------------------------------------------------------------------
# mappings
# ----------------------------------------------------------------------
def mapping_to_dict(mapping: Mapping) -> dict:
    constraints = []
    for constraint in mapping.constraints:
        if isinstance(constraint, TGD):
            constraints.append(_tgd_to_dict(constraint))
        elif isinstance(constraint, EGD):
            constraints.append(_egd_to_dict(constraint))
        elif isinstance(constraint, EqualityConstraint):
            constraints.append(
                {
                    "kind": "equality",
                    "name": constraint.name,
                    "source": _expr_to_dict(constraint.source_expr),
                    "target": _expr_to_dict(constraint.target_expr),
                }
            )
    result = {
        "name": mapping.name,
        "source": schema_to_dict(mapping.source),
        "target": schema_to_dict(mapping.target),
        "constraints": constraints,
    }
    if mapping.so_tgd is not None:
        result["so_tgd"] = {
            "name": mapping.so_tgd.name,
            "implications": [
                {
                    "name": implication.name,
                    "body": [_atom_to_dict(a) for a in implication.body],
                    "head": [_atom_to_dict(a) for a in implication.head],
                    "conditions": [
                        [_term_to_dict(c.left), _term_to_dict(c.right)]
                        for c in implication.conditions
                    ],
                }
                for implication in mapping.so_tgd.implications
            ],
        }
    return result


def mapping_from_dict(data: dict) -> Mapping:
    source = schema_from_dict(data["source"])
    target = schema_from_dict(data["target"])
    constraints = []
    for constraint_data in data["constraints"]:
        kind = constraint_data["kind"]
        if kind == "tgd":
            constraints.append(
                TGD(
                    body=tuple(_atom_from_dict(a)
                               for a in constraint_data["body"]),
                    head=tuple(_atom_from_dict(a)
                               for a in constraint_data["head"]),
                    name=constraint_data["name"],
                )
            )
        elif kind == "egd":
            constraints.append(
                EGD(
                    body=tuple(_atom_from_dict(a)
                               for a in constraint_data["body"]),
                    equalities=tuple(
                        Equality(_term_from_dict(l), _term_from_dict(r))
                        for l, r in constraint_data["equalities"]
                    ),
                    name=constraint_data["name"],
                )
            )
        elif kind == "equality":
            constraints.append(
                EqualityConstraint(
                    source_expr=_expr_from_dict(constraint_data["source"]),
                    target_expr=_expr_from_dict(constraint_data["target"]),
                    name=constraint_data["name"],
                )
            )
        else:
            raise RepositoryError(f"unknown constraint kind {kind!r}")
    if "so_tgd" in data:
        so_data = data["so_tgd"]
        so_tgd = SecondOrderTGD(
            implications=tuple(
                Implication(
                    body=tuple(_atom_from_dict(a) for a in impl["body"]),
                    head=tuple(_atom_from_dict(a) for a in impl["head"]),
                    conditions=tuple(
                        Equality(_term_from_dict(l), _term_from_dict(r))
                        for l, r in impl["conditions"]
                    ),
                    name=impl["name"],
                )
                for impl in so_data["implications"]
            ),
            name=so_data["name"],
        )
        return Mapping(source, target, so_tgd, name=data["name"])
    return Mapping(source, target, constraints, name=data["name"])
