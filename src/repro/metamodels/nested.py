"""Nested (XML-like) metamodel support.

Three facilities:

* :func:`emit_xsd` — render a nested schema as an XSD subset
  (complexType with nested sequences), for interoperability demos;
* :func:`flatten_documents` — turn nested documents (dicts whose
  list-valued fields hold child documents) into a flat
  :class:`~repro.instances.database.Instance` following the containment
  convention ModelGen's flattening rule expects: each child row carries
  ``<parent>_<key>`` columns;
* :func:`nest_instance` — the reverse: reassemble documents from a
  flat instance plus a nested schema.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import SchemaError
from repro.instances.database import Instance, Row
from repro.metamodel.elements import Containment, Entity
from repro.metamodel.schema import Schema
from repro.metamodel.types import ParametricType, base_primitive

_XSD_TYPES = {
    "bool": "xs:boolean",
    "int": "xs:integer",
    "bigint": "xs:long",
    "decimal": "xs:decimal",
    "float": "xs:double",
    "string": "xs:string",
    "text": "xs:string",
    "date": "xs:date",
    "datetime": "xs:dateTime",
    "binary": "xs:base64Binary",
    "any": "xs:anyType",
}


def _children_of(schema: Schema, entity: Entity) -> list[Containment]:
    return [
        c for c in schema.containments.values() if c.parent.name == entity.name
    ]


def _roots(schema: Schema) -> list[Entity]:
    contained = {c.child.name for c in schema.containments.values()}
    return [e for e in schema.entities.values() if e.name not in contained]


def emit_xsd(schema: Schema) -> str:
    """Render a nested schema as an XSD subset."""
    if schema.metamodel not in ("nested", "universal"):
        raise SchemaError(
            f"emit_xsd expects a nested schema, got {schema.metamodel!r}"
        )
    lines = ['<?xml version="1.0"?>',
             '<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">']

    def emit_entity(entity: Entity, indent: int) -> None:
        pad = "  " * indent
        lines.append(f'{pad}<xs:element name="{entity.name}">')
        lines.append(f"{pad}  <xs:complexType><xs:sequence>")
        for attribute in entity.attributes:
            occurs = ' minOccurs="0"' if attribute.nullable else ""
            xsd_type = _XSD_TYPES[base_primitive(attribute.data_type).name]
            lines.append(
                f'{pad}    <xs:element name="{attribute.name}" '
                f'type="{xsd_type}"{occurs}/>'
            )
        for containment in _children_of(schema, entity):
            max_occurs = (
                "unbounded"
                if containment.cardinality.max is None
                else str(containment.cardinality.max)
            )
            lines.append(
                f'{pad}    <!-- {containment.name}: '
                f'maxOccurs="{max_occurs}" -->'
            )
            emit_entity(containment.child, indent + 2)
        lines.append(f"{pad}  </xs:sequence></xs:complexType>")
        lines.append(f"{pad}</xs:element>")

    for root in _roots(schema):
        emit_entity(root, 1)
    lines.append("</xs:schema>")
    return "\n".join(lines)


def flatten_documents(
    schema: Schema, root_entity: str, documents: Iterable[dict]
) -> Instance:
    """Flatten nested documents into relation rows.

    A document is a dict of the entity's attributes, plus one key per
    containment (the containment name or the child entity name) holding
    a list of child documents.  Child rows gain ``<parent>_<key>``
    columns so the flat form is joinable — exactly what ModelGen's
    containment-elimination rule emits.
    """
    instance = Instance(schema)
    root = schema.entity(root_entity)

    def visit(entity: Entity, document: dict, parent_link: Row) -> None:
        attributes = set(entity.all_attribute_names())
        row: Row = dict(parent_link)
        child_fields: dict[str, list] = {}
        for key, value in document.items():
            if key in attributes:
                row[key] = value
            elif isinstance(value, list):
                child_fields[key] = value
            else:
                raise SchemaError(
                    f"field {key!r} is neither an attribute of "
                    f"{entity.name!r} nor a child list"
                )
        instance.insert(entity.name, row)
        containments = _children_of(schema, entity)
        for field_name, children in child_fields.items():
            containment = next(
                (
                    c
                    for c in containments
                    if c.name == field_name or c.child.name == field_name
                ),
                None,
            )
            if containment is None:
                raise SchemaError(
                    f"no containment of {entity.name!r} matches field "
                    f"{field_name!r}"
                )
            key = entity.root().key
            if not key:
                raise SchemaError(
                    f"entity {entity.name!r} needs a key to flatten children"
                )
            link = {
                f"{entity.name}_{k}": row.get(k) for k in key
            }
            for child_document in children:
                visit(containment.child, child_document, link)

    for document in documents:
        visit(root, document, {})
    return instance


def nest_instance(
    schema: Schema, root_entity: str, instance: Instance
) -> list[dict]:
    """Reassemble documents from a flat instance (inverse of
    :func:`flatten_documents`)."""
    root = schema.entity(root_entity)

    def assemble(entity: Entity, row: Row) -> dict:
        document = {
            k: v
            for k, v in row.items()
            if k in set(entity.all_attribute_names())
        }
        key = entity.root().key
        for containment in _children_of(schema, entity):
            children = []
            link_columns = {f"{entity.name}_{k}": row.get(k) for k in key}
            for child_row in instance.rows(containment.child.name):
                if all(
                    child_row.get(col) == val
                    for col, val in link_columns.items()
                ):
                    children.append(assemble(containment.child, child_row))
            document[containment.name] = children
        return document

    return [assemble(root, row) for row in instance.rows(root_entity)]
