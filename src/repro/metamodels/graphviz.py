"""Graphviz DOT export for schemas and correspondence sets.

The paper's §3.1.1 bets that "the biggest productivity gains will come
from better user interfaces"; while this library has no GUI, it renders
the two pictures a mapping designer stares at — the schema graph and
the correspondence bipartite graph (the Figure 4 picture) — as DOT text
for any graphviz viewer.
"""

from __future__ import annotations

from repro.mappings.correspondence import CorrespondenceSet
from repro.metamodel.schema import Schema


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def _entity_label(schema: Schema, entity_name: str) -> str:
    entity = schema.entity(entity_name)
    rows = [f"<b>{entity.name}</b>"]
    for attribute in entity.attributes:
        marker = "• " if attribute.name in entity.key else "  "
        rows.append(f"{marker}{attribute.name}: {attribute.data_type}")
    inner = "<br align='left'/>".join(rows)
    return f"<{inner}<br align='left'/>>"


def schema_to_dot(schema: Schema) -> str:
    """One schema as a DOT digraph: record-ish entity nodes, is-a
    edges (hollow arrows), FK/association/containment/reference edges."""
    lines = [
        f"digraph {_quote(schema.name)} {{",
        "  rankdir=LR;",
        "  node [shape=box, fontname=Helvetica, fontsize=10];",
    ]
    for entity in schema.entities.values():
        lines.append(
            f"  {_quote(entity.name)} "
            f"[label={_entity_label(schema, entity.name)}];"
        )
    for entity in schema.entities.values():
        if entity.parent is not None:
            lines.append(
                f"  {_quote(entity.name)} -> {_quote(entity.parent.name)} "
                "[arrowhead=onormal, label=\"is-a\"];"
            )
    for dep in schema.inclusion_dependencies():
        label = ",".join(dep.source_attributes)
        lines.append(
            f"  {_quote(dep.source)} -> {_quote(dep.target)} "
            f"[style=dashed, label={_quote(label)}];"
        )
    for association in schema.associations.values():
        lines.append(
            f"  {_quote(association.source.entity.name)} -> "
            f"{_quote(association.target.entity.name)} "
            f"[dir=none, label={_quote(association.name)}];"
        )
    for containment in schema.containments.values():
        lines.append(
            f"  {_quote(containment.parent.name)} -> "
            f"{_quote(containment.child.name)} "
            f"[arrowtail=diamond, dir=back, "
            f"label={_quote(containment.name)}];"
        )
    for reference in schema.references.values():
        lines.append(
            f"  {_quote(reference.owner.name)} -> "
            f"{_quote(reference.target.name)} "
            f"[style=dotted, label={_quote(reference.name)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def correspondences_to_dot(correspondences: CorrespondenceSet) -> str:
    """The Figure 4 picture: two schema columns with weighted arrows."""
    source, target = correspondences.source, correspondences.target
    lines = [
        "digraph correspondences {",
        "  rankdir=LR;",
        "  node [shape=plaintext, fontname=Helvetica, fontsize=10];",
        f"  subgraph cluster_source {{ label={_quote(source.name)};",
    ]
    for path in (str(p.path) for p in source.all_element_paths()):
        lines.append(f"    {_quote('S:' + path)} [label={_quote(path)}];")
    lines.append("  }")
    lines.append(
        f"  subgraph cluster_target {{ label={_quote(target.name)};"
    )
    for path in (str(p.path) for p in target.all_element_paths()):
        lines.append(f"    {_quote('T:' + path)} [label={_quote(path)}];")
    lines.append("  }")
    for correspondence in correspondences:
        weight = correspondence.confidence
        style = "bold" if weight >= 0.99 else "solid" if weight >= 0.5 else "dashed"
        lines.append(
            f"  {_quote('S:' + correspondence.source.path)} -> "
            f"{_quote('T:' + correspondence.target.path)} "
            f"[style={style}, label=\"{weight:.2f}\"];"
        )
    lines.append("}")
    return "\n".join(lines)
