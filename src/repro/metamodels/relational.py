"""SQL DDL: emit a relational schema as ``CREATE TABLE`` statements and
parse such statements back into the universal metamodel.

The dialect is deliberately the portable core: column types from the
universal type system, ``PRIMARY KEY``, ``UNIQUE``, ``NOT NULL`` and
table-level ``FOREIGN KEY`` clauses.
"""

from __future__ import annotations

import re

from repro.errors import SchemaError
from repro.metamodel.constraints import InclusionDependency, KeyConstraint
from repro.metamodel.elements import Attribute, Entity
from repro.metamodel.schema import Schema
from repro.metamodel.types import (
    BIGINT,
    BINARY,
    BOOL,
    DATE,
    DATETIME,
    DECIMAL,
    FLOAT,
    INT,
    ParametricType,
    STRING,
    TEXT,
    DataType,
    decimal_type,
    varchar,
)

_TYPE_TO_SQL = {
    "bool": "BOOLEAN",
    "int": "INTEGER",
    "bigint": "BIGINT",
    "decimal": "DECIMAL",
    "float": "DOUBLE PRECISION",
    "string": "VARCHAR",
    "text": "TEXT",
    "date": "DATE",
    "datetime": "TIMESTAMP",
    "binary": "BLOB",
    "any": "TEXT",
}

_SQL_TO_TYPE = {
    "boolean": BOOL,
    "bool": BOOL,
    "integer": INT,
    "int": INT,
    "smallint": INT,
    "bigint": BIGINT,
    "decimal": DECIMAL,
    "numeric": DECIMAL,
    "real": FLOAT,
    "float": FLOAT,
    "double": FLOAT,
    "varchar": STRING,
    "char": STRING,
    "string": STRING,
    "text": TEXT,
    "clob": TEXT,
    "date": DATE,
    "timestamp": DATETIME,
    "datetime": DATETIME,
    "blob": BINARY,
    "binary": BINARY,
}


def _sql_type(data_type: DataType) -> str:
    if isinstance(data_type, ParametricType):
        params = ", ".join(str(p) for p in data_type.params)
        return f"{_TYPE_TO_SQL[data_type.base]}({params})"
    return _TYPE_TO_SQL[data_type.name]


def emit_ddl(schema: Schema) -> str:
    """Render a relational schema as SQL DDL text."""
    if schema.metamodel not in ("relational", "universal"):
        raise SchemaError(
            f"emit_ddl expects a relational schema, got {schema.metamodel!r} "
            "(run ModelGen first)"
        )
    statements = []
    for entity in schema.entities.values():
        lines = []
        for attribute in entity.attributes:
            null = "" if attribute.nullable else " NOT NULL"
            lines.append(f"  {attribute.name} {_sql_type(attribute.data_type)}{null}")
        if entity.key:
            lines.append(f"  PRIMARY KEY ({', '.join(entity.key)})")
        for constraint in schema.constraints:
            if (
                isinstance(constraint, KeyConstraint)
                and constraint.entity == entity.name
                and not constraint.is_primary
            ):
                lines.append(
                    f"  UNIQUE ({', '.join(constraint.attributes)})"
                )
            if (
                isinstance(constraint, InclusionDependency)
                and constraint.source == entity.name
            ):
                lines.append(
                    f"  FOREIGN KEY ({', '.join(constraint.source_attributes)}) "
                    f"REFERENCES {constraint.target} "
                    f"({', '.join(constraint.target_attributes)})"
                )
        statements.append(
            f"CREATE TABLE {entity.name} (\n" + ",\n".join(lines) + "\n);"
        )
    return "\n\n".join(statements)


_CREATE = re.compile(
    r"CREATE\s+TABLE\s+(?P<name>[A-Za-z_][\w.]*)\s*\((?P<body>.*?)\)\s*;",
    re.IGNORECASE | re.DOTALL,
)
_COLUMN = re.compile(
    r"^(?P<name>[A-Za-z_]\w*)\s+(?P<type>[A-Za-z ]+?)"
    r"(\s*\(\s*(?P<params>[\d,\s]+)\))?"
    r"(?P<rest>(\s+NOT\s+NULL|\s+NULL|\s+PRIMARY\s+KEY)*)\s*$",
    re.IGNORECASE,
)
_PK = re.compile(r"^PRIMARY\s+KEY\s*\((?P<cols>[^)]*)\)$", re.IGNORECASE)
_UNIQUE = re.compile(r"^UNIQUE\s*\((?P<cols>[^)]*)\)$", re.IGNORECASE)
_FK = re.compile(
    r"^FOREIGN\s+KEY\s*\((?P<cols>[^)]*)\)\s*REFERENCES\s+"
    r"(?P<target>[A-Za-z_][\w.]*)\s*\((?P<tcols>[^)]*)\)$",
    re.IGNORECASE,
)


def _split_clauses(body: str) -> list[str]:
    """Split a CREATE TABLE body on top-level commas."""
    clauses, depth, current = [], 0, []
    for ch in body:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            clauses.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    final = "".join(current).strip()
    if final:
        clauses.append(final)
    return clauses


def _parse_type(name: str, params: str | None) -> DataType:
    base = name.strip().lower().split()[0]
    if base not in _SQL_TO_TYPE:
        raise SchemaError(f"unknown SQL type {name!r}")
    resolved = _SQL_TO_TYPE[base]
    if params:
        numbers = [int(p) for p in params.replace(" ", "").split(",") if p]
        if resolved is STRING and numbers:
            return varchar(numbers[0])
        if resolved is DECIMAL and numbers:
            return decimal_type(*numbers[:2])
    return resolved


def parse_ddl(ddl: str, schema_name: str = "parsed") -> Schema:
    """Parse ``CREATE TABLE`` statements into a relational schema."""
    schema = Schema(schema_name, metamodel="relational")
    found_any = False
    for match in _CREATE.finditer(ddl):
        found_any = True
        entity = Entity(match.group("name"))
        pk: tuple[str, ...] = ()
        uniques: list[tuple[str, ...]] = []
        fks: list[InclusionDependency] = []
        for clause in _split_clauses(match.group("body")):
            pk_match = _PK.match(clause)
            if pk_match:
                pk = tuple(
                    c.strip() for c in pk_match.group("cols").split(",")
                )
                continue
            unique_match = _UNIQUE.match(clause)
            if unique_match:
                uniques.append(
                    tuple(c.strip() for c in unique_match.group("cols").split(","))
                )
                continue
            fk_match = _FK.match(clause)
            if fk_match:
                fks.append(
                    InclusionDependency(
                        entity.name,
                        tuple(c.strip() for c in fk_match.group("cols").split(",")),
                        fk_match.group("target"),
                        tuple(c.strip() for c in fk_match.group("tcols").split(",")),
                    )
                )
                continue
            column_match = _COLUMN.match(clause)
            if column_match is None:
                raise SchemaError(f"cannot parse DDL clause: {clause!r}")
            rest = (column_match.group("rest") or "").upper()
            nullable = "NOT NULL" not in rest
            attribute = Attribute(
                column_match.group("name"),
                _parse_type(column_match.group("type"),
                            column_match.group("params")),
                nullable=nullable,
            )
            entity.add_attribute(attribute)
            if "PRIMARY KEY" in rest:
                pk = (attribute.name,)
        if pk:
            entity.key = pk
            for key_attr in pk:
                entity.attribute(key_attr).nullable = False
        schema.add_entity(entity)
        if pk:
            schema.add_constraint(KeyConstraint(entity.name, pk))
        for unique in uniques:
            schema.add_constraint(
                KeyConstraint(entity.name, unique, is_primary=False)
            )
        for fk in fks:
            schema.add_constraint(fk)
    if not found_any:
        raise SchemaError("no CREATE TABLE statements found")
    return schema
