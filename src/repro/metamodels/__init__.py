"""Concrete metamodels: importers and exporters for the universal
metamodel.

Section 2 of the paper: "an MMS must support schemas expressed in all
popular metamodels.  Today, that means SQL, XML Schema (XSD),
Entity-Relationship (ER), and object-oriented (OO) metamodels."

* :mod:`~repro.metamodels.relational` — SQL DDL emission and parsing;
* :mod:`~repro.metamodels.nested` — XSD-subset emission, nested
  document ↔ flat instance conversion (the containment convention
  ModelGen relies on);
* :mod:`~repro.metamodels.objects` — OO class-source generation (the
  wrapper generator's substrate) and import from annotated classes;
* :mod:`~repro.metamodels.serialization` — lossless JSON round-trip of
  any universal-metamodel schema and of mappings (the metadata
  repository's storage format).
"""

from repro.metamodels.relational import emit_ddl, parse_ddl
from repro.metamodels.nested import (
    emit_xsd,
    flatten_documents,
    nest_instance,
)
from repro.metamodels.objects import emit_classes, schema_from_classes
from repro.metamodels.serialization import (
    schema_to_dict,
    schema_from_dict,
    mapping_to_dict,
    mapping_from_dict,
)
from repro.metamodels.graphviz import correspondences_to_dot, schema_to_dot

__all__ = [
    "emit_ddl",
    "parse_ddl",
    "emit_xsd",
    "flatten_documents",
    "nest_instance",
    "emit_classes",
    "schema_from_classes",
    "schema_to_dict",
    "schema_from_dict",
    "mapping_to_dict",
    "mapping_from_dict",
    "correspondences_to_dot",
    "schema_to_dot",
]
