"""The paper's figure schemas, constraints and sample instances.

Everything here is transcribed from the figures of Bernstein & Melnik
(SIGMOD 2007):

* **Figure 2** — mapping constraints between an ER is-a hierarchy
  (Person ⊇ Employee, Customer) and relational tables HR, Empl,
  Client, expressed as equalities of queries;
* **Figure 3** — the query implied by those constraints that populates
  the Persons entity set (TransGen's expected output shape);
* **Figure 4** — the Empl/Addr ↔ Staff snowflake whose correspondences
  have an unambiguous interpretation as projection-join equalities;
* **Figure 6** — the Students-view evolution scenario used to motivate
  composition.
"""

from __future__ import annotations

from repro.algebra import (
    Col,
    Distinct,
    EntityScan,
    Extend,
    IsOf,
    Lit,
    Or,
    Project,
    Scan,
    Select,
    UnionAll,
    eq,
    ne,
    project_names,
)
from repro.instances.database import Instance
from repro.logic.parser import parse_tgd
from repro.mappings.correspondence import CorrespondenceSet
from repro.mappings.mapping import EqualityConstraint, Mapping
from repro.metamodel import INT, STRING, DATE, SchemaBuilder, Schema


# ----------------------------------------------------------------------
# Figure 2: ER hierarchy ↔ relational tables
# ----------------------------------------------------------------------
def figure2_er_schema() -> Schema:
    """The ER side: Person with Employee and Customer specializations."""
    return (
        SchemaBuilder("PersonsER", metamodel="er")
        .entity("Person", key=["Id"])
        .attribute("Id", INT)
        .attribute("Name", STRING)
        .entity("Employee", parent="Person")
        .attribute("Dept", STRING)
        .entity("Customer", parent="Person")
        .attribute("CreditScore", INT)
        .attribute("BillingAddr", STRING)
        .disjoint("Employee", "Customer")
        .build()
    )


def figure2_sql_schema() -> Schema:
    """The relational side: dbo.HR, dbo.Empl, dbo.Client."""
    return (
        SchemaBuilder("dbo", metamodel="relational")
        .entity("HR", key=["Id"])
        .attribute("Id", INT)
        .attribute("Name", STRING)
        .entity("Empl", key=["Id"])
        .attribute("Id", INT)
        .attribute("Dept", STRING)
        .entity("Client", key=["Id"])
        .attribute("Id", INT)
        .attribute("Name", STRING)
        .attribute("Score", INT)
        .attribute("Addr", STRING)
        .foreign_key("Empl", ["Id"], "HR", ["Id"])
        .build()
    )


def figure2_mapping() -> Mapping:
    """The three equality constraints of Figure 2, verbatim.

    1. ``SELECT Id, Name FROM dbo.HR`` =
       ``SELECT p.Id, p.Name FROM Persons p
         WHERE p IS OF (ONLY Person) OR p IS OF (ONLY Employee)``
    2. ``SELECT Id, Dept FROM dbo.Empl`` =
       ``SELECT e.Id, e.Dept FROM Persons e WHERE e IS OF Employee``
    3. ``SELECT Id, Name, Score, Addr FROM dbo.Client`` =
       ``SELECT c.Id, c.Name, c.CreditScore, c.BillingAddr
         FROM Persons c WHERE c IS OF Customer``
    """
    sql = figure2_sql_schema()
    er = figure2_er_schema()
    c1 = EqualityConstraint(
        source_expr=project_names(Scan("HR"), ["Id", "Name"]),
        target_expr=Project(
            Select(
                EntityScan("Person"),
                Or(IsOf("Person", only=True), IsOf("Employee", only=True)),
            ),
            [("Id", Col("Id")), ("Name", Col("Name"))],
        ),
        name="HR=Person∪Employee",
    )
    c2 = EqualityConstraint(
        source_expr=project_names(Scan("Empl"), ["Id", "Dept"]),
        target_expr=Project(
            Select(EntityScan("Person"), IsOf("Employee")),
            [("Id", Col("Id")), ("Dept", Col("Dept"))],
        ),
        name="Empl=Employee",
    )
    c3 = EqualityConstraint(
        source_expr=project_names(Scan("Client"), ["Id", "Name", "Score", "Addr"]),
        target_expr=Project(
            Select(EntityScan("Person"), IsOf("Customer")),
            [
                ("Id", Col("Id")),
                ("Name", Col("Name")),
                ("Score", Col("CreditScore")),
                ("Addr", Col("BillingAddr")),
            ],
        ),
        name="Client=Customer",
    )
    return Mapping(sql, er, [c1, c2, c3], name="figure2")


def figure2_sql_instance() -> Instance:
    """Sample relational data consistent with the Figure 2 constraints."""
    db = Instance(figure2_sql_schema())
    db.insert_all(
        "HR",
        [
            {"Id": 1, "Name": "Ann"},     # plain person
            {"Id": 2, "Name": "Bob"},     # employee (also in Empl)
            {"Id": 3, "Name": "Carol"},   # employee
        ],
    )
    db.insert_all(
        "Empl",
        [
            {"Id": 2, "Dept": "Sales"},
            {"Id": 3, "Dept": "Engineering"},
        ],
    )
    db.insert_all(
        "Client",
        [
            {"Id": 4, "Name": "Dave", "Score": 710, "Addr": "12 Elm St"},
            {"Id": 5, "Name": "Eve", "Score": 640, "Addr": "9 Oak Ave"},
        ],
    )
    return db


def figure2_er_instance() -> Instance:
    """The entity-set contents the Figure 3 query should produce from
    :func:`figure2_sql_instance`."""
    db = Instance(figure2_er_schema())
    db.insert_object("Person", Id=1, Name="Ann")
    db.insert_object("Employee", Id=2, Name="Bob", Dept="Sales")
    db.insert_object("Employee", Id=3, Name="Carol", Dept="Engineering")
    db.insert_object(
        "Customer", Id=4, Name="Dave", CreditScore=710, BillingAddr="12 Elm St"
    )
    db.insert_object(
        "Customer", Id=5, Name="Eve", CreditScore=640, BillingAddr="9 Oak Ave"
    )
    return db


# ----------------------------------------------------------------------
# Figure 4: snowflake correspondences
# ----------------------------------------------------------------------
def figure4_source_schema() -> Schema:
    """Empl(EID, Name, Tel, AID) ⋈ Addr(AID, City, Zip)."""
    return (
        SchemaBuilder("EmplDB", metamodel="relational")
        .entity("Empl", key=["EID"])
        .attribute("EID", INT)
        .attribute("Name", STRING)
        .attribute("Tel", STRING)
        .attribute("AID", INT)
        .entity("Addr", key=["AID"])
        .attribute("AID", INT)
        .attribute("City", STRING)
        .attribute("Zip", STRING)
        .foreign_key("Empl", ["AID"], "Addr", ["AID"])
        .build()
    )


def figure4_target_schema() -> Schema:
    """Staff(SID, Name, BirthDate, City)."""
    return (
        SchemaBuilder("StaffDB", metamodel="relational")
        .entity("Staff", key=["SID"])
        .attribute("SID", INT)
        .attribute("Name", STRING)
        .attribute("BirthDate", DATE, nullable=True)
        .attribute("City", STRING)
        .build()
    )


def figure4_correspondences() -> CorrespondenceSet:
    """The arrows of Figure 4: Empl≈Staff (roots), EID≈SID, Name≈Name,
    Addr.City≈Staff.City."""
    correspondences = CorrespondenceSet(
        figure4_source_schema(), figure4_target_schema()
    )
    correspondences.add_pair("Empl", "Staff")
    correspondences.add_pair("Empl.EID", "Staff.SID")
    correspondences.add_pair("Empl.Name", "Staff.Name")
    correspondences.add_pair("Addr.City", "Staff.City")
    return correspondences


def figure4_source_instance() -> Instance:
    db = Instance(figure4_source_schema())
    db.insert_all(
        "Addr",
        [
            {"AID": 10, "City": "Rome", "Zip": "00100"},
            {"AID": 20, "City": "Oslo", "Zip": "0150"},
        ],
    )
    db.insert_all(
        "Empl",
        [
            {"EID": 1, "Name": "Ann", "Tel": "555-1", "AID": 10},
            {"EID": 2, "Name": "Bob", "Tel": "555-2", "AID": 20},
        ],
    )
    return db


# ----------------------------------------------------------------------
# Figure 6: schema evolution via composition
# ----------------------------------------------------------------------
def figure6_view_schema() -> Schema:
    """V: the Students view."""
    return (
        SchemaBuilder("V", metamodel="relational")
        .entity("Students", key=["Name"])
        .attribute("Name", STRING)
        .attribute("Address", STRING)
        .attribute("Country", STRING)
        .build()
    )


def figure6_s_schema() -> Schema:
    """S: Names(SID, Name) and Addresses(SID, Address, Country)."""
    return (
        SchemaBuilder("S", metamodel="relational")
        .entity("Names", key=["SID"])
        .attribute("SID", INT)
        .attribute("Name", STRING)
        .entity("Addresses", key=["SID"])
        .attribute("SID", INT)
        .attribute("Address", STRING)
        .attribute("Country", STRING)
        .foreign_key("Addresses", ["SID"], "Names", ["SID"])
        .build()
    )


def figure6_s_prime_schema() -> Schema:
    """S′: Addresses split into Local (US) and Foreign."""
    return (
        SchemaBuilder("Sprime", metamodel="relational")
        .entity("NamesP", key=["SID"])
        .attribute("SID", INT)
        .attribute("Name", STRING)
        .entity("Local", key=["SID"])
        .attribute("SID", INT)
        .attribute("Address", STRING)
        .entity("Foreign", key=["SID"])
        .attribute("SID", INT)
        .attribute("Address", STRING)
        .attribute("Country", STRING)
        .foreign_key("Local", ["SID"], "NamesP", ["SID"])
        .foreign_key("Foreign", ["SID"], "NamesP", ["SID"])
        .build()
    )


def figure6_map_v_s() -> Mapping:
    """mapV-S: Students = π[Name, Address, Country](Names ⋈ Addresses)."""
    from repro.algebra import eq_join

    view_expr = Distinct(
        project_names(
            eq_join(Scan("Names"), Scan("Addresses"), [("SID", "SID")]),
            ["Name", "Address", "Country"],
        )
    )
    constraint = EqualityConstraint(
        source_expr=Distinct(project_names(Scan("Students"),
                                           ["Name", "Address", "Country"])),
        target_expr=view_expr,
        name="Students-def",
    )
    return Mapping(figure6_view_schema(), figure6_s_schema(), [constraint],
                   name="mapV-S")


def figure6_map_s_sprime() -> Mapping:
    """mapS-S′ exactly as printed in Figure 6::

        Names = Names′
        σ[Country='US'](Addresses) = Local × {'US'}
        σ[Country≠'US'](Addresses) = Foreign
    """
    names_constraint = EqualityConstraint(
        source_expr=project_names(Scan("Names"), ["SID", "Name"]),
        target_expr=project_names(Scan("NamesP"), ["SID", "Name"]),
        name="Names=Names′",
    )
    local_constraint = EqualityConstraint(
        source_expr=project_names(
            Select(Scan("Addresses"), eq(Col("Country"), "US")),
            ["SID", "Address", "Country"],
        ),
        target_expr=project_names(
            Extend(Scan("Local"), "Country", Lit("US")),
            ["SID", "Address", "Country"],
        ),
        name="Local",
    )
    foreign_constraint = EqualityConstraint(
        source_expr=project_names(
            Select(Scan("Addresses"), ne(Col("Country"), "US")),
            ["SID", "Address", "Country"],
        ),
        target_expr=project_names(Scan("Foreign"),
                                  ["SID", "Address", "Country"]),
        name="Foreign",
    )
    return Mapping(
        figure6_s_schema(),
        figure6_s_prime_schema(),
        [names_constraint, local_constraint, foreign_constraint],
        name="mapS-Sprime",
    )


def figure6_s_instance() -> Instance:
    db = Instance(figure6_s_schema())
    db.insert_all(
        "Names",
        [
            {"SID": 1, "Name": "Ann"},
            {"SID": 2, "Name": "Bob"},
            {"SID": 3, "Name": "Chen"},
        ],
    )
    db.insert_all(
        "Addresses",
        [
            {"SID": 1, "Address": "12 Elm St", "Country": "US"},
            {"SID": 2, "Address": "9 Oak Ave", "Country": "US"},
            {"SID": 3, "Address": "5 Rue Neuve", "Country": "FR"},
        ],
    )
    return db


def figure6_s_prime_instance() -> Instance:
    """The migration of :func:`figure6_s_instance` to S′."""
    db = Instance(figure6_s_prime_schema())
    db.insert_all(
        "NamesP",
        [
            {"SID": 1, "Name": "Ann"},
            {"SID": 2, "Name": "Bob"},
            {"SID": 3, "Name": "Chen"},
        ],
    )
    db.insert_all(
        "Local",
        [
            {"SID": 1, "Address": "12 Elm St"},
            {"SID": 2, "Address": "9 Oak Ave"},
        ],
    )
    db.insert_all(
        "Foreign",
        [{"SID": 3, "Address": "5 Rue Neuve", "Country": "FR"}],
    )
    return db


def figure6_composed_view_expr():
    """The composed mapping the paper states:

    ``Students = π[Name, Address, Country](Names′ ⋈ (Local×{'US'} ∪ Foreign))``
    """
    from repro.algebra import eq_join

    addresses = UnionAll(
        Extend(Scan("Local"), "Country", Lit("US")),
        Scan("Foreign"),
    )
    return Distinct(
        project_names(
            eq_join(Scan("NamesP"), addresses, [("SID", "SID")]),
            ["Name", "Address", "Country"],
        )
    )
