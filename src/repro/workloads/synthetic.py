"""Parametric synthetic workloads for the scaling experiments.

The paper has no benchmark suite of its own; these generators produce
the structures its claims are about, with knobs the benchmarks sweep:

* :func:`snowflake_schema` — FK trees like Figure 4's, any depth/fanout;
* :func:`perturbed_copy` — a renamed/shuffled copy of a schema plus the
  ground-truth correspondences, for matcher precision/recall (E1);
* :func:`inheritance_schema` — is-a hierarchies of any depth/width for
  the ModelGen/TransGen roundtripping experiments (E4);
* :func:`composition_chain` — k-step st-tgd mapping chains, in a
  *linear* family (copy mappings) and an *exponential* family (the
  Fagin-style alternatives construction) for the composition blow-up
  experiment (E2);
* :func:`exchange_tgds` — st-tgd sets with tunable existential density
  for the chase experiments (E3).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.logic.dependencies import TGD
from repro.logic.formulas import Atom
from repro.logic.terms import Var
from repro.mappings.mapping import Mapping
from repro.metamodel import INT, STRING, FLOAT, DATE, SchemaBuilder, Schema

_TYPES = (INT, STRING, FLOAT, DATE)

_NAME_POOL = (
    "customer order line item product price quantity address city country "
    "phone email status created updated amount total region segment "
    "category vendor invoice payment shipment warehouse stock employee "
    "manager department salary grade title birth hire code note"
).split()

_SYNONYMS = {
    "customer": "client", "order": "purchase", "item": "article",
    "product": "goods", "price": "cost", "quantity": "qty",
    "address": "addr", "phone": "telephone", "email": "mail",
    "amount": "value", "total": "sum_value", "employee": "staff",
    "manager": "supervisor", "department": "dept", "salary": "pay",
    "city": "town", "country": "nation", "vendor": "supplier",
    "status": "state", "created": "created_at", "updated": "modified",
}


def snowflake_schema(
    name: str,
    depth: int = 2,
    branching: int = 2,
    attributes_per_entity: int = 3,
    seed: int = 0,
) -> Schema:
    """A root entity with a tree of FK-linked dimension entities."""
    rng = random.Random(seed)
    builder = SchemaBuilder(name, metamodel="relational")
    foreign_keys: list[tuple[str, str]] = []

    def make_entity(entity_name: str, level: int) -> None:
        key = f"{entity_name}_id"
        builder.entity(entity_name, key=[key]).attribute(key, INT)
        for _ in range(attributes_per_entity):
            attr = rng.choice(_NAME_POOL)
            suffix = 0
            candidate = attr
            while True:
                try:
                    builder.attribute(candidate, rng.choice(_TYPES))
                    break
                except Exception:
                    suffix += 1
                    candidate = f"{attr}_{suffix}"
        children: list[str] = []
        if level < depth:
            # Declare all of this entity's FK columns before recursing —
            # the builder's "current entity" moves with each recursion.
            for branch in range(branching):
                child = f"{entity_name}_d{branch}"
                builder.attribute(f"{child}_ref", INT)
                foreign_keys.append((entity_name, child))
                children.append(child)
        for child in children:
            make_entity(child, level + 1)

    make_entity("fact", 0)
    for parent, child in foreign_keys:
        builder.foreign_key(parent, [f"{child}_ref"], child, [f"{child}_id"])
    return builder.build()


def perturbed_copy(
    schema: Schema,
    rename_probability: float = 0.5,
    drop_probability: float = 0.0,
    seed: int = 0,
    name: Optional[str] = None,
    distinct_entity_names: bool = False,
) -> tuple[Schema, set[tuple[str, str]]]:
    """A structurally identical schema with renamed elements.

    Renames use domain synonyms, abbreviation (vowel dropping) or
    suffixing — the noise a matcher actually faces.  Returns the copy
    and the ground-truth ``(source_path, target_path)`` pairs (dropped
    attributes are absent from the truth set).

    ``distinct_entity_names=True`` forces every entity to be renamed —
    required when the copy will be the *target of a data exchange*,
    since exchange semantics (like all of data-exchange theory) assume
    the source and target signatures are disjoint.
    """
    rng = random.Random(seed)
    builder = SchemaBuilder(name or f"{schema.name}_copy", schema.metamodel)
    truth: set[tuple[str, str]] = set()

    def perturb(identifier: str) -> str:
        if rng.random() >= rename_probability:
            return identifier
        style = rng.randrange(3)
        if style == 0 and identifier.lower() in _SYNONYMS:
            return _SYNONYMS[identifier.lower()]
        if style <= 1 and len(identifier) > 4:
            stripped = identifier[0] + "".join(
                ch for ch in identifier[1:] if ch.lower() not in "aeiou"
            )
            if stripped != identifier and len(stripped) >= 2:
                return stripped
        return f"{identifier}_{rng.randrange(10)}"

    entity_renames: dict[str, str] = {}
    attribute_renames: dict[str, dict[str, str]] = {}
    for entity in schema.entities.values():
        new_entity = perturb(entity.name)
        if distinct_entity_names and new_entity == entity.name:
            new_entity = f"{entity.name}_v2"
        while new_entity in entity_renames.values() or (
            distinct_entity_names and new_entity in schema.entities
        ):
            new_entity += "x"
        entity_renames[entity.name] = new_entity
        truth.add((entity.name, new_entity))
        attr_names: dict[str, str] = {}
        kept_key = []
        for attribute in entity.attributes:
            if (
                attribute.name not in entity.key
                and rng.random() < drop_probability
            ):
                continue
            new_attr = perturb(attribute.name)
            while new_attr in attr_names.values():
                new_attr += "x"
            attr_names[attribute.name] = new_attr
            if attribute.name in entity.key:
                kept_key.append(new_attr)
            truth.add(
                (f"{entity.name}.{attribute.name}", f"{new_entity}.{new_attr}")
            )
        attribute_renames[entity.name] = attr_names
        builder.entity(new_entity, key=kept_key)
        for attribute in entity.attributes:
            if attribute.name in attr_names:
                builder.attribute(
                    attr_names[attribute.name],
                    attribute.data_type,
                    attribute.nullable,
                )
    # Carry foreign keys over through the rename maps; an FK survives
    # only if all of its columns survived the attribute drops.
    for dep in schema.inclusion_dependencies():
        if dep.source not in entity_renames or dep.target not in entity_renames:
            continue
        source_columns = [
            attribute_renames[dep.source].get(c)
            for c in dep.source_attributes
        ]
        target_columns = [
            attribute_renames[dep.target].get(c)
            for c in dep.target_attributes
        ]
        if None in source_columns or None in target_columns:
            continue
        builder.foreign_key(
            entity_renames[dep.source], source_columns,
            entity_renames[dep.target], target_columns,
        )
    copy = builder.build()
    return copy, truth


def inheritance_schema(
    name: str,
    depth: int = 2,
    branching: int = 2,
    attributes_per_entity: int = 2,
) -> Schema:
    """An is-a hierarchy (Figure 2 shape, scaled): a keyed root with
    ``branching``-ary subtrees of ``depth`` levels, each entity adding
    its own attributes."""
    builder = SchemaBuilder(name, metamodel="er")
    builder.entity("Root", key=["Id"]).attribute("Id", INT)
    for index in range(attributes_per_entity):
        builder.attribute(f"root_a{index}", STRING)

    def grow(parent: str, level: int) -> None:
        if level > depth:
            return
        for branch in range(branching):
            child = f"{parent}_c{branch}"
            builder.entity(child, parent=parent)
            for index in range(attributes_per_entity):
                builder.attribute(f"{child}_a{index}", STRING, nullable=False)
            grow(child, level + 1)

    grow("Root", 1)
    return builder.build()


def flat_schema(name: str, relations: int, attributes: int = 3) -> Schema:
    """``relations`` unrelated tables R0..Rn with integer attributes."""
    builder = SchemaBuilder(name, metamodel="relational")
    for r in range(relations):
        builder.entity(f"R{r}", key=[f"R{r}_k"]).attribute(f"R{r}_k", INT)
        for a in range(attributes - 1):
            builder.attribute(f"R{r}_a{a}", INT)
    return builder.build()


# ----------------------------------------------------------------------
# composition chains (E2)
# ----------------------------------------------------------------------
def _copy_tgd(src: str, dst: str, attributes: int) -> TGD:
    variables = [Var(f"x{i}") for i in range(attributes)]
    body = Atom(src, tuple((f"{src}_k" if i == 0 else f"{src}_a{i-1}", v)
                           for i, v in enumerate(variables)))
    head = Atom(dst, tuple((f"{dst}_k" if i == 0 else f"{dst}_a{i-1}", v)
                           for i, v in enumerate(variables)))
    return TGD(body=(body,), head=(head,), name=f"{src}→{dst}")


def composition_chain_linear(
    steps: int, relations: int = 3, attributes: int = 3
) -> list[Mapping]:
    """A chain of k copy mappings S0 → S1 → ... → Sk: composing them is
    linear (each step's result has the same size)."""
    schemas = [
        _relabeled_flat(f"L{i}", relations, attributes) for i in range(steps + 1)
    ]
    mappings = []
    for i in range(steps):
        tgds = [
            _copy_tgd(f"L{i}R{r}", f"L{i+1}R{r}", attributes)
            for r in range(relations)
        ]
        mappings.append(
            Mapping(schemas[i], schemas[i + 1], tgds, name=f"step{i}")
        )
    return mappings


def _relabeled_flat(prefix: str, relations: int, attributes: int) -> Schema:
    builder = SchemaBuilder(prefix, metamodel="relational")
    for r in range(relations):
        rel = f"{prefix}R{r}"
        builder.entity(rel, key=[f"{rel}_k"]).attribute(f"{rel}_k", INT)
        for a in range(attributes - 1):
            builder.attribute(f"{rel}_a{a}", INT)
    return builder.build()


def composition_pair_exponential(width: int) -> tuple[Mapping, Mapping]:
    """The alternatives construction behind Fagin et al.'s exponential
    lower bound: σ12 offers two origins (Aᵢ or Bᵢ) for each middle
    relation Cᵢ; σ23 joins all Cᵢ into one target atom.  Composing must
    enumerate all 2^width origin choices."""
    s1 = SchemaBuilder("X1", metamodel="relational")
    s2 = SchemaBuilder("X2", metamodel="relational")
    s3 = SchemaBuilder("X3", metamodel="relational")
    for i in range(width):
        s1.entity(f"A{i}", key=[f"A{i}_v"]).attribute(f"A{i}_v", INT)
        s1.entity(f"B{i}", key=[f"B{i}_v"]).attribute(f"B{i}_v", INT)
        s2.entity(f"C{i}", key=[f"C{i}_v"]).attribute(f"C{i}_v", INT)
    s3.entity("D", key=[])
    d_builder = s3
    for i in range(width):
        d_builder.attribute(f"d{i}", INT)
    schema1, schema2, schema3 = s1.build(), s2.build(), s3.build()

    m12_tgds = []
    for i in range(width):
        x = Var("x")
        m12_tgds.append(TGD(
            body=(Atom(f"A{i}", ((f"A{i}_v", x),)),),
            head=(Atom(f"C{i}", ((f"C{i}_v", x),)),),
            name=f"A{i}→C{i}",
        ))
        m12_tgds.append(TGD(
            body=(Atom(f"B{i}", ((f"B{i}_v", x),)),),
            head=(Atom(f"C{i}", ((f"C{i}_v", x),)),),
            name=f"B{i}→C{i}",
        ))
    body = tuple(
        Atom(f"C{i}", ((f"C{i}_v", Var(f"x{i}")),)) for i in range(width)
    )
    head = (Atom("D", tuple((f"d{i}", Var(f"x{i}")) for i in range(width))),)
    m23_tgds = [TGD(body=body, head=head, name="C*→D")]
    return (
        Mapping(schema1, schema2, m12_tgds, name="m12"),
        Mapping(schema2, schema3, m23_tgds, name="m23"),
    )


# ----------------------------------------------------------------------
# exchange workloads (E3)
# ----------------------------------------------------------------------
def exchange_tgds(
    relations: int = 3,
    existential_fraction: float = 0.5,
    seed: int = 0,
) -> tuple[Schema, Schema, list[TGD]]:
    """Source/target schema pair with one st-tgd per relation; a
    fraction of target attributes are existential (invented by the
    chase as labeled nulls)."""
    rng = random.Random(seed)
    source = flat_schema("SRC", relations)
    target_builder = SchemaBuilder("TGT", metamodel="relational")
    tgds: list[TGD] = []
    for r in range(relations):
        rel_t = f"T{r}"
        target_builder.entity(rel_t, key=[f"{rel_t}_k"])
        target_builder.attribute(f"{rel_t}_k", INT)
        target_builder.attribute(f"{rel_t}_a0", INT, nullable=True)
        target_builder.attribute(f"{rel_t}_a1", INT, nullable=True)
        body = Atom(
            f"R{r}",
            (
                (f"R{r}_k", Var("k")),
                (f"R{r}_a0", Var("a")),
                (f"R{r}_a1", Var("b")),
            ),
        )
        head_args = [(f"{rel_t}_k", Var("k"))]
        for index, var in (("a0", Var("a")), ("a1", Var("b"))):
            if rng.random() < existential_fraction:
                head_args.append((f"{rel_t}_{index}", Var(f"fresh_{index}")))
            else:
                head_args.append((f"{rel_t}_{index}", var))
        tgds.append(
            TGD(body=(body,), head=(Atom(rel_t, tuple(head_args)),),
                name=f"R{r}→T{r}")
        )
    return source, target_builder.build(), tgds
