"""Workloads: the paper's worked examples and synthetic generators.

:mod:`repro.workloads.paper` builds the exact schemas, constraints and
sample data of the paper's Figures 2, 3, 4 and 6, so tests and
benchmarks can check the engine's outputs against the published
artifacts.  :mod:`repro.workloads.synthetic` generates parametric
schema/mapping families (snowflakes, inheritance hierarchies, mapping
chains, evolution deltas, noisy correspondences) for the scaling
experiments in EXPERIMENTS.md.
"""

from repro.workloads import paper, synthetic

__all__ = ["paper", "synthetic"]
