"""Conjunctive-query → relational-algebra translation.

Naive evaluation of a CQ (:func:`repro.logic.certain_answers.naive_evaluate`)
enumerates homomorphisms with a backtracking search.  That search is
re-planned from scratch on every call; the mapping runtime, however,
answers the *same* target queries over and over.  Translating the CQ
body into a ``RelExpr`` once lets those calls go through the compiled
plan executor and its plan cache.

The translation reproduces homomorphism-matching semantics exactly:

* an atom matches a row only if the row *has* every mentioned
  attribute, constants agree (``!=`` rejection), and repeated variables
  within the atom bind equal values (:class:`_AtomGuard`);
* shared variables across atoms join with
  :class:`~repro.algebra.expressions.ValueJoinEq` — plain ``!=``
  rejection, so ``None == None`` matches and labeled nulls match by
  label, exactly like binding consistency in ``_match_atom``;
* equality conditions become :class:`_CondEq` selections with the same
  ``!=`` rejection.

Exotic queries (empty body, second-order terms, unsafe heads,
conditions over unbound variables) return ``None`` — callers fall back
to the homomorphism search, which stays the reference implementation.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.expressions import (
    Join,
    Project,
    RelExpr,
    Scan,
    Select,
    ValueJoinEq,
)
from repro.algebra.scalars import Col, Predicate, conjunction
from repro.instances.database import Row
from repro.logic.formulas import Atom, ConjunctiveQuery, Equality
from repro.logic.terms import Const, Term, Var


class _AtomGuard(Predicate):
    """Row-level admission test for one atom: every mentioned attribute
    present, constants equal (``!=`` rejection), repeated variables
    consistent."""

    def __init__(self, atom: Atom):
        self.atom = atom

    def eval(self, row: Row, ctx) -> bool:
        first_seen: dict[Var, object] = {}
        for name, term in self.atom.args:
            if name not in row:
                return False
            value = row[name]
            if isinstance(term, Const):
                if value != term.value:
                    return False
            elif isinstance(term, Var):
                if term in first_seen:
                    if first_seen[term] != value:
                        return False
                else:
                    first_seen[term] = value
            else:  # FuncTerm — callers never build guards over these
                return False
        return True

    def columns(self) -> set[str]:
        return {name for name, _ in self.atom.args}

    def _key(self):
        return (self.atom,)


class _CondEq(Predicate):
    """An equality condition over bound variables/constants, with the
    homomorphism search's ``!=`` rejection semantics."""

    def __init__(self, left: Term, right: Term):
        self.left = left
        self.right = right

    def _value(self, term: Term, row: Row):
        if isinstance(term, Const):
            return term.value
        return row[term.name]

    def eval(self, row: Row, ctx) -> bool:
        return not (self._value(self.left, row) != self._value(self.right, row))

    def columns(self) -> set[str]:
        return {
            t.name for t in (self.left, self.right) if isinstance(t, Var)
        }

    def _key(self):
        return (self.left, self.right)


def translate_cq(query: ConjunctiveQuery) -> Optional[RelExpr]:
    """A ``RelExpr`` whose rows are exactly the head bindings of
    ``query``'s homomorphisms (bag; columns ``c0..cN`` positionally
    matching ``query.head``), or ``None`` when the query needs the
    backtracking search (empty body, second-order terms, unsafe head,
    conditions over unbound variables)."""
    if not query.body:
        return None

    bound: set[Var] = set()
    plan: Optional[RelExpr] = None
    for atom in query.body:
        atom_vars: list[Var] = []
        columns: dict[Var, str] = {}
        for name, term in atom.args:
            if isinstance(term, Var):
                if term not in columns:
                    columns[term] = name
                    atom_vars.append(term)
            elif not isinstance(term, Const):
                return None  # FuncTerm argument — not first-order
        atom_plan: RelExpr = Select(Scan(atom.relation), _AtomGuard(atom))
        atom_plan = Project(
            atom_plan, [(var.name, Col(columns[var])) for var in atom_vars]
        )
        if plan is None:
            plan = atom_plan
        else:
            shared = [var for var in atom_vars if var in bound]
            predicate = conjunction(
                [ValueJoinEq(var.name, var.name) for var in shared]
            )
            plan = Join(plan, atom_plan, predicate)
        bound.update(atom_vars)

    for condition in query.conditions:
        if not _condition_translatable(condition, bound):
            return None
        plan = Select(plan, _CondEq(condition.left, condition.right))

    if not set(query.head) <= bound:
        return None  # unsafe head — naive evaluation raises; keep it there
    return Project(
        plan,
        [(f"c{i}", Col(var.name)) for i, var in enumerate(query.head)],
    )


def _condition_translatable(condition: Equality, bound: set[Var]) -> bool:
    for term in (condition.left, condition.right):
        if isinstance(term, Var):
            if term not in bound:
                return False
        elif not isinstance(term, Const):
            return False
    return True


def answers_from_rows(
    query: ConjunctiveQuery, rows: list[Row]
) -> list[tuple]:
    """Positional answer tuples from a :func:`translate_cq` result set,
    deduplicated with the same label-aware key as naive evaluation."""
    from repro.instances.labeled_null import LabeledNull

    width = len(query.head)
    answers: list[tuple] = []
    seen: set[tuple] = set()
    for row in rows:
        answer = tuple(row[f"c{i}"] for i in range(width))
        key = tuple(
            ("⊥", v.label) if isinstance(v, LabeledNull) else ("c", v)
            for v in answer
        )
        if key not in seen:
            seen.add(key)
            answers.append(answer)
    return answers
