"""Conjunctive-query containment and equivalence (Chandra–Merlin).

``q1 ⊆ q2`` iff there is a homomorphism from ``q2`` to ``q1``'s
canonical (frozen) database mapping ``q2``'s head to ``q1``'s frozen
head.  The engine uses this to verify operator outputs — e.g. that a
composed mapping is equivalent to a directly-authored one (the Figure 6
check), and that Extract ⊎ Diff loses nothing.
"""

from __future__ import annotations

from repro.logic.formulas import ConjunctiveQuery
from repro.logic.homomorphism import find_homomorphism


def is_contained_in(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """True iff ``q1 ⊆ q2`` on every database (set semantics)."""
    if len(q1.head) != len(q2.head):
        return False
    canonical, frozen_head = q1.canonical_instance()
    partial = {}
    for var, value in zip(q2.head, frozen_head):
        if var in partial and partial[var] != value:
            return False
        partial[var] = value
    assignment = find_homomorphism(
        q2.body, canonical, q2.conditions, partial=partial
    )
    return assignment is not None


def are_equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Mutual containment."""
    return is_contained_in(q1, q2) and is_contained_in(q2, q1)
