"""A terse text syntax for dependencies and queries.

Keeping the many tests, examples and benchmark workloads readable::

    parse_tgd("Empl(EID=x, AID=a) & Addr(AID=a, City=c) -> Staff(SID=x, City=c)")
    parse_egd("R(k=x, v=a) & R(k=x, v=b) -> a = b")
    parse_query("q(x, c) :- Empl(EID=x, AID=a) & Addr(AID=a, City=c)")

Conventions: identifiers starting with a lowercase letter are
variables; capitalized identifiers are relation/attribute names;
numbers, single/double-quoted strings, ``true``/``false``/``null`` are
constants; ``f(x, y)`` in term position is a (Skolem) function term.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import MappingError
from repro.logic.dependencies import EGD, TGD
from repro.logic.formulas import Atom, ConjunctiveQuery, Equality
from repro.logic.terms import Const, FuncTerm, Term, Var

_TOKEN = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->|:-)
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.$]*)
  | (?P<punct>[(),=&])
    """,
    re.VERBOSE,
)


class _Tokens:
    def __init__(self, text: str):
        self.tokens: list[tuple[str, str]] = []
        position = 0
        while position < len(text):
            match = _TOKEN.match(text, position)
            if match is None:
                raise MappingError(
                    f"cannot tokenize {text[position:position + 20]!r}"
                )
            position = match.end()
            kind = match.lastgroup
            if kind != "ws":
                self.tokens.append((kind, match.group()))
        self.index = 0

    def peek(self) -> Optional[tuple[str, str]]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise MappingError("unexpected end of input")
        self.index += 1
        return token

    def expect(self, value: str) -> None:
        kind, text = self.next()
        if text != value:
            raise MappingError(f"expected {value!r}, got {text!r}")

    def accept(self, value: str) -> bool:
        token = self.peek()
        if token is not None and token[1] == value:
            self.index += 1
            return True
        return False

    @property
    def exhausted(self) -> bool:
        return self.index >= len(self.tokens)


def _parse_term(tokens: _Tokens) -> Term:
    kind, text = tokens.next()
    if kind == "number":
        value = float(text) if "." in text else int(text)
        return Const(value)
    if kind == "string":
        return Const(text[1:-1])
    if kind == "ident":
        if text == "true":
            return Const(True)
        if text == "false":
            return Const(False)
        if text == "null":
            return Const(None)
        if tokens.peek() is not None and tokens.peek()[1] == "(" and text[0].islower():
            tokens.expect("(")
            args: list[Term] = []
            if not tokens.accept(")"):
                args.append(_parse_term(tokens))
                while tokens.accept(","):
                    args.append(_parse_term(tokens))
                tokens.expect(")")
            return FuncTerm(text, tuple(args))
        if text[0].islower():
            return Var(text)
        return Const(text)  # capitalized bare identifier: symbolic constant
    raise MappingError(f"unexpected token {text!r} in term position")


def _parse_atom_or_equality(tokens: _Tokens):
    """Either ``Rel(attr=term, ...)`` or ``term = term``."""
    start = tokens.index
    kind, text = tokens.next()
    if kind == "ident" and tokens.peek() is not None and tokens.peek()[1] == "(" \
            and text[0].isupper():
        tokens.expect("(")
        args: list[tuple[str, Term]] = []
        if not tokens.accept(")"):
            while True:
                attr_kind, attr = tokens.next()
                if attr_kind != "ident":
                    raise MappingError(f"expected attribute name, got {attr!r}")
                tokens.expect("=")
                args.append((attr, _parse_term(tokens)))
                if not tokens.accept(","):
                    break
            tokens.expect(")")
        return Atom(text, tuple(args))
    # Rewind and parse an equality condition.
    tokens.index = start
    left = _parse_term(tokens)
    tokens.expect("=")
    right = _parse_term(tokens)
    return Equality(left, right)


def _parse_conjunction(tokens: _Tokens):
    atoms: list[Atom] = []
    conditions: list[Equality] = []
    while True:
        element = _parse_atom_or_equality(tokens)
        if isinstance(element, Atom):
            atoms.append(element)
        else:
            conditions.append(element)
        if not tokens.accept("&"):
            break
    return atoms, conditions


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``"Empl(EID=x, Name='Ann')"``."""
    tokens = _Tokens(text)
    element = _parse_atom_or_equality(tokens)
    if not isinstance(element, Atom) or not tokens.exhausted:
        raise MappingError(f"not a single atom: {text!r}")
    return element


def parse_tgd(text: str, name: str = "") -> TGD:
    """Parse ``body -> head`` into a :class:`TGD` (no conditions)."""
    tokens = _Tokens(text)
    body, body_conditions = _parse_conjunction(tokens)
    tokens.expect("->")
    head, head_conditions = _parse_conjunction(tokens)
    if body_conditions or head_conditions:
        raise MappingError("tgds may not contain equality conditions")
    if not tokens.exhausted:
        raise MappingError(f"trailing input in tgd: {text!r}")
    return TGD(body=tuple(body), head=tuple(head), name=name)


def parse_egd(text: str, name: str = "") -> EGD:
    """Parse ``body -> t1 = t2 [& t3 = t4 ...]`` into an :class:`EGD`."""
    tokens = _Tokens(text)
    body, body_conditions = _parse_conjunction(tokens)
    if body_conditions:
        raise MappingError("egd bodies may not contain equality conditions")
    tokens.expect("->")
    _, equalities = _parse_conjunction(tokens)
    if not equalities:
        raise MappingError("egd head must be a conjunction of equalities")
    if not tokens.exhausted:
        raise MappingError(f"trailing input in egd: {text!r}")
    return EGD(body=tuple(body), equalities=tuple(equalities), name=name)


def parse_query(text: str, name: str = "") -> ConjunctiveQuery:
    """Parse ``q(x, y) :- body`` into a :class:`ConjunctiveQuery`."""
    tokens = _Tokens(text)
    kind, query_name = tokens.next()
    if kind != "ident":
        raise MappingError("query must start with a name")
    tokens.expect("(")
    head: list[Var] = []
    if not tokens.accept(")"):
        while True:
            term = _parse_term(tokens)
            if not isinstance(term, Var):
                raise MappingError("query head terms must be variables")
            head.append(term)
            if not tokens.accept(","):
                break
        tokens.expect(")")
    kind, arrow = tokens.next()
    if arrow != ":-":
        raise MappingError(f"expected ':-', got {arrow!r}")
    body, conditions = _parse_conjunction(tokens)
    if not tokens.exhausted:
        raise MappingError(f"trailing input in query: {text!r}")
    return ConjunctiveQuery(
        head=tuple(head),
        body=tuple(body),
        conditions=tuple(conditions),
        name=name or query_name,
    )
