"""Logic layer: dependencies, second-order tgds, the chase, and
reasoning services.

This package supplies the *expressive mapping language* that the
paper's revised vision demands (Sections 2, 4 and 6):

* :mod:`repro.logic.terms` / :mod:`repro.logic.formulas` — variables,
  constants, Skolem function terms, relational atoms, conjunctive
  queries;
* :mod:`repro.logic.dependencies` — tuple-generating dependencies
  (tgds), source-to-target tgds (the GLAV constraints of Section 3.1.2)
  and equality-generating dependencies (egds);
* :mod:`repro.logic.second_order` — second-order tgds, the language
  that is closed under composition (Fagin et al., cited as [40]);
* :mod:`repro.logic.chase` — the chase procedure that computes
  universal solutions for data exchange (Section 4);
* :mod:`repro.logic.core_computation` — the core of a universal
  solution ("Data Exchange: Getting to the Core", cited as [39]);
* :mod:`repro.logic.certain_answers` — certain-answer query semantics;
* :mod:`repro.logic.containment` — conjunctive-query containment and
  equivalence (Chandra–Merlin), used to verify operator outputs;
* :mod:`repro.logic.parser` — a terse text syntax for dependencies so
  tests and examples stay readable.
"""

from repro.logic.terms import Var, Const, FuncTerm, Term, Substitution, apply_term
from repro.logic.formulas import Atom, ConjunctiveQuery, Equality
from repro.logic.dependencies import TGD, EGD, Dependency
from repro.logic.second_order import SecondOrderTGD, Implication, skolemize, deskolemize
from repro.logic.homomorphism import (
    find_homomorphism,
    find_all_homomorphisms,
    instance_homomorphism,
    are_hom_equivalent,
)
from repro.logic.chase import (
    chase,
    naive_chase,
    ChaseProfile,
    ChaseRecorder,
    ChaseResult,
    ChaseStats,
    is_weakly_acyclic,
)
from repro.logic.sharding import ShardPlan, plan_shards, sharded_chase
from repro.logic.core_computation import core_of
from repro.logic.certain_answers import certain_answers, naive_evaluate
from repro.logic.containment import is_contained_in, are_equivalent
from repro.logic.parser import parse_atom, parse_tgd, parse_egd, parse_query

__all__ = [
    "Var", "Const", "FuncTerm", "Term", "Substitution", "apply_term",
    "Atom", "ConjunctiveQuery", "Equality",
    "TGD", "EGD", "Dependency",
    "SecondOrderTGD", "Implication", "skolemize", "deskolemize",
    "find_homomorphism", "find_all_homomorphisms", "instance_homomorphism",
    "are_hom_equivalent",
    "chase", "naive_chase", "ChaseProfile", "ChaseRecorder",
    "ChaseResult", "ChaseStats",
    "is_weakly_acyclic",
    "ShardPlan", "plan_shards", "sharded_chase",
    "core_of",
    "certain_answers", "naive_evaluate",
    "is_contained_in", "are_equivalent",
    "parse_atom", "parse_tgd", "parse_egd", "parse_query",
]
