"""Relational atoms, equalities and conjunctive queries.

Atoms use *named* arguments (attribute → term) rather than positional
ones, matching the engine's row representation; the printer renders
``Empl(EID=x, Name=n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from repro.logic.terms import (
    Const,
    FuncTerm,
    Substitution,
    Term,
    Var,
    apply_term,
    functions_of,
    variables_of,
)


@dataclass(frozen=True)
class Atom:
    """``relation(attr1=t1, attr2=t2, ...)``."""

    relation: str
    args: tuple[tuple[str, Term], ...]

    @staticmethod
    def of(relation: str, **kwargs) -> "Atom":
        """Convenience constructor; bare Python values become constants,
        strings of the form produced by callers stay as given terms."""
        args = []
        for name, value in kwargs.items():
            if isinstance(value, (Var, Const, FuncTerm)):
                args.append((name, value))
            else:
                args.append((name, Const(value)))
        return Atom(relation, tuple(args))

    @property
    def arg_map(self) -> dict[str, Term]:
        return dict(self.args)

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.args)

    def term(self, attribute: str) -> Term:
        for name, term in self.args:
            if name == attribute:
                return term
        raise KeyError(attribute)

    def variables(self) -> set[Var]:
        result: set[Var] = set()
        for _, term in self.args:
            result |= variables_of(term)
        return result

    def functions(self) -> set[str]:
        result: set[str] = set()
        for _, term in self.args:
            result |= functions_of(term)
        return result

    def substitute(self, substitution: Substitution) -> "Atom":
        return Atom(
            self.relation,
            tuple((name, apply_term(term, substitution)) for name, term in self.args),
        )

    def is_ground(self) -> bool:
        return not self.variables() and not self.functions()

    def __str__(self) -> str:
        inner = ", ".join(f"{name}={term}" for name, term in self.args)
        return f"{self.relation}({inner})"


@dataclass(frozen=True)
class Equality:
    """``left = right`` — the conclusion of an egd, or a residual
    condition inside a second-order tgd implication."""

    left: Term
    right: Term

    def substitute(self, substitution: Substitution) -> "Equality":
        return Equality(
            apply_term(self.left, substitution), apply_term(self.right, substitution)
        )

    def variables(self) -> set[Var]:
        return variables_of(self.left) | variables_of(self.right)

    def is_trivial(self) -> bool:
        return self.left == self.right

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """``q(head_vars) :- body`` — a conjunctive query with optional
    equality conditions.

    The canonical-database construction (:meth:`canonical_instance`)
    turns the body into an instance for Chandra–Merlin containment
    testing.
    """

    head: tuple[Var, ...]
    body: tuple[Atom, ...]
    conditions: tuple[Equality, ...] = ()
    name: str = "q"

    def variables(self) -> set[Var]:
        result: set[Var] = set()
        for atom in self.body:
            result |= atom.variables()
        for condition in self.conditions:
            result |= condition.variables()
        return result

    def is_safe(self) -> bool:
        """All head variables appear in the body."""
        return set(self.head) <= self.variables()

    def relations(self) -> set[str]:
        return {atom.relation for atom in self.body}

    def canonical_instance(self):
        """The frozen body as a database instance: each variable becomes
        a distinct labeled null, constants stay themselves."""
        from repro.instances.database import Instance
        from repro.instances.labeled_null import LabeledNull

        freeze: dict[Var, LabeledNull] = {}
        for index, var in enumerate(sorted(self.variables(), key=lambda v: v.name)):
            freeze[var] = LabeledNull(index, hint=var.name)
        instance = Instance()
        for atom in self.body:
            row = {}
            for name, term in atom.args:
                if isinstance(term, Var):
                    row[name] = freeze[term]
                elif isinstance(term, Const):
                    row[name] = term.value
                else:
                    raise ValueError("canonical instance needs first-order atoms")
            instance.insert(atom.relation, row)
        head_values = tuple(freeze[v] for v in self.head)
        return instance, head_values

    def __str__(self) -> str:
        head = ", ".join(str(v) for v in self.head)
        parts = [str(a) for a in self.body] + [str(c) for c in self.conditions]
        return f"{self.name}({head}) :- {' & '.join(parts)}"
