"""Homomorphism search.

Two flavours, both backtracking with candidate filtering:

* **formula → instance**: assign values to the variables of a
  conjunction of atoms so every atom maps onto some row.  This is the
  trigger-finding step of the chase and the evaluation step of
  Chandra–Merlin containment.  Atoms use named arguments and may
  mention only a *subset* of a relation's attributes — a row matches if
  it agrees on the mentioned ones.

* **instance → instance**: map labeled nulls to values such that every
  row of the source maps onto a row of the target (constants fixed).
  This is the workhorse of core computation and universal-solution
  equivalence checks.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from repro.instances.database import Instance, Row, freeze_row
from repro.instances.labeled_null import LabeledNull
from repro.logic.formulas import Atom, Equality
from repro.logic.terms import Const, FuncTerm, Term, Var, apply_term


Assignment = dict[Var, object]


_MISSING = object()


def _match_atom(atom: Atom, row: Row, assignment: Assignment) -> Optional[Assignment]:
    """Try to extend ``assignment`` so ``atom`` maps onto ``row``.

    Returns ``assignment`` itself when the atom matches without new
    bindings (callers never mutate assignments, so sharing is safe);
    the dict is only copied once a genuinely new binding appears.
    """
    new_bindings: Optional[dict[Var, object]] = None
    for name, term in atom.args:
        value = row.get(name, _MISSING)
        if value is _MISSING:
            return None
        if isinstance(term, Const):
            if value != term.value:
                return None
        elif isinstance(term, Var):
            bound = assignment.get(term, _MISSING)
            if bound is not _MISSING:
                if bound != value:
                    return None
            elif new_bindings is not None and term in new_bindings:
                if new_bindings[term] != value:
                    return None
            else:
                if new_bindings is None:
                    new_bindings = {}
                new_bindings[term] = value
        else:
            raise TypeError("cannot match second-order terms against rows")
    if new_bindings is None:
        return assignment  # type: ignore[return-value]
    merged = dict(assignment)
    merged.update(new_bindings)
    return merged


def _conditions_hold(
    conditions: Sequence[Equality], assignment: Assignment
) -> bool:
    for condition in conditions:
        left = _term_value(condition.left, assignment)
        right = _term_value(condition.right, assignment)
        if left != right:
            return False
    return True


def _term_value(term: Term, assignment: Assignment) -> object:
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        return assignment.get(term, term)
    raise TypeError("conditions must be first-order")


class _ValueIndex:
    """Lazy per-(relation, attribute) hash index over an instance's
    rows, so joins filter candidates instead of scanning (the standard
    hash-join trick applied to the trigger search)."""

    def __init__(self, instance: Instance):
        self.instance = instance
        self._indexes: dict[tuple[str, str], dict] = {}

    def candidates(self, atom: Atom, assignment: Assignment) -> list[Row]:
        """Rows possibly matching ``atom`` given current bindings: the
        postings list of one bound attribute (or all rows if none is
        bound)."""
        bound_value = None
        bound_attr = None
        for name, term in atom.args:
            if isinstance(term, Const):
                bound_attr, bound_value = name, term.value
                break
            if isinstance(term, Var) and term in assignment:
                bound_attr, bound_value = name, assignment[term]
                break
        if bound_attr is None:
            return self.instance.rows(atom.relation)
        key = (atom.relation, bound_attr)
        index = self._indexes.get(key)
        if index is None:
            index = {}
            for row in self.instance.rows(atom.relation):
                if bound_attr in row:
                    index.setdefault(_hashable(row[bound_attr]), []).append(row)
            self._indexes[key] = index
        return index.get(_hashable(bound_value), [])


def _hashable(value):
    if isinstance(value, LabeledNull):
        return ("⊥", value.label)
    try:
        hash(value)
    except TypeError:
        return ("!", repr(value))
    return value


def iter_homomorphisms(
    atoms: Sequence[Atom],
    instance: Instance,
    conditions: Sequence[Equality] = (),
    partial: Optional[Assignment] = None,
) -> Iterator[Assignment]:
    """Yield every assignment of the atoms' variables onto the instance.

    Atoms are matched most-constrained-first (fewest candidate rows);
    within the backtracking, a lazily built value index narrows each
    atom's candidates to rows agreeing on one already-bound attribute.
    """
    ordered = sorted(atoms, key=lambda a: len(instance.rows(a.relation)))
    value_index = _ValueIndex(instance)

    def backtrack(index: int, assignment: Assignment) -> Iterator[Assignment]:
        if index == len(ordered):
            if _conditions_hold(conditions, assignment):
                yield dict(assignment)
            return
        atom = ordered[index]
        for row in value_index.candidates(atom, assignment):
            extended = _match_atom(atom, row, assignment)
            if extended is not None:
                yield from backtrack(index + 1, extended)

    yield from backtrack(0, dict(partial or {}))


def find_homomorphism(
    atoms: Sequence[Atom],
    instance: Instance,
    conditions: Sequence[Equality] = (),
    partial: Optional[Assignment] = None,
) -> Optional[Assignment]:
    """First homomorphism or ``None``."""
    for assignment in iter_homomorphisms(atoms, instance, conditions, partial):
        return assignment
    return None


def find_all_homomorphisms(
    atoms: Sequence[Atom],
    instance: Instance,
    conditions: Sequence[Equality] = (),
) -> list[Assignment]:
    return list(iter_homomorphisms(atoms, instance, conditions))


# ----------------------------------------------------------------------
# instance → instance
# ----------------------------------------------------------------------
def instance_homomorphism(
    source: Instance,
    target: Instance,
    fixed: Optional[dict[LabeledNull, object]] = None,
    forbid_identity: bool = False,
) -> Optional[dict[LabeledNull, object]]:
    """A mapping of ``source``'s labeled nulls to values such that every
    source row lands on a target row (constants map to themselves).

    ``forbid_identity=True`` rejects the trivial solution in which every
    null maps to itself *and* the row images are the originals — used
    when searching for proper endomorphisms during core computation.
    """
    source_rows: list[tuple[str, Row]] = [
        (relation, row)
        for relation in sorted(source.relations)
        for row in source.relations[relation]
    ]
    target_sets: dict[str, list[Row]] = {
        relation: target.rows(relation) for relation, _ in source_rows
    }
    # Most-constrained-first ordering.
    source_rows.sort(key=lambda item: len(target_sets.get(item[0], [])))

    def row_image(row: Row, mapping: dict[LabeledNull, object]) -> Optional[Row]:
        image = {}
        for key, value in row.items():
            if isinstance(value, LabeledNull):
                if value not in mapping:
                    return None
                image[key] = mapping[value]
            else:
                image[key] = value
        return image

    def try_map_row(
        row: Row, candidate: Row, mapping: dict[LabeledNull, object]
    ) -> Optional[dict[LabeledNull, object]]:
        if set(row) != set(candidate):
            return None
        extended = dict(mapping)
        for key, value in row.items():
            target_value = candidate[key]
            if isinstance(value, LabeledNull):
                if value in extended:
                    if extended[value] != target_value:
                        return None
                else:
                    extended[value] = target_value
            elif value != target_value:
                return None
        return extended

    def backtrack(
        index: int, mapping: dict[LabeledNull, object]
    ) -> Optional[dict[LabeledNull, object]]:
        if index == len(source_rows):
            if forbid_identity:
                identity = all(
                    null == image for null, image in mapping.items()
                )
                if identity:
                    return None
            return mapping
        relation, row = source_rows[index]
        for candidate in target_sets.get(relation, []):
            extended = try_map_row(row, candidate, mapping)
            if extended is not None:
                result = backtrack(index + 1, extended)
                if result is not None:
                    return result
        return None

    return backtrack(0, dict(fixed or {}))


def are_hom_equivalent(a: Instance, b: Instance) -> bool:
    """True when homomorphisms exist both ways — the equivalence class
    of universal solutions."""
    return (
        instance_homomorphism(a, b) is not None
        and instance_homomorphism(b, a) is not None
    )
