"""Homomorphism search.

Two flavours, both backtracking with candidate filtering:

* **formula → instance**: assign values to the variables of a
  conjunction of atoms so every atom maps onto some row.  This is the
  trigger-finding step of the chase and the evaluation step of
  Chandra–Merlin containment.  Atoms use named arguments and may
  mention only a *subset* of a relation's attributes — a row matches if
  it agrees on the mentioned ones.

* **instance → instance**: map labeled nulls to values such that every
  row of the source maps onto a row of the target (constants fixed).
  This is the workhorse of core computation and universal-solution
  equivalence checks.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from repro.instances.database import Instance, Row, freeze_row, hashable_key
from repro.instances.labeled_null import LabeledNull
from repro.logic.formulas import Atom, Equality
from repro.logic.terms import Const, FuncTerm, Term, Var, apply_term


Assignment = dict[Var, object]


_MISSING = object()


def _match_atom(atom: Atom, row: Row, assignment: Assignment) -> Optional[Assignment]:
    """Try to extend ``assignment`` so ``atom`` maps onto ``row``.

    Returns ``assignment`` itself when the atom matches without new
    bindings (callers never mutate assignments, so sharing is safe);
    the dict is only copied once a genuinely new binding appears.
    """
    new_bindings: Optional[dict[Var, object]] = None
    for name, term in atom.args:
        value = row.get(name, _MISSING)
        if value is _MISSING:
            return None
        if isinstance(term, Const):
            if value != term.value:
                return None
        elif isinstance(term, Var):
            bound = assignment.get(term, _MISSING)
            if bound is not _MISSING:
                if bound != value:
                    return None
            elif new_bindings is not None and term in new_bindings:
                if new_bindings[term] != value:
                    return None
            else:
                if new_bindings is None:
                    new_bindings = {}
                new_bindings[term] = value
        else:
            raise TypeError("cannot match second-order terms against rows")
    if new_bindings is None:
        return assignment  # type: ignore[return-value]
    merged = dict(assignment)
    merged.update(new_bindings)
    return merged


def _conditions_hold(
    conditions: Sequence[Equality], assignment: Assignment
) -> bool:
    for condition in conditions:
        left = _term_value(condition.left, assignment)
        right = _term_value(condition.right, assignment)
        if left != right:
            return False
    return True


def _term_value(term: Term, assignment: Assignment) -> object:
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        return assignment.get(term, term)
    raise TypeError("conditions must be first-order")


#: Backwards-compatible alias — key construction now lives on the
#: instance layer and uses private sentinels instead of string tags.
_hashable = hashable_key


def _candidate_rows(
    instance: Instance, atom: Atom, assignment: Assignment
) -> Sequence[Row]:
    """Rows possibly matching ``atom`` given current bindings: the
    postings list of one bound attribute (or all rows if none is bound),
    served from the instance's persistent per-(relation, attribute)
    indexes — no longer rebuilt per ``iter_homomorphisms`` call."""
    for name, term in atom.args:
        if isinstance(term, Const):
            return instance.index_lookup(atom.relation, name, term.value)
        if isinstance(term, Var) and term in assignment:
            return instance.index_lookup(atom.relation, name, assignment[term])
    return instance.rows(atom.relation)


def iter_homomorphisms(
    atoms: Sequence[Atom],
    instance: Instance,
    conditions: Sequence[Equality] = (),
    partial: Optional[Assignment] = None,
    *,
    pinned: Optional[tuple[int, Sequence[Row]]] = None,
) -> Iterator[Assignment]:
    """Yield every assignment of the atoms' variables onto the instance.

    Atoms are matched most-constrained-first (fewest candidate rows);
    within the backtracking, the instance's persistent value indexes
    narrow each atom's candidates to rows agreeing on one already-bound
    attribute.

    ``pinned=(i, rows)`` restricts atom ``i`` of ``atoms`` to the given
    candidate rows and matches it first — the semi-naive chase uses this
    to enumerate only triggers touching the latest delta.
    """
    entries: list[tuple[Atom, Optional[Sequence[Row]]]] = [
        (atom, None) for atom in atoms
    ]
    if pinned is not None:
        pin_index, pin_rows = pinned
        entries[pin_index] = (atoms[pin_index], pin_rows)
    ordered = sorted(
        entries,
        key=lambda entry: (
            (0, 0)
            if entry[1] is not None
            else (1, instance.cardinality(entry[0].relation))
        ),
    )

    def backtrack(index: int, assignment: Assignment) -> Iterator[Assignment]:
        if index == len(ordered):
            if _conditions_hold(conditions, assignment):
                yield dict(assignment)
            return
        atom, forced = ordered[index]
        candidates = (
            forced
            if forced is not None
            else _candidate_rows(instance, atom, assignment)
        )
        for row in candidates:
            extended = _match_atom(atom, row, assignment)
            if extended is not None:
                yield from backtrack(index + 1, extended)

    yield from backtrack(0, dict(partial or {}))


def find_homomorphism(
    atoms: Sequence[Atom],
    instance: Instance,
    conditions: Sequence[Equality] = (),
    partial: Optional[Assignment] = None,
) -> Optional[Assignment]:
    """First homomorphism or ``None``."""
    for assignment in iter_homomorphisms(atoms, instance, conditions, partial):
        return assignment
    return None


def find_all_homomorphisms(
    atoms: Sequence[Atom],
    instance: Instance,
    conditions: Sequence[Equality] = (),
) -> list[Assignment]:
    return list(iter_homomorphisms(atoms, instance, conditions))


# ----------------------------------------------------------------------
# instance → instance
# ----------------------------------------------------------------------
def instance_homomorphism(
    source: Instance,
    target: Instance,
    fixed: Optional[dict[LabeledNull, object]] = None,
    forbid_identity: bool = False,
) -> Optional[dict[LabeledNull, object]]:
    """A mapping of ``source``'s labeled nulls to values such that every
    source row lands on a target row (constants map to themselves).

    ``forbid_identity=True`` rejects the trivial solution in which every
    null maps to itself *and* the row images are the originals — used
    when searching for proper endomorphisms during core computation.
    """
    source_rows: list[tuple[str, Row]] = [
        (relation, row)
        for relation in sorted(source.relations)
        for row in source.relations[relation]
    ]
    target_sets: dict[str, list[Row]] = {
        relation: target.rows(relation) for relation, _ in source_rows
    }
    # Most-constrained-first ordering.
    source_rows.sort(key=lambda item: len(target_sets.get(item[0], [])))

    def row_image(row: Row, mapping: dict[LabeledNull, object]) -> Optional[Row]:
        image = {}
        for key, value in row.items():
            if isinstance(value, LabeledNull):
                if value not in mapping:
                    return None
                image[key] = mapping[value]
            else:
                image[key] = value
        return image

    def try_map_row(
        row: Row, candidate: Row, mapping: dict[LabeledNull, object]
    ) -> Optional[dict[LabeledNull, object]]:
        if set(row) != set(candidate):
            return None
        extended = dict(mapping)
        for key, value in row.items():
            target_value = candidate[key]
            if isinstance(value, LabeledNull):
                if value in extended:
                    if extended[value] != target_value:
                        return None
                else:
                    extended[value] = target_value
            elif value != target_value:
                return None
        return extended

    # Explicit-stack DFS: the search is one level deep per source row,
    # so recursion would hit the interpreter limit on instances of a
    # few thousand rows.
    total = len(source_rows)
    root = dict(fixed or {})

    def is_identity(mapping: dict[LabeledNull, object]) -> bool:
        return all(null == image for null, image in mapping.items())

    if total == 0:
        return None if forbid_identity and is_identity(root) else root

    mappings: list[Optional[dict[LabeledNull, object]]] = [None] * (total + 1)
    mappings[0] = root
    iterators = [iter(target_sets.get(source_rows[0][0], []))]
    while iterators:
        index = len(iterators) - 1
        _, row = source_rows[index]
        descended = False
        for candidate in iterators[index]:
            extended = try_map_row(row, candidate, mappings[index])
            if extended is None:
                continue
            if index + 1 == total:
                if forbid_identity and is_identity(extended):
                    continue
                return extended
            mappings[index + 1] = extended
            iterators.append(
                iter(target_sets.get(source_rows[index + 1][0], []))
            )
            descended = True
            break
        if not descended:
            iterators.pop()
    return None


def are_hom_equivalent(a: Instance, b: Instance) -> bool:
    """True when homomorphisms exist both ways — the equivalence class
    of universal solutions."""
    return (
        instance_homomorphism(a, b) is not None
        and instance_homomorphism(b, a) is not None
    )
