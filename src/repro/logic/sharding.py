"""Shard-parallel semi-naive chase.

The sequential engine in :mod:`repro.logic.chase` runs one delta round
at a time over one instance.  This module hash-partitions the instance
by a *co-partitioning key* inferred from the dependency set and runs
each round's frontier on a worker pool — one :class:`_ShardWorker`
(a :class:`_SemiNaiveChase` subclass) per shard, threads by default, a
process pool behind ``REPRO_CHASE_PROCESSES=1`` for the CPU-bound
candidate scan.  Derived rows whose partition key lands on another
shard are routed through that shard's bounded delta queue (the
coordinator drains the queues while workers run, so backpressure never
deadlocks the frontier barrier), and egd equalities are reconciled by
a coordinator union-find pass between rounds so the result is
equivalent-modulo-nulls to the sequential chase.

Partitioning scheme
-------------------
:func:`plan_shards` looks for one key attribute per relation such that
every multi-atom dependency body has a variable that (a) appears in
every body atom and (b) sits at the chosen key attribute of each
atom's relation — then every trigger's body rows share the key value
and hash to the same shard, so trigger enumeration is shard-local.
Single-atom bodies impose no constraint (their trigger *is* one row,
local wherever it lives); relations never constrained stay unkeyed and
are partitioned round-robin.  Relations that appear in heads must
carry their key attribute in every head atom (derived rows must be
routable).  When no consistent assignment exists — e.g. a cross-join
body with no shared variable — :func:`sharded_chase` returns ``None``
and :func:`repro.logic.chase.chase` falls back to the sequential
engine (this is "when shards=1 is forced"; see docs/SHARDING.md).

Per-shard execution
-------------------
Workers run lockstep rounds.  Within a round each worker enumerates
its local triggers (with a compiled fast lane for single-body-atom
full tgds that skips the generic homomorphism machinery), charges a
shared step budget, stores local head rows by direct append (row
identity is preserved end-to-end for provenance), and routes remote
rows.  Labeled nulls are minted from strided per-shard label ranges so
runs are deterministic for a fixed shard count.  Egd equalities are
buffered and united globally by the coordinator ordered by
``(shard, sequence)``; the resulting substitution is applied per shard
and rows whose key value was rewritten *migrate* to their new owner.
Frontier memos are sticky across merges (a merged null never reappears
in any row, so stale memo keys are unreachable) — unlike the
sequential engine, which clears them, a worker must never re-fire an
existential frontier whose head row was routed elsewhere.

Recorder events are buffered per worker and flushed to the real
:class:`ChaseRecorder` at frontier boundaries in ``(shard, sequence)``
order, each run prefixed by :meth:`ChaseRecorder.on_shard`, so
provenance merges deterministically.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Optional, Sequence, Union

from repro.errors import ChaseFailure, ChaseNonTermination
from repro.instances.database import Instance, Row, hashable_key
from repro.instances.labeled_null import LabeledNull, NullFactory
from repro.logic.chase import (
    ChaseRecorder,
    ChaseResult,
    ChaseStats,
    _publish_stats,
    _SemiNaiveChase,
    _UnionFind,
    _value,
)
from repro.logic.dependencies import EGD, TGD, Dependency
from repro.logic.terms import Const, Var
from repro.observability.state import STATE as _OBS

#: Per-shard inbox capacity.  Producers block (backpressure) when an
#: inbox is full; the coordinator drains inboxes while workers run, so
#: the round barrier cannot deadlock against a full queue.
_QUEUE_CAP = 8192

#: Rows below this count are scanned inline even when the process pool
#: is enabled — fork/pickle overhead dominates small scans.
_PROCESS_CHUNK = 4096

#: Steps a worker reserves from the shared budget at a time (see
#: :class:`_SharedBudget` — one lock acquisition per chunk, not per
#: step; unused credit is refunded at round boundaries).
_STEP_CREDIT = 64

_MISSING = object()

#: Shared read-only stand-in for the members dict of an absent head
#: relation in the fast firing lane (never mutated).
_EMPTY_MEMBERS: dict = {}


def _use_processes() -> bool:
    return os.environ.get("REPRO_CHASE_PROCESSES", "").strip() in (
        "1", "true", "yes", "on"
    )


# ----------------------------------------------------------------------
# partitioning plan
# ----------------------------------------------------------------------
class ShardPlan:
    """A co-partitioning key assignment: ``keys[relation] = attr``.

    Relations absent from ``keys`` are unkeyed — their rows are dealt
    round-robin and derived rows stay on the deriving shard.
    """

    __slots__ = ("shards", "keys")

    def __init__(self, shards: int, keys: dict[str, str]):
        self.shards = shards
        self.keys = keys

    def owner(self, relation: str, row: Row) -> Optional[int]:
        """The shard owning ``row``, or ``None`` for unkeyed relations."""
        attr = self.keys.get(relation)
        if attr is None:
            return None
        return hash(hashable_key(row.get(attr))) % self.shards


def plan_shards(
    dependencies: Sequence[Union[TGD, EGD]], shards: int
) -> Optional[ShardPlan]:
    """Infer a co-partitioning key per relation, or ``None`` when the
    dependency set admits no consistent assignment (the sequential
    engine is forced then).

    The plan must make every dependency **strongly co-located**: some
    variable ``v`` appears, at the keyed attribute, in *every* body
    atom and (for tgds) *every* head atom.  That single invariant
    guarantees three things at once:

    * triggers are shard-local — all body rows joining on a value of
      ``v`` share a shard;
    * satisfaction probes are *complete* per shard — any witness row
      for a trigger carries the trigger's ``v`` value at the head
      relation's key attribute, so it lives (or lands) on the firing
      shard.  Without this, a shard re-deriving a row that already
      exists elsewhere would inflate step counts for full tgds and
      mint spurious fresh nulls for existential ones;
    * derived rows are born on their owner shard, so the delta queues
      only ever carry rows displaced by egd merge migrations or by
      planner extensions that relax head co-location.

    Any dependency set where no such assignment exists — e.g. a head
    that drops the join variable — runs sequentially.
    """
    if shards <= 1 or not dependencies:
        return None

    # Per dependency: candidate per-relation key-attr assignments, one
    # per variable occurring directly in every atom the plan must
    # co-locate (body + heads for tgds, body for egds).
    constraints: list[list[dict[str, frozenset]]] = []
    for dependency in dependencies:
        body = dependency.body
        if not body:
            return None
        atoms = list(body)
        if isinstance(dependency, TGD):
            atoms.extend(dependency.head)
        direct_vars = [
            {t for _, t in atom.args if isinstance(t, Var)} for atom in atoms
        ]
        shared = set.intersection(*direct_vars)
        options: list[dict[str, frozenset]] = []
        for var in sorted(shared, key=lambda v: v.name):
            per_rel: dict[str, frozenset] = {}
            feasible = True
            for atom in atoms:
                attrs = frozenset(
                    name for name, term in atom.args
                    if isinstance(term, Var) and term == var
                )
                prev = per_rel.get(atom.relation)
                narrowed = attrs if prev is None else prev & attrs
                if not narrowed:
                    feasible = False
                    break
                per_rel[atom.relation] = narrowed
            if feasible:
                options.append(per_rel)
        if not options:
            return None
        constraints.append(options)

    def search(index: int, allowed: dict[str, frozenset]):
        if index == len(constraints):
            return allowed
        for option in constraints[index]:
            narrowed = dict(allowed)
            feasible = True
            for relation, attrs in option.items():
                base = narrowed.get(relation)
                base = attrs if base is None else base & attrs
                if not base:
                    feasible = False
                    break
                narrowed[relation] = base
            if feasible:
                result = search(index + 1, narrowed)
                if result is not None:
                    return result
        return None

    allowed = search(0, {})
    if allowed is None:
        return None
    keys = {relation: min(attrs) for relation, attrs in allowed.items()}
    return ShardPlan(shards, keys)


# ----------------------------------------------------------------------
# shared step budget and strided null labels
# ----------------------------------------------------------------------
class _SharedBudget:
    """The ``max_steps`` budget, charged atomically across workers.

    Workers take credit in chunks (:meth:`reserve`) so the hot firing
    loop pays the lock once per ``_STEP_CREDIT`` steps instead of once
    per step, and hand unused credit back (:meth:`refund`) at round
    boundaries — so ``used`` is exact whenever all workers are parked.
    """

    __slots__ = ("limit", "used", "_lock")

    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0
        self._lock = threading.Lock()

    def charge(self) -> None:
        with self._lock:
            if self.used >= self.limit:
                raise ChaseNonTermination(
                    f"chase exceeded {self.limit} steps; dependency "
                    "set is probably not weakly acyclic"
                )
            self.used += 1

    def reserve(self, amount: int) -> int:
        """Claim up to ``amount`` steps; raises when the budget is dry."""
        with self._lock:
            remaining = self.limit - self.used
            if remaining <= 0:
                raise ChaseNonTermination(
                    f"chase exceeded {self.limit} steps; dependency "
                    "set is probably not weakly acyclic"
                )
            granted = amount if amount <= remaining else remaining
            self.used += granted
            return granted

    def refund(self, amount: int) -> None:
        if amount:
            with self._lock:
                self.used -= amount


class _StridedNullFactory(NullFactory):
    """Mints labels ``base + shard, base + shard + stride, …`` — each
    shard owns a disjoint label residue class, so parallel minting is
    deterministic per shard without any cross-shard coordination."""

    def __init__(self, base: int, shard: int, stride: int):
        self._next = base + shard
        self._stride = stride
        self.max_used = -1

    def fresh(self, hint: str = "") -> LabeledNull:
        label = self._next
        self._next += self._stride
        self.max_used = label
        return LabeledNull(label, hint)


# ----------------------------------------------------------------------
# fast lane: compiled single-body-atom full tgds
# ----------------------------------------------------------------------
class _FastFullTGD:
    """A compiled single-body-atom full tgd.

    The generic path builds an assignment dict per trigger through
    ``iter_homomorphisms`` plus a full-body-variable dedupe key; for a
    single-atom full tgd the trigger *is* the row, so the whole cycle
    collapses to: attribute presence/constant/repeated-variable checks,
    one frontier key, one projection-set membership probe per head
    atom, and a template-built head row.  This per-row lane is what
    makes sharding pay even on one core.
    """

    __slots__ = (
        "relation", "required", "const_checks", "eq_checks",
        "var_attr", "frontier_vars", "frontier_attrs",
        "head_probes", "head_builds",
    )

    @classmethod
    def compile(cls, dependency: Dependency) -> Optional["_FastFullTGD"]:
        if not isinstance(dependency, TGD) or not dependency.is_full:
            return None
        if len(dependency.body) != 1:
            return None
        atom = dependency.body[0]
        spec = cls()
        spec.relation = atom.relation
        required: list[str] = []
        const_checks: list[tuple[str, object]] = []
        eq_checks: list[tuple[str, str]] = []
        var_attr: dict[Var, str] = {}
        for name, term in atom.args:
            required.append(name)
            if isinstance(term, Const):
                const_checks.append((name, term.value))
            elif isinstance(term, Var):
                first = var_attr.get(term)
                if first is None:
                    var_attr[term] = name
                else:
                    eq_checks.append((first, name))
            else:
                return None  # function terms: generic path
        spec.required = tuple(required)
        spec.const_checks = tuple(const_checks)
        spec.eq_checks = tuple(eq_checks)
        spec.var_attr = var_attr
        frontier = tuple(
            sorted(dependency.frontier(), key=lambda v: v.name)
        )
        spec.frontier_vars = frontier
        spec.frontier_attrs = tuple(var_attr[v] for v in frontier)
        head_probes = []  # (relation, attrs, ((body_attr|None, const_hk), …))
        head_builds = []  # (relation, ((head_attr, body_attr|None, const), …))
        for head_atom in dependency.head:
            attrs = tuple(name for name, _ in head_atom.args)
            probe_parts = []
            build_parts = []
            for name, term in head_atom.args:
                if isinstance(term, Const):
                    probe_parts.append((None, hashable_key(term.value)))
                    build_parts.append((name, None, term.value))
                elif isinstance(term, Var):
                    source = var_attr.get(term)
                    if source is None:
                        return None  # not actually full w.r.t. this body
                    probe_parts.append((source, None))
                    build_parts.append((name, source, None))
                else:
                    return None
            head_probes.append(
                (head_atom.relation, attrs, tuple(probe_parts))
            )
            head_builds.append((head_atom.relation, tuple(build_parts)))
        spec.head_probes = tuple(head_probes)
        spec.head_builds = tuple(head_builds)
        return spec

    def scan_data(self) -> tuple:
        """The picklable subset shipped to process-pool scan workers."""
        return (
            self.required, self.const_checks, self.eq_checks,
            self.frontier_attrs,
        )


def _scan_chunk(scan_data: tuple, rows: list[Row]) -> list:
    """Process-pool body: filter ``rows`` against the compiled checks
    and compute frontier keys.  Returns ``(index, key_or_None)`` pairs
    — ``None`` keys flag rows containing labeled nulls, whose hashable
    keys use an identity-compared sentinel tag that does not survive
    pickling, so the parent recomputes them inline."""
    required, const_checks, eq_checks, frontier_attrs = scan_data
    out = []
    for index, row in enumerate(rows):
        ok = True
        for attr in required:
            if attr not in row:
                ok = False
                break
        if not ok:
            continue
        for attr, value in const_checks:
            if row[attr] != value:
                ok = False
                break
        if not ok:
            continue
        for left, right in eq_checks:
            if row[left] != row[right]:
                ok = False
                break
        if not ok:
            continue
        if any(isinstance(row[a], LabeledNull) for a in frontier_attrs):
            out.append((index, None))
        else:
            out.append(
                (index, tuple([hashable_key(row[a]) for a in frontier_attrs]))
            )
    return out


# ----------------------------------------------------------------------
# per-shard worker
# ----------------------------------------------------------------------
class _EventBuffer(ChaseRecorder):
    """Worker-side recorder proxy: stamps each tgd firing with the
    worker's sequence counter for the coordinator's ordered flush."""

    __slots__ = ("worker",)

    def __init__(self, worker: "_ShardWorker"):
        self.worker = worker

    def on_tgd_fire(self, dep_index, tgd, frontier_key, frontier_items,
                    rows) -> None:
        worker = self.worker
        worker.seq += 1
        worker.events.append(
            (worker.seq, dep_index, tgd, frontier_key, frontier_items, rows)
        )


class _ShardWorker(_SemiNaiveChase):
    """One shard's engine: the sequential chase over the shard's
    sub-instance, with step charging, head-row storage and egd
    collection rerouted for coordination."""

    def __init__(
        self,
        shard_id: int,
        plan: ShardPlan,
        instance: Instance,
        dependencies: Sequence[Union[TGD, EGD]],
        factory: _StridedNullFactory,
        budget: _SharedBudget,
        inboxes: list,
        record_events: bool,
    ) -> None:
        super().__init__(instance, dependencies, factory, budget.limit)
        self.shard_id = shard_id
        self.plan = plan
        self.budget = budget
        self.inboxes = inboxes
        self.seq = 0
        self.routed = 0
        self.events: list = []
        self.round_equalities: list = []
        self.record_events = record_events
        if record_events:
            self.recorder = _EventBuffer(self)
        #: relation → rows this shard derived or adopted; extended into
        #: the working instance at the end of the run, in shard order.
        self.derived: dict[str, list[Row]] = {}
        self.fast: list[Optional[_FastFullTGD]] = [
            _FastFullTGD.compile(d) for d in self.dependencies
        ]
        self.scan_pool = None  # set by the coordinator (process flag)
        self._credit = 0  # steps pre-reserved from the shared budget

    # -- hooks overridden from the sequential engine -------------------
    def _charge_step(self) -> None:
        credit = self._credit
        if not credit:
            credit = self.budget.reserve(_STEP_CREDIT)
        self._credit = credit - 1
        self.steps += 1

    def _store_head_row(
        self, relation: str, row: Row, inserted: dict[str, list[Row]]
    ) -> Row:
        attr = self.plan.keys.get(relation)
        if attr is not None:
            owner = hash(hashable_key(row.get(attr))) % self.plan.shards
            if owner != self.shard_id:
                self.seq += 1
                self.routed += 1
                self._route(owner, (self.shard_id, self.seq, relation, row))
                return row
        # Local store by direct append: row identity is preserved (the
        # index watermark contract absorbs appends), which provenance
        # and in-place merge rewrites both rely on.
        self.instance.relations.setdefault(relation, []).append(row)
        inserted.setdefault(relation, []).append(row)
        if self.has_egds:
            self._record_nulls(relation, row)
        self.derived.setdefault(relation, []).append(row)
        return row

    def _route(self, owner: int, envelope: tuple) -> None:
        """Hand an envelope to another shard's bounded inbox.  The
        fast path is a non-blocking put; when the inbox is full the
        worker blocks until the coordinator drains it, and the wait is
        recorded as a backpressure event (histogram + journal)."""
        inbox = self.inboxes[owner]
        try:
            inbox.put_nowait(envelope)
        except queue.Full:
            wait_start = time.perf_counter()
            inbox.put(envelope)
            if _OBS.enabled:
                from repro.observability.journal import record_backpressure

                record_backpressure(
                    "chase.shard.inbox",
                    time.perf_counter() - wait_start,
                    shard=self.shard_id,
                    owner=owner,
                )

    def _collect_egd(self, index, egd, triggers, union_find) -> bool:
        # Buffer equalities for the coordinator's global union-find;
        # only constant–constant conflicts fail fast locally.
        record = self.record_events
        variables = self.body_variables[index]
        for assignment in triggers:
            for equality in egd.equalities:
                left = _value(equality.left, assignment)
                right = _value(equality.right, assignment)
                if left == right:
                    continue
                if not isinstance(left, LabeledNull) and not isinstance(
                    right, LabeledNull
                ):
                    raise ChaseFailure(
                        f"egd {egd.name or egd} equates distinct constants "
                        f"{left!r} and {right!r}"
                    )
                self.seq += 1
                body_key = (
                    tuple(hashable_key(assignment[v]) for v in variables)
                    if record else ()
                )
                self.round_equalities.append(
                    (self.seq, index, body_key, left, right)
                )
        return False

    # -- one frontier round --------------------------------------------
    def run_round(self, delta: Optional[dict[str, list[Row]]]) -> dict:
        try:
            if not _OBS.enabled:
                return self._run_round(delta)
            from repro.observability.tracing import tracer

            # The coordinator submits this method wrapped in
            # ``propagating(...)``, so the span joins the caller's
            # ``logic.chase`` trace via the attached context.
            with tracer.span("chase.shard.round", shard=self.shard_id):
                return self._run_round(delta)
        finally:
            # Hand unused step credit back so ``budget.used`` is exact
            # at every round barrier (and at non-termination/failure).
            if self._credit:
                self.budget.refund(self._credit)
                self._credit = 0

    def _run_round(self, delta: Optional[dict[str, list[Row]]]) -> dict:
        inserted: dict[str, list[Row]] = {}
        for index, dependency in enumerate(self.dependencies):
            if delta is not None and not (
                self.body_relations[index] & delta.keys()
            ):
                continue
            name = self.names[index]
            dep_start = time.perf_counter()
            fast = self.fast[index]
            if fast is not None:
                examined = self._fire_fast(index, fast, delta, inserted)
            else:
                triggers = list(self._triggers(index, dependency, delta))
                examined = len(triggers)
                if isinstance(dependency, TGD):
                    self._fire_tgd(index, dependency, triggers, inserted)
                else:
                    self._collect_egd(index, dependency, triggers, None)
            self.stats.triggers_examined[name] = (
                self.stats.triggers_examined.get(name, 0) + examined
            )
            self.stats.dep_wall[name] = (
                self.stats.dep_wall.get(name, 0.0)
                + (time.perf_counter() - dep_start)
            )
        return inserted

    def _fire_fast(
        self,
        index: int,
        spec: _FastFullTGD,
        delta: Optional[dict[str, list[Row]]],
        inserted: dict[str, list[Row]],
    ) -> int:
        if delta is not None:
            rows = delta.get(spec.relation)
        else:
            rows = self.instance.relations.get(spec.relation)
        if not rows:
            return 0
        # The fused scan+fire loop below appends head rows directly to
        # the backing lists; snapshot the scan source when it could be
        # one of them (self-feeding tgd fired outside a delta round).
        if delta is None and any(
            relation == spec.relation for relation, _ in spec.head_builds
        ):
            rows = list(rows)
        scanned = None
        if self.scan_pool is not None and len(rows) >= _PROCESS_CHUNK:
            scanned = self._fast_candidates(spec, rows)
        memo = self.satisfied[index]
        name = self.names[index]
        tgd = self.dependencies[index]
        instance = self.instance
        relations = instance.relations
        hk = hashable_key
        required = spec.required
        const_checks = spec.const_checks
        eq_checks = spec.eq_checks
        fattrs = spec.frontier_attrs
        # Per-head state hoisted out of the row loop.  ``members`` is
        # the head relation's projection index captured once (the
        # ``fresh`` overlay covers rows this very loop derives, local
        # *and* routed — a routed duplicate would be dropped at
        # delivery anyway, so suppressing it here matches the
        # sequential satisfaction test).  ``stores`` caches the backing
        # / inserted / derived lists, resolved on first local store so
        # no empty relation is ever created.
        probes = []
        for relation, attrs, parts in spec.head_probes:
            entry = instance.projection_entry(relation, attrs)
            probes.append((
                parts,
                entry.members if entry is not None else _EMPTY_MEMBERS,
                set(),
            ))
        single_head = len(probes) == 1
        stores: list[list] = [
            [relation, parts, self.plan.keys.get(relation), None, None, None]
            for relation, parts in spec.head_builds
        ]
        shards_n = self.plan.shards
        shard_id = self.shard_id
        route = self._route
        record = self.recorder is not None
        has_egds = self.has_egds
        budget = self.budget
        credit = self._credit
        steps = 0
        examined = 0
        fired = 0
        try:
            for item in (rows if scanned is None else scanned):
                if scanned is None:
                    row = item
                    try:
                        ok = True
                        for attr in required:
                            if attr not in row:
                                ok = False
                                break
                        if not ok:
                            continue
                        if const_checks:
                            for attr, value in const_checks:
                                if row[attr] != value:
                                    ok = False
                                    break
                            if not ok:
                                continue
                        if eq_checks:
                            for left, right in eq_checks:
                                if row[left] != row[right]:
                                    ok = False
                                    break
                            if not ok:
                                continue
                        key = tuple([hk(row[a]) for a in fattrs])
                    except KeyError:
                        continue
                else:
                    row, key = item
                examined += 1
                if key in memo:
                    continue
                # Satisfaction probe: every head projection must already
                # be present (index members ∪ this loop's overlay).
                if single_head:
                    parts, members, fresh = probes[0]
                    value0 = tuple([
                        hk(row[s]) if s is not None else c for s, c in parts
                    ])
                    satisfied = value0 in members or value0 in fresh
                    probe_values = (value0,)
                else:
                    satisfied = True
                    probe_values = []
                    for parts, members, fresh in probes:
                        value = tuple([
                            hk(row[s]) if s is not None else c
                            for s, c in parts
                        ])
                        probe_values.append(value)
                        if value not in members and value not in fresh:
                            satisfied = False
                if satisfied:
                    memo.add(key)
                    continue
                if not credit:
                    credit = budget.reserve(_STEP_CREDIT)
                credit -= 1
                steps += 1
                head_rows = [] if record else None
                for i, store in enumerate(stores):
                    relation, parts, key_attr, backing, ilist, dlist = store
                    new_row: Row = {
                        attr: (row[s] if s is not None else c)
                        for attr, s, c in parts
                    }
                    probes[i][2].add(probe_values[i])
                    if key_attr is not None:
                        owner = hash(hk(new_row.get(key_attr))) % shards_n
                        if owner != shard_id:
                            self.seq += 1
                            self.routed += 1
                            route(
                                owner,
                                (shard_id, self.seq, relation, new_row),
                            )
                            if record:
                                head_rows.append((relation, new_row))
                            continue
                    if backing is None:
                        backing = relations.setdefault(relation, [])
                        ilist = inserted.setdefault(relation, [])
                        dlist = self.derived.setdefault(relation, [])
                        store[3] = backing
                        store[4] = ilist
                        store[5] = dlist
                    backing.append(new_row)
                    ilist.append(new_row)
                    dlist.append(new_row)
                    if has_egds:
                        self._record_nulls(relation, new_row)
                    if record:
                        head_rows.append((relation, new_row))
                if record:
                    self.recorder.on_tgd_fire(
                        index, tgd, key,
                        [(v, row[spec.var_attr[v]])
                         for v in spec.frontier_vars],
                        head_rows,
                    )
                memo.add(key)
                fired += 1
        finally:
            self._credit = credit
            self.steps += steps
        if fired:
            self.fired[name] = self.fired.get(name, 0) + fired
        return examined

    def _fast_candidates(self, spec: _FastFullTGD, rows: list[Row]):
        """Yield ``(row, frontier_key)`` for rows passing the compiled
        checks — via the process pool when enabled and worthwhile."""
        pool = self.scan_pool
        if pool is not None and len(rows) >= _PROCESS_CHUNK:
            try:
                hits = pool.submit(
                    _scan_chunk, spec.scan_data(), rows
                ).result()
            except Exception:
                hits = None  # unpicklable values etc.: scan inline
            if hits is not None:
                attrs = spec.frontier_attrs
                return [
                    (rows[i],
                     key if key is not None
                     else tuple([hashable_key(rows[i][a]) for a in attrs]))
                    for i, key in hits
                ]
        return self._scan_inline(spec, rows)

    def _scan_inline(self, spec: _FastFullTGD, rows: list[Row]):
        hk = hashable_key
        attrs = spec.frontier_attrs
        required = spec.required
        const_checks = spec.const_checks
        eq_checks = spec.eq_checks
        out = []
        for row in rows:
            try:
                if const_checks:
                    skip = False
                    for attr, value in const_checks:
                        if row.get(attr, _MISSING) != value:
                            skip = True
                            break
                    if skip:
                        continue
                if eq_checks:
                    skip = False
                    for left, right in eq_checks:
                        if row[left] != row[right]:
                            skip = True
                            break
                    if skip:
                        continue
                ok = True
                for attr in required:
                    if attr not in row:
                        ok = False
                        break
                if not ok:
                    continue
                out.append(
                    (row, tuple([hk(row[a]) for a in attrs]))
                )
            except KeyError:
                continue
        return out

    # -- merge application ---------------------------------------------
    def apply_substitution(self, mapping: dict) -> tuple:
        """Apply the coordinator's substitution to this shard's rows.

        Returns ``(modified, migrations, positions)``: locally rewritten
        rows still owned here, ``(owner, relation, row)`` for rows whose
        key value was rewritten onto another shard, and the recorder's
        rewritten positions.  Frontier memos stay sticky — see the
        module docstring.
        """
        touched: dict[int, tuple[str, Row]] = {}
        positions: list = []
        record = self.record_events
        for null, replacement in mapping.items():
            occurrences = self.null_occurrences.pop(null, None)
            if not occurrences:
                continue
            for row_id, (relation, row) in occurrences.items():
                for attr, value in row.items():
                    if isinstance(value, LabeledNull) and value == null:
                        row[attr] = replacement
                        if record:
                            positions.append(
                                (relation, row, attr, null, replacement)
                            )
                touched[row_id] = (relation, row)
                if isinstance(replacement, LabeledNull):
                    self.null_occurrences.setdefault(replacement, {})[
                        row_id
                    ] = (relation, row)
        if not touched:
            return [], [], positions
        self.instance.mark_dirty()
        modified: list[tuple[str, Row]] = []
        migrations: list[tuple[int, str, Row]] = []
        migrating: dict[str, list[Row]] = {}
        for relation, row in touched.values():
            attr = self.plan.keys.get(relation)
            if attr is not None:
                owner = hash(hashable_key(row.get(attr))) % self.plan.shards
                if owner != self.shard_id:
                    migrations.append((owner, relation, row))
                    migrating.setdefault(relation, []).append(row)
                    continue
            modified.append((relation, row))
        for relation, rows in migrating.items():
            self.instance.remove_rows(relation, rows)
            for row in rows:
                self._forget_row_nulls(relation, row)
        return modified, migrations, positions

    def _forget_row_nulls(self, relation: str, row: Row) -> None:
        row_id = id(row)
        for value in row.values():
            if isinstance(value, LabeledNull):
                occurrences = self.null_occurrences.get(value)
                if occurrences:
                    occurrences.pop(row_id, None)

    def adopt(self, relation: str, row: Row, derived: bool) -> None:
        """Take ownership of a routed or migrated row (direct append —
        identity preserved)."""
        self.instance.relations.setdefault(relation, []).append(row)
        if self.has_egds:
            self._record_nulls(relation, row)
        if derived:
            self.derived.setdefault(relation, []).append(row)


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------
class _ShardedChase:
    """Lockstep round coordinator over ``plan.shards`` workers."""

    def __init__(
        self,
        working: Instance,
        dependencies: Sequence[Union[TGD, EGD]],
        factory: NullFactory,
        max_steps: int,
        plan: ShardPlan,
        recorder: Optional[ChaseRecorder],
        initial_delta: Optional[dict[str, list[Row]]],
    ) -> None:
        self.working = working
        self.dependencies = list(dependencies)
        self.factory = factory
        self.plan = plan
        self.recorder = recorder
        self.initial_delta = initial_delta
        self.budget = _SharedBudget(max_steps)
        shards = plan.shards
        self.inboxes = [
            queue.Queue(maxsize=_QUEUE_CAP) for _ in range(shards)
        ]
        base = factory.peek()
        self._delta_owner: dict[int, int] = {}
        instances = self._partition()
        self.workers = [
            _ShardWorker(
                shard, plan, instances[shard], self.dependencies,
                _StridedNullFactory(base, shard, shards), self.budget,
                self.inboxes, recorder is not None,
            )
            for shard in range(shards)
        ]
        self.stats = ChaseStats()
        self.stats.dep_kind = dict(self.workers[0].stats.dep_kind)
        self.fired: dict[str, int] = {}
        self.merged_any = False
        self.rows_routed = 0
        self.migrations = 0
        self._pool = None
        self._scan_pool = None

    # ------------------------------------------------------------------
    def _partition(self) -> list[Instance]:
        plan = self.plan
        shards = plan.shards
        instances = [Instance() for _ in range(shards)]
        delta_ids = set()
        if self.initial_delta:
            for rows in self.initial_delta.values():
                delta_ids.update(id(row) for row in rows)
        for relation, rows in self.working.relations.items():
            targets = [instances[s].relations.setdefault(relation, [])
                       for s in range(shards)]
            key = plan.keys.get(relation)
            key_values = None
            if key is not None:
                # Read the key column off the cached columnar batch when
                # it covers every row — one list traversal instead of a
                # dict lookup per row.
                batch = self.working.column_batch(relation)
                column = batch.cols.get(key)
                if column is not None and column.full:
                    key_values = column.values
            if key is None:
                for index, row in enumerate(rows):
                    shard = index % shards
                    targets[shard].append(row)
                    if id(row) in delta_ids:
                        self._delta_owner[id(row)] = shard
            elif key_values is not None:
                for row, value in zip(rows, key_values):
                    shard = hash(hashable_key(value)) % shards
                    targets[shard].append(row)
                    if id(row) in delta_ids:
                        self._delta_owner[id(row)] = shard
            else:
                for row in rows:
                    shard = hash(hashable_key(row.get(key))) % shards
                    targets[shard].append(row)
                    if id(row) in delta_ids:
                        self._delta_owner[id(row)] = shard
        for instance in instances:
            for relation in list(instance.relations):
                if not instance.relations[relation]:
                    del instance.relations[relation]
        return instances

    def _initial_deltas(self) -> list:
        if self.initial_delta is None:
            return [None] * self.plan.shards
        deltas: list[dict[str, list[Row]]] = [
            {} for _ in range(self.plan.shards)
        ]
        for relation, rows in self.initial_delta.items():
            for row in rows:
                shard = self._delta_owner.get(id(row))
                if shard is None:
                    owner = self.plan.owner(relation, row)
                    shard = 0 if owner is None else owner
                deltas[shard].setdefault(relation, []).append(row)
        return deltas

    # ------------------------------------------------------------------
    def run(self) -> ChaseResult:
        start = time.perf_counter()
        shards = self.plan.shards
        self._pool = ThreadPoolExecutor(
            max_workers=shards, thread_name_prefix="chase-shard"
        )
        if _use_processes():
            try:
                from concurrent.futures import ProcessPoolExecutor

                self._scan_pool = ProcessPoolExecutor(max_workers=shards)
                # Warm the pool from the coordinator thread: forking
                # lazily from inside a worker thread is fork-unsafe.
                self._scan_pool.submit(
                    _scan_chunk, ((), (), (), ()), []
                ).result()
                for worker in self.workers:
                    worker.scan_pool = self._scan_pool
            except (ImportError, OSError):
                self._scan_pool = None
        try:
            return self._run_rounds(start)
        finally:
            self._pool.shutdown(wait=True)
            if self._scan_pool is not None:
                self._scan_pool.shutdown(wait=True)

    def _run_rounds(self, start: float) -> ChaseResult:
        shards = self.plan.shards
        # With no keyed relation, no worker can ever route a row, so
        # the round barrier needs no concurrent inbox draining.
        can_route = bool(self.plan.keys)
        deltas: list = self._initial_deltas()
        # Capture the coordinator's trace context once (the
        # ``logic.chase`` span is active on this thread) and wrap every
        # worker entry point with it, so round spans on the pool's
        # threads join this trace instead of becoming orphan roots.
        round_fns = [worker.run_round for worker in self.workers]
        if _OBS.enabled:
            from repro.observability.context import propagating

            round_fns = [propagating(fn) for fn in round_fns]
        while True:
            self.stats.rounds += 1
            futures = [
                self._pool.submit(round_fns[shard], deltas[shard])
                for shard, worker in enumerate(self.workers)
            ]
            staged: list[list] = [[] for _ in range(shards)]
            if can_route:
                pending = futures
                while pending:
                    done, pending = wait(
                        pending, timeout=0.002, return_when=FIRST_COMPLETED
                    )
                    self._drain(staged)
                self._drain(staged)
            else:
                wait(futures)
            inserted = [future.result() for future in futures]
            arrivals, remap = self._deliver(staged)
            self._flush_tgd_events(remap)
            modified, migrated = self._reconcile()
            deltas = []
            total = 0
            for shard in range(shards):
                extra = (arrivals[shard], modified[shard], migrated[shard])
                if not any(extra):
                    # Common case: nothing was routed, rewritten or
                    # migrated this round — the worker's own inserts
                    # (already per-row unique) are the next delta.
                    delta = inserted[shard]
                    total += sum(len(rows) for rows in delta.values())
                    deltas.append(delta)
                    continue
                seen: set[int] = set()
                delta = {}
                for source in (inserted[shard],) + extra:
                    for relation, rows in source.items():
                        for row in rows:
                            if id(row) in seen:
                                continue
                            seen.add(id(row))
                            delta.setdefault(relation, []).append(row)
                total += len(seen)
                deltas.append(delta)
            self.stats.delta_sizes.append(total)
            if _OBS.enabled:
                from repro.observability.journal import journal

                journal(
                    "chase.round",
                    round=self.stats.rounds,
                    delta_rows=total,
                    rows_routed=self.rows_routed,
                    shards=shards,
                )
            if not total:
                break
        return self._finalize(start)

    def _drain(self, staged: list[list]) -> None:
        for shard, inbox in enumerate(self.inboxes):
            bucket = staged[shard]
            while True:
                try:
                    bucket.append(inbox.get_nowait())
                except queue.Empty:
                    break

    # ------------------------------------------------------------------
    def _deliver(self, staged: list[list]) -> tuple[list, dict]:
        """Adopt routed rows at their owners, deduplicating exact
        duplicates (the firing shard could not see the owner's rows, so
        its head-satisfaction test may have missed)."""
        arrivals: list[dict[str, list[Row]]] = [
            {} for _ in range(self.plan.shards)
        ]
        remap: dict[int, Row] = {}
        for shard, envelopes in enumerate(staged):
            if not envelopes:
                continue
            envelopes.sort(key=lambda e: (e[0], e[1]))
            worker = self.workers[shard]
            instance = worker.instance
            for _origin, _seq, relation, row in envelopes:
                self.rows_routed += 1
                existing = self._find_identical(instance, relation, row)
                if existing is not None:
                    remap[id(row)] = existing
                    continue
                worker.adopt(relation, row, derived=True)
                arrivals[shard].setdefault(relation, []).append(row)
        return arrivals, remap

    @staticmethod
    def _find_identical(
        instance: Instance, relation: str, row: Row
    ) -> Optional[Row]:
        attrs = tuple(sorted(row))
        if not attrs:
            return None
        values = tuple(hashable_key(row[a]) for a in attrs)
        if not instance.projection_member(relation, attrs, values):
            return None
        for candidate in instance.index_lookup(relation, attrs[0],
                                               row[attrs[0]]):
            if len(candidate) == len(row) and candidate == row:
                return candidate
        return None

    def _flush_tgd_events(self, remap: dict[int, Row]) -> None:
        recorder = self.recorder
        if recorder is None:
            return
        entries = []
        for worker in self.workers:
            for event in worker.events:
                entries.append((worker.shard_id,) + event)
            worker.events.clear()
        entries.sort(key=lambda e: (e[0], e[1]))
        current = None
        for shard, _seq, dep_index, tgd, key, frontier_items, rows in entries:
            if shard != current:
                recorder.on_shard(shard)
                current = shard
            if remap:
                rows = [
                    (relation, remap.get(id(row), row))
                    for relation, row in rows
                ]
            recorder.on_tgd_fire(dep_index, tgd, key, frontier_items, rows)

    # ------------------------------------------------------------------
    def _reconcile(self) -> tuple[list, list]:
        """Global egd pass: union buffered equalities in deterministic
        ``(shard, sequence)`` order, apply the substitution per shard,
        and migrate rows whose key value was rewritten."""
        shards = self.plan.shards
        modified: list[dict[str, list[Row]]] = [{} for _ in range(shards)]
        migrated: list[dict[str, list[Row]]] = [{} for _ in range(shards)]
        equalities = []
        for worker in self.workers:
            for event in worker.round_equalities:
                equalities.append((worker.shard_id,) + event)
            worker.round_equalities.clear()
        if not equalities:
            return modified, migrated
        equalities.sort(key=lambda e: (e[0], e[1]))
        union_find = _UnionFind()
        recorder = self.recorder
        current = None
        for shard, _seq, dep_index, body_key, left, right in equalities:
            dependency = self.dependencies[dep_index]
            name = dependency.name or str(dependency)[:60]
            if union_find.union(left, right, name):
                self.budget.charge()
                self.stats.merges += 1
                display = self.workers[0].names[dep_index]
                self.fired[display] = self.fired.get(display, 0) + 1
                if recorder is not None:
                    if shard != current:
                        recorder.on_shard(shard)
                        current = shard
                    recorder.on_egd_union(
                        dep_index, dependency, body_key, left, right
                    )
        mapping = union_find.substitution()
        if not mapping:
            return modified, migrated
        self.merged_any = True
        positions: list = []
        moves: list[tuple[int, str, Row]] = []
        for shard, worker in enumerate(self.workers):
            local, migrations, shard_positions = (
                worker.apply_substitution(mapping)
            )
            for relation, row in local:
                modified[shard].setdefault(relation, []).append(row)
            moves.extend(migrations)
            positions.extend(shard_positions)
        for owner, relation, row in moves:
            self.migrations += 1
            # Migrated rows keep their place in the origin shard's
            # derived list (each derived row merges into the working
            # instance exactly once), so adopt non-derived here.
            self.workers[owner].adopt(relation, row, derived=False)
            migrated[owner].setdefault(relation, []).append(row)
        if recorder is not None and positions:
            recorder.on_shard(-1)
            recorder.on_substitution(positions)
        if _OBS.enabled:
            from repro.observability.journal import journal

            journal(
                "chase.egd.reconcile",
                merges=len(mapping),
                migrations=len(moves),
            )
        return modified, migrated

    # ------------------------------------------------------------------
    def _finalize(self, start: float) -> ChaseResult:
        stats = self.stats
        fired = dict(self.fired)
        for worker in self.workers:
            for name, count in worker.fired.items():
                fired[name] = fired.get(name, 0) + count
            for name, count in worker.stats.triggers_examined.items():
                stats.triggers_examined[name] = (
                    stats.triggers_examined.get(name, 0) + count
                )
            for name, seconds in worker.stats.dep_wall.items():
                stats.dep_wall[name] = (
                    stats.dep_wall.get(name, 0.0) + seconds
                )
            shard_stats = worker.instance.index_stats
            stats.index_hits += shard_stats["hits"]
            stats.index_extends += shard_stats["extends"]
            stats.index_rebuilds += shard_stats["rebuilds"]
            for relation, rows in worker.derived.items():
                self.working.relations.setdefault(relation, []).extend(rows)
        if self.merged_any:
            self.working.mark_dirty()
        max_label = max(
            (worker.factory.max_used for worker in self.workers),
            default=-1,
        )
        if max_label >= 0:
            self.factory.advance_to(max_label + 1)
        stats.dep_fired = dict(fired)
        stats.wall_time = time.perf_counter() - start
        return ChaseResult(
            instance=self.working,
            steps=self.budget.used,
            fired=fired,
            null_factory=self.factory,
            stats=stats,
        )


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def sharded_chase(
    working: Instance,
    dependencies: Sequence[Union[TGD, EGD]],
    factory: NullFactory,
    max_steps: int,
    shards: int,
    recorder: Optional[ChaseRecorder] = None,
    initial_delta: Optional[dict[str, list[Row]]] = None,
) -> Optional[ChaseResult]:
    """Run the shard-parallel chase, or return ``None`` when the
    dependency set admits no co-partitioning (the caller falls back to
    the sequential engine)."""
    plan = plan_shards(dependencies, shards)
    if plan is None:
        return None
    engine = _ShardedChase(
        working, dependencies, factory, max_steps, plan,
        recorder, initial_delta,
    )
    if not _OBS.enabled:
        return engine.run()
    from repro.observability.metrics import registry
    from repro.observability.tracing import tracer

    with tracer.span(
        "logic.chase",
        dependencies=len(dependencies),
        source_rows=working.total_rows(),
        shards=plan.shards,
    ) as span:
        result = engine.run()
        span.set_attributes(rounds=result.stats.rounds, steps=result.steps)
        _publish_stats(result.stats, result.steps)
        registry.counter("chase.shard.runs").inc()
        registry.counter("chase.shard.rows_routed").inc(engine.rows_routed)
        registry.counter("chase.shard.migrations").inc(engine.migrations)
        registry.gauge("chase.shard.count").set(plan.shards)
    return result
