"""Certain answers over universal solutions.

"A query over the target should return only those tuples that are in
the output of the query for every target database that satisfies the
constraints" (paper, Section 4).  For (unions of) conjunctive queries,
this is *naive evaluation*: run the query on a universal solution and
discard answers that contain labeled nulls.

Two execution paths share these semantics.  The reference path
enumerates homomorphisms directly; the ``compiled`` engine translates
the CQ to relational algebra (:mod:`repro.logic.cq_compile`) and runs
it through the plan-cached closure executor, falling back to the
reference search for queries the translation declines.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.algebra.evaluator import evaluate, get_default_engine
from repro.instances.database import Instance
from repro.instances.labeled_null import LabeledNull
from repro.logic.cq_compile import answers_from_rows, translate_cq
from repro.logic.formulas import ConjunctiveQuery
from repro.logic.homomorphism import iter_homomorphisms


def naive_evaluate(
    query: ConjunctiveQuery,
    instance: Instance,
    engine: Optional[str] = None,
) -> list[tuple]:
    """All answer tuples of ``query`` over ``instance`` (nulls allowed
    to bind variables; answers may contain nulls).

    ``engine="vectorized"``/``"compiled"`` (or the process default)
    runs the algebra translation through that engine's plan cache;
    ``engine="interpreted"`` forces the reference homomorphism
    enumeration.  Answer *sets* are identical; ordering may differ
    between the paths.
    """
    resolved = engine if engine is not None else get_default_engine()
    if resolved in ("vectorized", "compiled"):
        plan = translate_cq(query)
        if plan is not None:
            rows = evaluate(plan, instance, engine=resolved)
            return answers_from_rows(query, rows)
    answers: list[tuple] = []
    seen: set[tuple] = set()
    for assignment in iter_homomorphisms(query.body, instance, query.conditions):
        answer = tuple(assignment[v] for v in query.head)
        key = tuple(
            ("⊥", v.label) if isinstance(v, LabeledNull) else ("c", v)
            for v in answer
        )
        if key not in seen:
            seen.add(key)
            answers.append(answer)
    return answers


def certain_answers(
    query: Union[ConjunctiveQuery, Sequence[ConjunctiveQuery]],
    universal_solution: Instance,
    engine: Optional[str] = None,
) -> list[tuple]:
    """Certain answers of a CQ (or union of CQs) given a universal
    solution: naive evaluation minus answers containing labeled nulls."""
    queries = [query] if isinstance(query, ConjunctiveQuery) else list(query)
    results: list[tuple] = []
    seen: set[tuple] = set()
    for q in queries:
        for answer in naive_evaluate(q, universal_solution, engine=engine):
            if any(isinstance(v, LabeledNull) for v in answer):
                continue
            if answer not in seen:
                seen.add(answer)
                results.append(answer)
    return results
