"""Core of a universal solution.

The core is the smallest universal solution — unique up to isomorphism
("Data Exchange: Getting to the Core", the paper's reference [39]).  It
is computed by repeatedly finding an endomorphism whose image avoids
some row, and shrinking the instance to that image, until no row can be
dropped.  Exponential in the worst case (the problem is intractable in
general) but fast on chase outputs of practical size, which is exactly
the paper's "best effort on an intractable problem" stance (Section 2).
"""

from __future__ import annotations

from repro.instances.database import Instance, freeze_row
from repro.instances.labeled_null import LabeledNull
from repro.logic.homomorphism import instance_homomorphism


def core_of(instance: Instance, max_rounds: int = 10_000) -> Instance:
    """The core of ``instance``; constants are fixed, labeled nulls may
    collapse."""
    current = instance.deduplicated()
    for _ in range(max_rounds):
        shrunk = _shrink_once(current)
        if shrunk is None:
            return current
        current = shrunk
    return current


def _shrink_once(instance: Instance) -> Instance | None:
    """Find an endomorphism avoiding some row; return its image, or
    ``None`` if the instance is already a core."""
    for relation in sorted(instance.relations):
        rows = instance.relations[relation]
        for index, row in enumerate(rows):
            if not any(isinstance(v, LabeledNull) for v in row.values()):
                continue  # rows without nulls are in every core
            target = Instance(instance.schema)
            for other_relation, other_rows in instance.relations.items():
                for other_index, other_row in enumerate(other_rows):
                    if other_relation == relation and other_index == index:
                        continue
                    target.insert(other_relation, other_row)
            mapping = instance_homomorphism(instance, target)
            if mapping is not None:
                return _image(instance, mapping)
    return None


def _image(instance: Instance, mapping: dict) -> Instance:
    result = Instance(instance.schema)
    seen: dict[str, set] = {}
    for relation, rows in instance.relations.items():
        bucket = seen.setdefault(relation, set())
        for row in rows:
            image_row = {
                key: mapping.get(value, value)
                if isinstance(value, LabeledNull)
                else value
                for key, value in row.items()
            }
            frozen = freeze_row(image_row)
            if frozen not in bucket:
                bucket.add(frozen)
                result.insert(relation, image_row)
    return result
