"""The chase: computing universal solutions for data exchange.

Given a source instance and a set of dependencies, the chase extends
the instance until all dependencies are satisfied, inventing labeled
nulls for existential variables.  The result is a *universal solution*
(paper, Section 4): it has a homomorphism into every solution, so
evaluating a conjunctive query on it (and discarding rows with nulls)
yields exactly the certain answers.

This is the *standard* (restricted) chase: a tgd fires only when its
head is not already satisfied, which keeps results small and guarantees
termination for weakly acyclic dependency sets.
:func:`is_weakly_acyclic` implements the classical position-graph test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.errors import ChaseFailure, ChaseNonTermination
from repro.instances.database import Instance, Row
from repro.instances.labeled_null import LabeledNull, NullFactory
from repro.logic.dependencies import EGD, TGD, Dependency
from repro.logic.formulas import Atom
from repro.logic.homomorphism import find_homomorphism, iter_homomorphisms
from repro.logic.terms import Const, Var


@dataclass
class ChaseResult:
    """Outcome of a chase run."""

    instance: Instance
    steps: int
    fired: dict[str, int] = field(default_factory=dict)
    null_factory: NullFactory = field(default_factory=NullFactory)

    @property
    def nulls_created(self) -> int:
        return len(self.instance.nulls())


def chase(
    instance: Instance,
    dependencies: Sequence[Union[TGD, EGD]],
    max_steps: int = 100_000,
    null_factory: Optional[NullFactory] = None,
    copy: bool = True,
) -> ChaseResult:
    """Chase ``instance`` with ``dependencies``.

    Raises :class:`ChaseFailure` if an egd equates distinct constants
    (no solution exists) and :class:`ChaseNonTermination` when
    ``max_steps`` is exhausted.
    """
    working = instance.copy() if copy else instance
    factory = null_factory or _fresh_factory(working)
    steps = 0
    fired: dict[str, int] = {}

    changed = True
    while changed:
        changed = False
        for dependency in dependencies:
            if isinstance(dependency, TGD):
                applied = _apply_tgd(working, dependency, factory)
            else:
                applied = _apply_egd(working, dependency)
            if applied:
                changed = True
                name = dependency.name or str(dependency)[:60]
                fired[name] = fired.get(name, 0) + applied
                steps += applied
                if steps > max_steps:
                    raise ChaseNonTermination(
                        f"chase exceeded {max_steps} steps; dependency set is "
                        "probably not weakly acyclic"
                    )
    return ChaseResult(instance=working, steps=steps, fired=fired, null_factory=factory)


def _fresh_factory(instance: Instance) -> NullFactory:
    existing = instance.nulls()
    start = max((n.label for n in existing), default=-1) + 1
    return NullFactory(start)


def _apply_tgd(instance: Instance, tgd: TGD, factory: NullFactory) -> int:
    """Fire every active trigger of ``tgd`` once; returns firings."""
    applied = 0
    # Materialize triggers first: firing while iterating would re-trigger.
    triggers = list(iter_homomorphisms(tgd.body, instance))
    for assignment in triggers:
        if _head_satisfied(instance, tgd, assignment):
            continue
        existential_values: dict[Var, LabeledNull] = {}
        for atom in tgd.head:
            row: Row = {}
            for name, term in atom.args:
                if isinstance(term, Const):
                    row[name] = term.value
                elif isinstance(term, Var):
                    if term in assignment:
                        row[name] = assignment[term]
                    else:
                        if term not in existential_values:
                            existential_values[term] = factory.fresh(
                                hint=f"{tgd.name or 'tgd'}.{term.name}"
                            )
                        row[name] = existential_values[term]
                else:
                    raise ChaseFailure(
                        "cannot chase second-order tgds directly; "
                        "ground their function terms first"
                    )
            instance.insert(atom.relation, row)
        applied += 1
    return applied


def _head_satisfied(instance: Instance, tgd: TGD, assignment: dict) -> bool:
    """Standard-chase activity test: is there an extension of the body
    assignment that already satisfies the head in the instance?"""
    partial = {
        var: value
        for var, value in assignment.items()
        if var in tgd.frontier()
    }
    return (
        find_homomorphism(tgd.head, instance, partial=partial) is not None
    )


def _apply_egd(instance: Instance, egd: EGD) -> int:
    """Fire egd triggers, merging values.  Constant–constant conflicts
    raise :class:`ChaseFailure`."""
    applied = 0
    while True:
        substitution: Optional[dict[LabeledNull, object]] = None
        for assignment in iter_homomorphisms(egd.body, instance):
            for equality in egd.equalities:
                left = _value(equality.left, assignment)
                right = _value(equality.right, assignment)
                if left == right:
                    continue
                left_null = isinstance(left, LabeledNull)
                right_null = isinstance(right, LabeledNull)
                if not left_null and not right_null:
                    raise ChaseFailure(
                        f"egd {egd.name or egd} equates distinct constants "
                        f"{left!r} and {right!r}"
                    )
                if left_null:
                    substitution = {left: right}
                else:
                    substitution = {right: left}
                break
            if substitution:
                break
        if not substitution:
            return applied
        _substitute_in_place(instance, substitution)
        applied += 1


def _value(term, assignment):
    if isinstance(term, Const):
        return term.value
    return assignment[term]


def _substitute_in_place(instance: Instance, mapping: dict) -> None:
    for rows in instance.relations.values():
        for row in rows:
            for key, value in row.items():
                if isinstance(value, LabeledNull) and value in mapping:
                    row[key] = mapping[value]


# ----------------------------------------------------------------------
# weak acyclicity
# ----------------------------------------------------------------------
def is_weakly_acyclic(tgds: Sequence[TGD]) -> bool:
    """Position-graph test (Fagin et al.): nodes are (relation,
    attribute) positions; a regular edge goes from each body position of
    a frontier variable to each head position of that variable; a
    *special* edge goes from each body position of a frontier variable
    to each head position of an existential variable in the same atom
    set.  The tgd set is weakly acyclic iff no cycle passes through a
    special edge — and then every chase terminates.
    """
    regular: dict[tuple, set[tuple]] = {}
    special: dict[tuple, set[tuple]] = {}

    def add(edges: dict, src: tuple, dst: tuple) -> None:
        edges.setdefault(src, set()).add(dst)

    for tgd in tgds:
        body_positions: dict[Var, list[tuple]] = {}
        for atom in tgd.body:
            for name, term in atom.args:
                if isinstance(term, Var):
                    body_positions.setdefault(term, []).append(
                        (atom.relation, name)
                    )
        existentials = tgd.existentials()
        head_positions_existential: list[tuple] = []
        head_positions_by_var: dict[Var, list[tuple]] = {}
        for atom in tgd.head:
            for name, term in atom.args:
                if isinstance(term, Var):
                    if term in existentials:
                        head_positions_existential.append((atom.relation, name))
                    else:
                        head_positions_by_var.setdefault(term, []).append(
                            (atom.relation, name)
                        )
        for var, sources in body_positions.items():
            if var not in tgd.frontier():
                continue
            for src in sources:
                for dst in head_positions_by_var.get(var, []):
                    add(regular, src, dst)
                for dst in head_positions_existential:
                    add(special, src, dst)

    # Cycle through a special edge ⇔ some special edge (u, v) with a
    # path from v back to u in the combined graph.
    def reachable(start: tuple) -> set[tuple]:
        seen: set[tuple] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbour in regular.get(node, set()) | special.get(node, set()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return seen

    for src, destinations in special.items():
        for dst in destinations:
            if src == dst or src in reachable(dst):
                return False
    return True
