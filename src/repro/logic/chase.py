"""The chase: computing universal solutions for data exchange.

Given a source instance and a set of dependencies, the chase extends
the instance until all dependencies are satisfied, inventing labeled
nulls for existential variables.  The result is a *universal solution*
(paper, Section 4): it has a homomorphism into every solution, so
evaluating a conjunctive query on it (and discarding rows with nulls)
yields exactly the certain answers.

This is the *standard* (restricted) chase: a tgd fires only when its
head is not already satisfied, which keeps results small and guarantees
termination for weakly acyclic dependency sets.
:func:`is_weakly_acyclic` implements the classical position-graph test.

Two engines live here:

* :func:`chase` — the **semi-naive (delta-driven)** engine.  Each round
  enumerates only triggers that touch at least one row inserted (or
  rewritten by an egd merge) in the previous round, via per-dependency
  body-atom → relation subscriptions; round 0 seeds with a full
  enumeration.  Head-satisfaction for full tgds is a frozen-row
  membership test against the instance's incrementally maintained
  projection sets; existential heads keep the homomorphism-extension
  test (it cannot be expressed as plain membership) but memoize it per
  frontier assignment.  Egd equalities are batched per round into a
  union-find over labeled nulls and applied in a single substitution
  pass driven by a null → row occurrence index.  Per-round work is
  proportional to the *delta*, not to the whole instance.

* :func:`naive_chase` — the original Gauss–Seidel engine kept verbatim
  as the reference implementation: equivalence tests assert the
  semi-naive result is hom-equivalent to it, and
  ``benchmarks/bench_chase_scaling.py`` uses it as the speedup
  baseline.

Both produce universal solutions; for non-full tgds the instances may
differ syntactically but are homomorphically equivalent.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union

from repro.errors import ChaseFailure, ChaseNonTermination
from repro.instances.database import Instance, Row, hashable_key
from repro.instances.labeled_null import LabeledNull, NullFactory
from repro.logic.dependencies import EGD, TGD, Dependency
from repro.logic.homomorphism import find_homomorphism, iter_homomorphisms
from repro.logic.terms import Const, Var
from repro.observability.state import STATE as _OBS


@dataclass
class ChaseStats:
    """Observability counters for one chase run.

    * ``rounds`` — delta rounds executed (round 0 included);
    * ``triggers_examined`` — per-dependency count of trigger
      assignments enumerated (before satisfaction filtering);
    * ``delta_sizes`` — rows inserted or rewritten per round; the run
      stops after the first ``0``;
    * ``merges`` — egd equalities applied (null↦value substitutions);
    * ``index_hits`` / ``index_extends`` / ``index_rebuilds`` — how the
      instance's persistent indexes behaved: a *hit* reused an index
      as-is, an *extend* appended only new rows, a *rebuild* scanned the
      relation from scratch;
    * ``wall_time`` — seconds spent inside the engine;
    * ``dep_wall`` / ``dep_kind`` / ``dep_fired`` — per-dependency
      wall seconds, kind (``tgd`` / ``tgd∃`` / ``egd``), and firing
      (tgd) or applied-equality (egd) counts, keyed like
      ``triggers_examined`` — the raw material of :class:`ChaseProfile`.
    """

    rounds: int = 0
    triggers_examined: dict[str, int] = field(default_factory=dict)
    delta_sizes: list[int] = field(default_factory=list)
    merges: int = 0
    index_hits: int = 0
    index_extends: int = 0
    index_rebuilds: int = 0
    wall_time: float = 0.0
    dep_wall: dict[str, float] = field(default_factory=dict)
    dep_kind: dict[str, str] = field(default_factory=dict)
    dep_fired: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        lines = [
            f"rounds: {self.rounds}",
            f"delta sizes: {self.delta_sizes}",
            f"merges: {self.merges}",
            f"index hits/extends/rebuilds: "
            f"{self.index_hits}/{self.index_extends}/{self.index_rebuilds}",
            f"wall time: {self.wall_time:.4f}s",
        ]
        for name, count in sorted(self.triggers_examined.items()):
            lines.append(f"  triggers[{name}]: {count}")
        return "\n".join(lines)

    def profile(self) -> "ChaseProfile":
        """The per-dependency EXPLAIN ANALYZE view of this run."""
        return ChaseProfile.from_stats(self)


@dataclass
class ChaseProfile:
    """Per-dependency cost attribution for one chase run — the chase's
    analogue of the query executor's plan profile.

    One entry per dependency (by its ``fired``-dict display name):
    triggers enumerated, firings (tgd) or applied equalities (egd),
    suppressed triggers (enumerated but already satisfied — the
    semi-naive engine's redundancy), and wall milliseconds spent in
    that dependency's enumerate/fire cycle.  Entries sort by wall time
    so the most expensive dependency tops the rendering.
    """

    @dataclass
    class Entry:
        name: str
        kind: str
        examined: int
        fired: int
        wall_ms: float

        @property
        def suppressed(self) -> int:
            return max(0, self.examined - self.fired)

        def to_dict(self) -> dict:
            return {
                "name": self.name,
                "kind": self.kind,
                "triggers_examined": self.examined,
                "fired": self.fired,
                "suppressed": self.suppressed,
                "wall_ms": self.wall_ms,
            }

    entries: list["ChaseProfile.Entry"]
    rounds: int
    merges: int
    total_wall_ms: float

    @classmethod
    def from_stats(cls, stats: "ChaseStats") -> "ChaseProfile":
        names = set(stats.dep_wall) | set(stats.triggers_examined)
        entries = [
            cls.Entry(
                name=name,
                kind=stats.dep_kind.get(name, "?"),
                examined=stats.triggers_examined.get(name, 0),
                fired=stats.dep_fired.get(name, 0),
                wall_ms=stats.dep_wall.get(name, 0.0) * 1000.0,
            )
            for name in names
        ]
        entries.sort(key=lambda e: (-e.wall_ms, e.name))
        return cls(
            entries=entries,
            rounds=stats.rounds,
            merges=stats.merges,
            total_wall_ms=stats.wall_time * 1000.0,
        )

    def render(self) -> str:
        lines = [
            f"chase: {self.rounds} round(s), {self.merges} merge(s), "
            f"{self.total_wall_ms:.2f}ms"
        ]
        width = max(
            (len(e.name) for e in self.entries), default=0
        )
        width = max(width, len("dependency"))
        header = (
            f"  {'dependency'.ljust(width)}  kind  examined  fired  "
            f"suppressed   wall"
        )
        lines.append(header)
        for e in self.entries:
            lines.append(
                f"  {e.name.ljust(width)}  {e.kind:<4}  "
                f"{e.examined:>8}  {e.fired:>5}  {e.suppressed:>10}  "
                f"{e.wall_ms:>5.2f}ms"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "rounds": self.rounds,
            "merges": self.merges,
            "total_wall_ms": self.total_wall_ms,
            "dependencies": [e.to_dict() for e in self.entries],
        }


class ChaseRecorder:
    """Optional provenance hooks for one chase run.

    The incremental runtime (:mod:`repro.runtime.incremental`) passes a
    recorder to capture *which trigger derived which rows* while the
    chase runs, so deletions can later be propagated by counting/DRed
    instead of re-chasing.  All hooks default to no-ops; the engine
    calls them only when a recorder is supplied, so plain chases pay
    nothing.
    """

    def on_tgd_fire(
        self,
        dep_index: int,
        tgd: "TGD",
        frontier_key: tuple,
        frontier_items: list,
        rows: list[tuple[str, Row]],
    ) -> None:
        """One tgd firing: the frontier key identifying the trigger,
        the (var, value) frontier bindings, and the stored head rows."""

    def on_egd_union(
        self,
        dep_index: int,
        egd: "EGD",
        body_key: tuple,
        left: object,
        right: object,
    ) -> None:
        """One applied egd equality (union of two distinct classes)."""

    def on_substitution(
        self, positions: list[tuple[str, Row, str, "LabeledNull", object]]
    ) -> None:
        """One in-place merge pass: every rewritten position as
        ``(relation, row, attr, old_null, replacement)``."""

    def on_shard(self, shard_id: int) -> None:
        """Sharded chase only: subsequent hooks replay events recorded
        on worker shard ``shard_id`` (``-1`` = the coordinator).  The
        coordinator flushes worker events at frontier boundaries in
        deterministic ``(shard, sequence)`` order, so provenance rows
        merge identically run to run."""


@dataclass
class ChaseResult:
    """Outcome of a chase run."""

    instance: Instance
    steps: int
    fired: dict[str, int] = field(default_factory=dict)
    null_factory: NullFactory = field(default_factory=NullFactory)
    stats: Optional[ChaseStats] = None

    @property
    def nulls_created(self) -> int:
        return len(self.instance.nulls())

    def profile(self) -> Optional["ChaseProfile"]:
        """Per-dependency cost attribution (None when run without
        stats, e.g. from :func:`naive_chase`)."""
        return self.stats.profile() if self.stats is not None else None


def _fresh_factory(instance: Instance) -> NullFactory:
    existing = instance.nulls()
    start = max((n.label for n in existing), default=-1) + 1
    return NullFactory(start)


def _unique_names(dependencies: Sequence[Dependency]) -> list[str]:
    """Collision-free display keys for the ``fired`` dict: unnamed
    dependencies sharing a 60-char ``str()`` prefix get ``#n`` suffixes."""
    names: list[str] = []
    used: dict[str, int] = {}
    for dependency in dependencies:
        base = dependency.name or str(dependency)[:60]
        count = used.get(base, 0)
        used[base] = count + 1
        names.append(base if count == 0 else f"{base}#{count + 1}")
    return names


def _resolve_shards(shards: Optional[int]) -> int:
    """Shard count: explicit argument wins, then ``REPRO_CHASE_SHARDS``,
    then 1 (sequential).  Malformed env values fall back to 1."""
    if shards is None:
        raw = os.environ.get("REPRO_CHASE_SHARDS", "").strip()
        if not raw:
            return 1
        try:
            shards = int(raw)
        except ValueError:
            return 1
    return max(1, shards)


def chase(
    instance: Instance,
    dependencies: Sequence[Union[TGD, EGD]],
    max_steps: int = 100_000,
    null_factory: Optional[NullFactory] = None,
    copy: bool = True,
    recorder: Optional[ChaseRecorder] = None,
    initial_delta: Optional[dict[str, list[Row]]] = None,
    shards: Optional[int] = None,
) -> ChaseResult:
    """Chase ``instance`` with ``dependencies`` (semi-naive engine).

    ``recorder`` receives provenance callbacks per firing/merge (see
    :class:`ChaseRecorder`).  ``initial_delta`` replaces round 0's full
    trigger enumeration with delta-pinned enumeration over the given
    rows — callers use it when the instance is already chase-consistent
    except for freshly appended rows, so only triggers touching those
    rows can be active.

    ``shards`` > 1 (or ``REPRO_CHASE_SHARDS=N``) routes the run through
    the shard-parallel engine (:mod:`repro.logic.sharding`) when the
    dependency set admits a co-partitioning key; otherwise — and always
    at ``shards=1`` — the sequential engine below runs unchanged, so
    ``shards=1`` is byte-identical to the pre-sharding path.

    Raises :class:`ChaseFailure` if an egd equates distinct constants
    (no solution exists) and :class:`ChaseNonTermination` as soon as a
    firing beyond the ``max_steps`` budget is attempted (the budget is
    exact — no mid-round overshoot).
    """
    working = instance.copy() if copy else instance
    factory = null_factory or _fresh_factory(working)
    shard_count = _resolve_shards(shards)
    if shard_count > 1:
        from repro.logic.sharding import sharded_chase

        result = sharded_chase(
            working, dependencies, factory, max_steps, shard_count,
            recorder=recorder, initial_delta=initial_delta,
        )
        if result is not None:
            return result
        if _OBS.enabled:
            from repro.observability.journal import JOURNAL
            from repro.observability.metrics import registry

            registry.counter("chase.sequential_fallbacks").inc()
            JOURNAL.record(
                "chase.sequential_fallback",
                shards=shard_count,
                dependencies=len(dependencies),
                reason="no co-partitioning key",
            )
    engine = _SemiNaiveChase(working, dependencies, factory, max_steps,
                             recorder=recorder, initial_delta=initial_delta)
    if not _OBS.enabled:
        return engine.run()
    from repro.observability.tracing import tracer

    with tracer.span(
        "logic.chase",
        dependencies=len(dependencies),
        source_rows=working.total_rows(),
    ) as span:
        result = engine.run()
        span.set_attributes(rounds=result.stats.rounds, steps=result.steps)
        _publish_stats(result.stats, result.steps)
    return result


def _publish_stats(stats: "ChaseStats", steps: int) -> None:
    """Re-report one run's :class:`ChaseStats` as registry metrics, so
    chase telemetry aggregates across a whole script or benchmark."""
    from repro.observability.metrics import COUNT_BUCKETS, registry

    registry.counter("chase.runs").inc()
    registry.counter("chase.rounds").inc(stats.rounds)
    registry.counter("chase.steps").inc(steps)
    registry.counter("chase.merges").inc(stats.merges)
    registry.counter("chase.triggers_examined").inc(
        sum(stats.triggers_examined.values())
    )
    registry.counter("chase.index.hits").inc(stats.index_hits)
    registry.counter("chase.index.extends").inc(stats.index_extends)
    registry.counter("chase.index.rebuilds").inc(stats.index_rebuilds)
    delta_histogram = registry.histogram("chase.delta_size", COUNT_BUCKETS)
    for size in stats.delta_sizes:
        delta_histogram.observe(size)
    registry.histogram("chase.wall_ms").observe(stats.wall_time * 1000.0)


class _UnionFind:
    """Union-find over chase values (labeled nulls and constants).

    Constants are sinks: a class may contain at most one constant,
    which becomes its representative; uniting two classes holding
    distinct constants raises :class:`ChaseFailure`.  Among nulls the
    lowest label wins, keeping substitutions deterministic.
    """

    __slots__ = ("parent", "value")

    def __init__(self) -> None:
        self.parent: dict[object, object] = {}
        self.value: dict[object, object] = {}

    def _add(self, item: object) -> object:
        key = hashable_key(item)
        if key not in self.parent:
            self.parent[key] = key
            self.value[key] = item
        return key

    def _find(self, key: object) -> object:
        root = key
        parent = self.parent
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:  # path compression
            parent[key], key = root, parent[key]
        return root

    def union(self, left: object, right: object, context: str) -> bool:
        """Unite the classes of ``left`` and ``right``; True if the
        classes were previously distinct."""
        left_root = self._find(self._add(left))
        right_root = self._find(self._add(right))
        if left_root == right_root:
            return False
        left_value = self.value[left_root]
        right_value = self.value[right_root]
        left_null = isinstance(left_value, LabeledNull)
        right_null = isinstance(right_value, LabeledNull)
        if not left_null and not right_null:
            raise ChaseFailure(
                f"egd {context} equates distinct constants "
                f"{left_value!r} and {right_value!r}"
            )
        if left_null and right_null:
            if left_value.label <= right_value.label:
                root, child = left_root, right_root
            else:
                root, child = right_root, left_root
        elif left_null:
            root, child = right_root, left_root
        else:
            root, child = left_root, right_root
        self.parent[child] = root
        return True

    def substitution(self) -> dict[LabeledNull, object]:
        """null → representative for every non-representative null."""
        mapping: dict[LabeledNull, object] = {}
        for key, item in self.value.items():
            if isinstance(item, LabeledNull):
                root = self._find(key)
                if root != key:
                    mapping[item] = self.value[root]
        return mapping


class _SemiNaiveChase:
    """One run of the delta-driven chase over a working instance."""

    def __init__(
        self,
        instance: Instance,
        dependencies: Sequence[Union[TGD, EGD]],
        factory: NullFactory,
        max_steps: int,
        recorder: Optional[ChaseRecorder] = None,
        initial_delta: Optional[dict[str, list[Row]]] = None,
    ) -> None:
        self.instance = instance
        self.dependencies = list(dependencies)
        self.factory = factory
        self.max_steps = max_steps
        self.recorder = recorder
        self.initial_delta = initial_delta
        self.steps = 0
        self.fired: dict[str, int] = {}
        self.stats = ChaseStats()
        self.names = _unique_names(self.dependencies)
        self.has_egds = any(
            isinstance(d, EGD) for d in self.dependencies
        )
        # Per-dependency precomputation.
        self.body_relations: list[set[str]] = [
            d.body_relations() for d in self.dependencies
        ]
        self.body_variables: list[tuple[Var, ...]] = [
            tuple(sorted(d.body_variables(), key=lambda v: v.name))
            for d in self.dependencies
        ]
        for name, dependency in zip(self.names, self.dependencies):
            if isinstance(dependency, EGD):
                self.stats.dep_kind[name] = "egd"
            elif dependency.is_full:
                self.stats.dep_kind[name] = "tgd"
            else:
                self.stats.dep_kind[name] = "tgd∃"
        self.frontiers: list[tuple[Var, ...]] = []
        self.full_head_shape: list[Optional[list]] = []
        for dependency in self.dependencies:
            if isinstance(dependency, TGD):
                self.frontiers.append(
                    tuple(sorted(dependency.frontier(), key=lambda v: v.name))
                )
                if dependency.is_full:
                    # (relation, attr tuple, term tuple) per head atom,
                    # for the projection-set membership test.
                    shape = []
                    for atom in dependency.head:
                        attrs = tuple(name for name, _ in atom.args)
                        terms = tuple(term for _, term in atom.args)
                        shape.append((atom.relation, attrs, terms))
                    self.full_head_shape.append(shape)
                else:
                    self.full_head_shape.append(None)
            else:
                self.frontiers.append(())
                self.full_head_shape.append(None)
        # Memo of frontier assignments whose head is known satisfied;
        # cleared whenever an egd substitution rewrites rows in place.
        self.satisfied: list[set] = [set() for _ in self.dependencies]
        # null → {id(row): (relation, row)} occurrence index, maintained
        # only when egds can merge nulls.
        self.null_occurrences: dict[
            LabeledNull, dict[int, tuple[str, Row]]
        ] = {}
        if self.has_egds:
            for relation, rows in instance.relations.items():
                for row in rows:
                    self._record_nulls(relation, row)

    # ------------------------------------------------------------------
    def run(self) -> ChaseResult:
        start = time.perf_counter()
        instance = self.instance
        hits0 = dict(instance.index_stats)
        # None ⇒ full round-0 enumeration; a caller-supplied initial
        # delta restricts round 0 to triggers touching its rows.
        delta: Optional[dict[str, list[Row]]] = self.initial_delta
        while True:
            self.stats.rounds += 1
            inserted: dict[str, list[Row]] = {}
            union_find = _UnionFind() if self.has_egds else None
            merged_any = False
            for index, dependency in enumerate(self.dependencies):
                if delta is not None and not (
                    self.body_relations[index] & delta.keys()
                ):
                    continue
                name = self.names[index]
                dep_start = time.perf_counter()
                triggers = list(self._triggers(index, dependency, delta))
                self.stats.triggers_examined[name] = (
                    self.stats.triggers_examined.get(name, 0)
                    + len(triggers)
                )
                if isinstance(dependency, TGD):
                    self._fire_tgd(index, dependency, triggers, inserted)
                else:
                    if self._collect_egd(index, dependency, triggers,
                                         union_find):
                        merged_any = True
                self.stats.dep_wall[name] = (
                    self.stats.dep_wall.get(name, 0.0)
                    + (time.perf_counter() - dep_start)
                )
            modified: list[tuple[str, Row]] = []
            if merged_any:
                modified = self._apply_merges(union_find)
            next_delta: dict[str, list[Row]] = dict(inserted)
            inserted_ids = {
                id(row) for rows in inserted.values() for row in rows
            }
            for relation, row in modified:
                if id(row) not in inserted_ids:
                    next_delta.setdefault(relation, []).append(row)
            delta_size = sum(len(rows) for rows in next_delta.values())
            self.stats.delta_sizes.append(delta_size)
            if _OBS.enabled:
                from repro.observability.journal import journal

                journal(
                    "chase.round",
                    round=self.stats.rounds,
                    delta_rows=delta_size,
                )
            if not next_delta:
                break
            delta = next_delta
        self.stats.wall_time = time.perf_counter() - start
        self.stats.dep_fired = dict(self.fired)
        self.stats.index_hits = instance.index_stats["hits"] - hits0["hits"]
        self.stats.index_extends = (
            instance.index_stats["extends"] - hits0["extends"]
        )
        self.stats.index_rebuilds = (
            instance.index_stats["rebuilds"] - hits0["rebuilds"]
        )
        return ChaseResult(
            instance=instance,
            steps=self.steps,
            fired=self.fired,
            null_factory=self.factory,
            stats=self.stats,
        )

    # ------------------------------------------------------------------
    # trigger enumeration
    # ------------------------------------------------------------------
    def _triggers(
        self,
        index: int,
        dependency: Dependency,
        delta: Optional[dict[str, list[Row]]],
    ) -> Iterator[dict]:
        body = dependency.body
        if delta is None:
            yield from iter_homomorphisms(body, self.instance)
            return
        variables = self.body_variables[index]
        seen: set = set()
        for position, atom in enumerate(body):
            delta_rows = delta.get(atom.relation)
            if not delta_rows:
                continue
            for assignment in iter_homomorphisms(
                body, self.instance, pinned=(position, delta_rows)
            ):
                key = tuple(
                    [hashable_key(assignment[v]) for v in variables]
                )
                if key in seen:
                    continue
                seen.add(key)
                yield assignment

    # ------------------------------------------------------------------
    # tgds
    # ------------------------------------------------------------------
    def _fire_tgd(
        self,
        index: int,
        tgd: TGD,
        triggers: list[dict],
        inserted: dict[str, list[Row]],
    ) -> None:
        frontier = self.frontiers[index]
        memo = self.satisfied[index]
        name = self.names[index]
        fired = 0
        for assignment in triggers:
            key = tuple([hashable_key(assignment[v]) for v in frontier])
            if key in memo:
                continue
            if self._head_satisfied(index, tgd, assignment):
                memo.add(key)
                continue
            self._charge_step()
            existential_values: dict[Var, LabeledNull] = {}
            head_rows: list[tuple[str, Row]] = []
            for atom in tgd.head:
                row: Row = {}
                for attr, term in atom.args:
                    if isinstance(term, Const):
                        row[attr] = term.value
                    elif isinstance(term, Var):
                        if term in assignment:
                            row[attr] = assignment[term]
                        else:
                            null = existential_values.get(term)
                            if null is None:
                                null = self.factory.fresh(
                                    hint=f"{tgd.name or 'tgd'}.{term.name}"
                                )
                                existential_values[term] = null
                            row[attr] = null
                    else:
                        raise ChaseFailure(
                            "cannot chase second-order tgds directly; "
                            "ground their function terms first"
                        )
                stored = self._store_head_row(atom.relation, row, inserted)
                head_rows.append((atom.relation, stored))
            if self.recorder is not None:
                self.recorder.on_tgd_fire(
                    index, tgd, key,
                    [(v, assignment[v]) for v in frontier],
                    head_rows,
                )
            memo.add(key)
            fired += 1
        if fired:
            self.fired[name] = self.fired.get(name, 0) + fired

    def _charge_step(self) -> None:
        """Charge one firing against the step budget.  The sharded
        engine overrides this to charge a budget shared across
        workers, keeping ``max_steps`` exact under parallelism."""
        if self.steps >= self.max_steps:
            raise ChaseNonTermination(
                f"chase exceeded {self.max_steps} steps; dependency "
                "set is probably not weakly acyclic"
            )
        self.steps += 1

    def _store_head_row(
        self, relation: str, row: Row, inserted: dict[str, list[Row]]
    ) -> Row:
        """Store one freshly derived head row.  The sharded engine
        overrides this to route rows whose partition key lands on
        another shard through that shard's delta queue."""
        stored = self.instance.insert(relation, row)
        inserted.setdefault(relation, []).append(stored)
        if self.has_egds:
            self._record_nulls(relation, stored)
        return stored

    def _head_satisfied(self, index: int, tgd: TGD, assignment: dict) -> bool:
        shape = self.full_head_shape[index]
        if shape is not None:
            # Full tgd: the head instantiation is fully determined, so
            # satisfaction is plain frozen-row membership per atom.
            instance = self.instance
            for relation, attrs, terms in shape:
                values = tuple(
                    [
                        hashable_key(
                            term.value
                            if isinstance(term, Const)
                            else assignment[term]
                        )
                        for term in terms
                    ]
                )
                if not instance.projection_member(relation, attrs, values):
                    return False
            return True
        partial = {
            var: assignment[var]
            for var in self.frontiers[index]
            if var in assignment
        }
        return (
            find_homomorphism(tgd.head, self.instance, partial=partial)
            is not None
        )

    # ------------------------------------------------------------------
    # egds
    # ------------------------------------------------------------------
    def _collect_egd(
        self,
        index: int,
        egd: EGD,
        triggers: list[dict],
        union_find: _UnionFind,
    ) -> bool:
        name = self.names[index]
        variables = self.body_variables[index]
        merged = 0
        for assignment in triggers:
            for equality in egd.equalities:
                left = _value(equality.left, assignment)
                right = _value(equality.right, assignment)
                if left == right:
                    continue
                if not isinstance(left, LabeledNull) and not isinstance(
                    right, LabeledNull
                ):
                    raise ChaseFailure(
                        f"egd {egd.name or egd} equates distinct constants "
                        f"{left!r} and {right!r}"
                    )
                if union_find.union(left, right, egd.name or str(egd)[:60]):
                    self._charge_step()
                    merged += 1
                    if self.recorder is not None:
                        self.recorder.on_egd_union(
                            index, egd,
                            tuple(
                                hashable_key(assignment[v])
                                for v in variables
                            ),
                            left, right,
                        )
        if merged:
            self.fired[name] = self.fired.get(name, 0) + merged
            self.stats.merges += merged
            return True
        return False

    def _apply_merges(
        self, union_find: _UnionFind
    ) -> list[tuple[str, Row]]:
        """One substitution pass over exactly the rows that mention a
        merged null, via the occurrence index."""
        mapping = union_find.substitution()
        if not mapping:
            return []
        touched: dict[int, tuple[str, Row]] = {}
        positions: list[tuple[str, Row, str, LabeledNull, object]] = []
        for null, replacement in mapping.items():
            occurrences = self.null_occurrences.pop(null, None)
            if not occurrences:
                continue
            for row_id, (relation, row) in occurrences.items():
                for attr, value in row.items():
                    if isinstance(value, LabeledNull) and value == null:
                        row[attr] = replacement
                        if self.recorder is not None:
                            positions.append(
                                (relation, row, attr, null, replacement)
                            )
                touched[row_id] = (relation, row)
                if isinstance(replacement, LabeledNull):
                    self.null_occurrences.setdefault(replacement, {})[
                        row_id
                    ] = (relation, row)
        if self.recorder is not None and positions:
            self.recorder.on_substitution(positions)
        # Rows were rewritten in place: the instance's persistent
        # indexes and the satisfied-frontier memos are both stale.
        self.instance.mark_dirty()
        self.satisfied = [set() for _ in self.dependencies]
        return list(touched.values())

    def _record_nulls(self, relation: str, row: Row) -> None:
        for value in row.values():
            if isinstance(value, LabeledNull):
                self.null_occurrences.setdefault(value, {})[id(row)] = (
                    relation,
                    row,
                )


def _value(term, assignment):
    if isinstance(term, Const):
        return term.value
    return assignment[term]


# ----------------------------------------------------------------------
# reference (seed) engine
# ----------------------------------------------------------------------
def naive_chase(
    instance: Instance,
    dependencies: Sequence[Union[TGD, EGD]],
    max_steps: int = 100_000,
    null_factory: Optional[NullFactory] = None,
    copy: bool = True,
) -> ChaseResult:
    """The original Gauss–Seidel chase, kept as the reference baseline:
    every round re-enumerates all triggers of every dependency over the
    full instance and runs a homomorphism search per trigger for the
    activity test.  Used by equivalence tests and as the benchmark
    baseline for the semi-naive engine."""
    working = instance.copy() if copy else instance
    factory = null_factory or _fresh_factory(working)
    steps = 0
    fired: dict[str, int] = {}
    names = _unique_names(dependencies)

    changed = True
    while changed:
        changed = False
        for index, dependency in enumerate(dependencies):
            if isinstance(dependency, TGD):
                applied = _naive_apply_tgd(working, dependency, factory)
            else:
                applied = _naive_apply_egd(working, dependency)
            if applied:
                changed = True
                name = names[index]
                fired[name] = fired.get(name, 0) + applied
                steps += applied
                if steps > max_steps:
                    raise ChaseNonTermination(
                        f"chase exceeded {max_steps} steps; dependency set "
                        "is probably not weakly acyclic"
                    )
    return ChaseResult(
        instance=working, steps=steps, fired=fired, null_factory=factory
    )


def _naive_apply_tgd(instance: Instance, tgd: TGD, factory: NullFactory) -> int:
    """Fire every active trigger of ``tgd`` once; returns firings."""
    applied = 0
    # Materialize triggers first: firing while iterating would re-trigger.
    triggers = list(iter_homomorphisms(tgd.body, instance))
    frontier = tgd.frontier()
    for assignment in triggers:
        partial = {
            var: value
            for var, value in assignment.items()
            if var in frontier
        }
        if find_homomorphism(tgd.head, instance, partial=partial) is not None:
            continue
        existential_values: dict[Var, LabeledNull] = {}
        for atom in tgd.head:
            row: Row = {}
            for name, term in atom.args:
                if isinstance(term, Const):
                    row[name] = term.value
                elif isinstance(term, Var):
                    if term in assignment:
                        row[name] = assignment[term]
                    else:
                        if term not in existential_values:
                            existential_values[term] = factory.fresh(
                                hint=f"{tgd.name or 'tgd'}.{term.name}"
                            )
                        row[name] = existential_values[term]
                else:
                    raise ChaseFailure(
                        "cannot chase second-order tgds directly; "
                        "ground their function terms first"
                    )
            instance.insert(atom.relation, row)
        applied += 1
    return applied


def _naive_apply_egd(instance: Instance, egd: EGD) -> int:
    """Fire egd triggers, merging values one at a time with a restart
    after every merge.  Constant–constant conflicts raise
    :class:`ChaseFailure`."""
    applied = 0
    while True:
        substitution: Optional[dict[LabeledNull, object]] = None
        for assignment in iter_homomorphisms(egd.body, instance):
            for equality in egd.equalities:
                left = _value(equality.left, assignment)
                right = _value(equality.right, assignment)
                if left == right:
                    continue
                left_null = isinstance(left, LabeledNull)
                right_null = isinstance(right, LabeledNull)
                if not left_null and not right_null:
                    raise ChaseFailure(
                        f"egd {egd.name or egd} equates distinct constants "
                        f"{left!r} and {right!r}"
                    )
                if left_null:
                    substitution = {left: right}
                else:
                    substitution = {right: left}
                break
            if substitution:
                break
        if not substitution:
            return applied
        for rows in instance.relations.values():
            for row in rows:
                for key, value in row.items():
                    if isinstance(value, LabeledNull) and value in substitution:
                        row[key] = substitution[value]
        instance.mark_dirty()
        applied += 1


# ----------------------------------------------------------------------
# weak acyclicity
# ----------------------------------------------------------------------
def is_weakly_acyclic(tgds: Sequence[TGD]) -> bool:
    """Position-graph test (Fagin et al.): nodes are (relation,
    attribute) positions; a regular edge goes from each body position of
    a frontier variable to each head position of that variable; a
    *special* edge goes from each body position of a frontier variable
    to each head position of an existential variable in the same atom
    set.  The tgd set is weakly acyclic iff no cycle passes through a
    special edge — and then every chase terminates.
    """
    regular: dict[tuple, set[tuple]] = {}
    special: dict[tuple, set[tuple]] = {}

    def add(edges: dict, src: tuple, dst: tuple) -> None:
        edges.setdefault(src, set()).add(dst)

    for tgd in tgds:
        body_positions: dict[Var, list[tuple]] = {}
        for atom in tgd.body:
            for name, term in atom.args:
                if isinstance(term, Var):
                    body_positions.setdefault(term, []).append(
                        (atom.relation, name)
                    )
        existentials = tgd.existentials()
        head_positions_existential: list[tuple] = []
        head_positions_by_var: dict[Var, list[tuple]] = {}
        for atom in tgd.head:
            for name, term in atom.args:
                if isinstance(term, Var):
                    if term in existentials:
                        head_positions_existential.append((atom.relation, name))
                    else:
                        head_positions_by_var.setdefault(term, []).append(
                            (atom.relation, name)
                        )
        for var, sources in body_positions.items():
            if var not in tgd.frontier():
                continue
            for src in sources:
                for dst in head_positions_by_var.get(var, []):
                    add(regular, src, dst)
                for dst in head_positions_existential:
                    add(special, src, dst)

    # Cycle through a special edge ⇔ some special edge (u, v) with a
    # path from v back to u in the combined graph.
    def reachable(start: tuple) -> set[tuple]:
        seen: set[tuple] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbour in regular.get(node, set()) | special.get(node, set()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return seen

    for src, destinations in special.items():
        for dst in destinations:
            if src == dst or src in reachable(dst):
                return False
    return True
