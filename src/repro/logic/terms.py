"""Terms: variables, constants and Skolem function terms.

Function terms only appear in second-order tgds, where the paper's
Section 6.1 explains they are exactly what makes the mapping language
closed under composition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union


@dataclass(frozen=True)
class Var:
    """A first-order variable (implicitly ∀ in bodies, ∃ in heads)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant value (any hashable Python value)."""

    value: object

    def __str__(self) -> str:
        # Mirror the parser's literal syntax so printed dependencies
        # re-parse to themselves.
        if isinstance(self.value, str):
            return f'"{self.value}"'
        if self.value is True:
            return "true"
        if self.value is False:
            return "false"
        if self.value is None:
            return "null"
        return str(self.value)


@dataclass(frozen=True)
class FuncTerm:
    """An applied (Skolem) function symbol, e.g. ``f(x, y)``."""

    function: str
    args: tuple["Term", ...]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.function}({inner})"


Term = Union[Var, Const, FuncTerm]

#: A substitution maps variables to terms.
Substitution = Mapping[Var, Term]


def apply_term(term: Term, substitution: Substitution) -> Term:
    """Apply a substitution to a term (recursing into function terms).

    Substitution chains (x → y, y → z) are followed; self-referential
    bindings like x → f(x) are applied once rather than looping.
    """
    return _apply(term, substitution, frozenset())


def _apply(term: Term, substitution: Substitution, blocked: frozenset) -> Term:
    if isinstance(term, Var):
        if term in blocked or term not in substitution:
            return term
        replacement = substitution[term]
        return _apply(replacement, substitution, blocked | {term})
    if isinstance(term, FuncTerm):
        return FuncTerm(
            term.function,
            tuple(_apply(a, substitution, blocked) for a in term.args),
        )
    return term


def variables_of(term: Term) -> set[Var]:
    """All variables occurring in ``term``."""
    if isinstance(term, Var):
        return {term}
    if isinstance(term, FuncTerm):
        result: set[Var] = set()
        for arg in term.args:
            result |= variables_of(arg)
        return result
    return set()


def functions_of(term: Term) -> set[str]:
    """All function symbols occurring in ``term``."""
    if isinstance(term, FuncTerm):
        result = {term.function}
        for arg in term.args:
            result |= functions_of(arg)
        return result
    return set()


def unify(left: Term, right: Term, substitution: dict[Var, Term]) -> bool:
    """Extend ``substitution`` to unify ``left`` and ``right``.

    Standard syntactic unification with occurs-check; mutates and
    returns True on success, leaves ``substitution`` possibly extended
    but returns False on failure (callers copy before calling when they
    need rollback).
    """
    left = apply_term(left, substitution)
    right = apply_term(right, substitution)
    if left == right:
        return True
    if isinstance(left, Var):
        if left in variables_of(right):
            return False
        substitution[left] = right
        return True
    if isinstance(right, Var):
        return unify(right, left, substitution)
    if isinstance(left, FuncTerm) and isinstance(right, FuncTerm):
        if left.function != right.function or len(left.args) != len(right.args):
            return False
        return all(unify(l, r, substitution) for l, r in zip(left.args, right.args))
    return False  # distinct constants, or constant vs function term
