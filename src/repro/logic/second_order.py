"""Second-order tgds.

Fagin, Kolaitis, Popa and Tan (the paper's reference [40]) showed that
st-tgds are not closed under composition and introduced second-order
tgds — implications whose terms may apply existentially quantified
*function symbols* — which are.  The composition operator
(:mod:`repro.operators.compose`) produces these; this module provides:

* the :class:`SecondOrderTGD` representation;
* :func:`skolemize` — st-tgd → SO-tgd implication (each existential
  variable becomes a Skolem term over the frontier);
* :func:`deskolemize` — best-effort conversion back to first-order
  st-tgds, raising :class:`~repro.errors.ExpressivenessError` when the
  SO-tgd is genuinely second-order;
* :func:`execute_so_tgd` — data-exchange execution with Skolem
  semantics (same function + same arguments ⇒ same labeled null),
  which is what makes composed mappings *runnable* by the mapping
  runtime, closing the design-time/runtime loop the paper calls for.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ExpressivenessError
from repro.instances.database import Instance, Row
from repro.instances.labeled_null import LabeledNull, NullFactory
from repro.logic.dependencies import TGD
from repro.logic.formulas import Atom, Equality
from repro.logic.homomorphism import find_homomorphism, iter_homomorphisms
from repro.logic.terms import Const, FuncTerm, Substitution, Term, Var, apply_term


@dataclass(frozen=True)
class Implication:
    """``body ∧ conditions → head`` with possibly second-order terms."""

    body: tuple[Atom, ...]
    head: tuple[Atom, ...]
    conditions: tuple[Equality, ...] = ()
    name: str = ""

    def substitute(self, substitution: Substitution) -> "Implication":
        return Implication(
            body=tuple(a.substitute(substitution) for a in self.body),
            head=tuple(a.substitute(substitution) for a in self.head),
            conditions=tuple(
                c.substitute(substitution) for c in self.conditions
            ),
            name=self.name,
        )

    def functions(self) -> set[str]:
        found: set[str] = set()
        for atom in self.body + self.head:
            found |= atom.functions()
        for condition in self.conditions:
            for term in (condition.left, condition.right):
                found |= _functions_of_term(term)
        return found

    def variables(self) -> set[Var]:
        result: set[Var] = set()
        for atom in self.body + self.head:
            result |= atom.variables()
        for condition in self.conditions:
            result |= condition.variables()
        return result

    def __str__(self) -> str:
        parts = [str(a) for a in self.body] + [str(c) for c in self.conditions]
        head = " & ".join(str(a) for a in self.head)
        return f"{' & '.join(parts)} -> {head}"


def _functions_of_term(term: Term) -> set[str]:
    if isinstance(term, FuncTerm):
        found = {term.function}
        for arg in term.args:
            found |= _functions_of_term(arg)
        return found
    return set()


@dataclass(frozen=True)
class SecondOrderTGD:
    """``∃f1...fk ⋀ implications`` — the composition-closed language."""

    implications: tuple[Implication, ...]
    name: str = ""

    @property
    def functions(self) -> frozenset[str]:
        found: set[str] = set()
        for implication in self.implications:
            found |= implication.functions()
        return frozenset(found)

    @property
    def is_first_order(self) -> bool:
        return not self.functions

    def size(self) -> int:
        """Total atom count — the measure of composition blow-up the
        benchmarks track (Fagin et al. prove an exponential lower
        bound)."""
        return sum(
            len(i.body) + len(i.head) + len(i.conditions)
            for i in self.implications
        )

    def __str__(self) -> str:
        prefix = ""
        if self.functions:
            prefix = "∃" + ",".join(sorted(self.functions)) + " . "
        return prefix + "\n".join(str(i) for i in self.implications)


# ----------------------------------------------------------------------
# Skolemization
# ----------------------------------------------------------------------
def skolemize(tgd: TGD, index: int = 0) -> Implication:
    """Replace each existential head variable by a Skolem term over the
    tgd's frontier variables (sorted for determinism)."""
    frontier = sorted(tgd.frontier(), key=lambda v: v.name)
    substitution: dict[Var, Term] = {}
    label = tgd.name or f"d{index}"
    for existential in sorted(tgd.existentials(), key=lambda v: v.name):
        substitution[existential] = FuncTerm(
            f"f_{label}_{existential.name}", tuple(frontier)
        )
    return Implication(
        body=tgd.body,
        head=tuple(atom.substitute(substitution) for atom in tgd.head),
        name=label,
    )


def skolemize_all(tgds: Sequence[TGD], name: str = "") -> SecondOrderTGD:
    return SecondOrderTGD(
        implications=tuple(
            skolemize(tgd, index) for index, tgd in enumerate(tgds)
        ),
        name=name,
    )


# ----------------------------------------------------------------------
# De-Skolemization
# ----------------------------------------------------------------------
def deskolemize(so_tgd: SecondOrderTGD) -> list[TGD]:
    """Convert an SO-tgd back to first-order st-tgds when possible.

    A Skolem term can become an existential variable when, within an
    implication, (a) it does not occur nested inside another function
    term, (b) it does not occur in the body, and (c) equalities between
    function terms have been resolved away.  Otherwise the mapping is
    genuinely second-order and :class:`ExpressivenessError` is raised —
    this is the expressiveness boundary the paper highlights.
    """
    result: list[TGD] = []
    for index, implication in enumerate(so_tgd.implications):
        resolved = _resolve_conditions(implication)
        if resolved is None or resolved.conditions:
            raise ExpressivenessError(
                f"implication {implication} has unresolvable function-term "
                "conditions; composition result is not first-order"
            )
        for atom in resolved.body:
            if atom.functions():
                raise ExpressivenessError(
                    f"function term in body of {resolved}; not first-order"
                )
        # Each distinct function term in the head becomes one
        # existential variable.
        replacements: dict[FuncTerm, Var] = {}
        counter = itertools.count()

        def rewrite(term: Term) -> Term:
            if isinstance(term, FuncTerm):
                if any(isinstance(a, FuncTerm) for a in term.args):
                    raise ExpressivenessError(
                        f"nested function term {term} is not first-order"
                    )
                if term not in replacements:
                    replacements[term] = Var(f"e{index}_{next(counter)}")
                return replacements[term]
            return term

        head = tuple(
            Atom(
                atom.relation,
                tuple((name, rewrite(term)) for name, term in atom.args),
            )
            for atom in resolved.head
        )
        result.append(
            TGD(body=resolved.body, head=head, name=resolved.name or f"c{index}")
        )
    return result


def _resolve_conditions(implication: Implication) -> Optional[Implication]:
    """Eliminate conditions by substitution.

    ``x = t`` substitutes ``t`` for ``x``; ``f(s̄) = f(t̄)`` decomposes
    into argument equalities; ``f(s̄) = g(t̄)`` or a function term equal
    to a constant/frontier variable in a position that cannot be
    substituted makes the implication unresolvable (returns None).
    """
    body = list(implication.body)
    head = list(implication.head)
    pending = list(implication.conditions)
    residual: list[Equality] = []
    while pending:
        condition = pending.pop()
        left, right = condition.left, condition.right
        if left == right:
            continue
        if isinstance(right, Var) and not isinstance(left, Var):
            left, right = right, left
        if isinstance(left, Var):
            from repro.logic.terms import variables_of

            if left in variables_of(right):
                # Occurs check: x = f(..x..) is a genuine second-order
                # constraint on the function; keep it residual.
                residual.append(Equality(left, right))
                continue
            substitution = {left: right}
            body = [a.substitute(substitution) for a in body]
            head = [a.substitute(substitution) for a in head]
            pending = [c.substitute(substitution) for c in pending]
            residual = [c.substitute(substitution) for c in residual]
            continue
        if isinstance(left, FuncTerm) and isinstance(right, FuncTerm):
            if left.function == right.function and len(left.args) == len(right.args):
                for l_arg, r_arg in zip(left.args, right.args):
                    pending.append(Equality(l_arg, r_arg))
                continue
            return None  # distinct Skolem functions equated
        if isinstance(left, Const) and isinstance(right, Const):
            if left.value != right.value:
                # Condition can never hold: implication is vacuous.
                return Implication(
                    body=tuple(body), head=(), conditions=(), name=implication.name
                )
            continue
        # FuncTerm = Const: genuinely second-order constraint.
        return None
    return Implication(
        body=tuple(body),
        head=tuple(head),
        conditions=tuple(residual),
        name=implication.name,
    )


# ----------------------------------------------------------------------
# Execution with Skolem semantics
# ----------------------------------------------------------------------
def execute_so_tgd(
    so_tgd: SecondOrderTGD,
    source: Instance,
    target: Optional[Instance] = None,
    null_factory: Optional[NullFactory] = None,
) -> Instance:
    """Populate a target instance from ``source`` per ``so_tgd``.

    Function terms are interpreted as Skolem functions producing
    labeled nulls, memoized per (function, arguments) — so two
    implications inventing ``f(x)`` for the same ``x`` agree, which is
    exactly the semantics composition relies on.
    """
    result = target if target is not None else Instance()
    factory = null_factory or NullFactory(
        max((n.label for n in source.nulls()), default=-1) + 1
    )
    skolem_cache: dict[tuple, LabeledNull] = {}

    for implication in so_tgd.implications:
        first_order_conditions = [
            c
            for c in implication.conditions
            if not (_functions_of_term(c.left) or _functions_of_term(c.right))
        ]
        functional_conditions = [
            c for c in implication.conditions if c not in first_order_conditions
        ]
        for assignment in iter_homomorphisms(
            implication.body, source, first_order_conditions
        ):
            if not _functional_conditions_hold(
                functional_conditions, assignment, skolem_cache, factory
            ):
                continue
            for atom in implication.head:
                row: Row = {}
                for name, term in atom.args:
                    row[name] = _term_to_value(
                        term, assignment, skolem_cache, factory
                    )
                result.insert(atom.relation, row)
    return result.deduplicated()


def _term_to_value(term: Term, assignment, cache, factory) -> object:
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        return assignment[term]
    args = tuple(
        _freeze(_term_to_value(a, assignment, cache, factory)) for a in term.args
    )
    key = (term.function, args)
    if key not in cache:
        cache[key] = factory.fresh(hint=term.function)
    return cache[key]


def _freeze(value: object) -> object:
    if isinstance(value, LabeledNull):
        return ("⊥", value.label)
    return value


def _functional_conditions_hold(conditions, assignment, cache, factory) -> bool:
    for condition in conditions:
        left = _term_to_value(condition.left, assignment, cache, factory)
        right = _term_to_value(condition.right, assignment, cache, factory)
        if left != right:
            return False
    return True
