"""Tuple-generating and equality-generating dependencies.

A tgd is ``∀x̄ φ(x̄) → ∃ȳ ψ(x̄, ȳ)`` with φ, ψ conjunctions of atoms
(paper, Section 6.1, footnote 2).  When φ uses only source relations
and ψ only target relations it is a *source-to-target* tgd (st-tgd),
the GLAV constraint language of the Clio line of work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.logic.formulas import Atom, Equality
from repro.logic.terms import Var


@dataclass(frozen=True)
class Dependency:
    """Base class for tgds and egds."""

    body: tuple[Atom, ...]

    def body_variables(self) -> set[Var]:
        result: set[Var] = set()
        for atom in self.body:
            result |= atom.variables()
        return result

    def body_relations(self) -> set[str]:
        return {atom.relation for atom in self.body}


@dataclass(frozen=True)
class TGD(Dependency):
    """``body → ∃(existentials) head``."""

    head: tuple[Atom, ...] = ()
    name: str = ""

    @staticmethod
    def of(body: Sequence[Atom], head: Sequence[Atom], name: str = "") -> "TGD":
        return TGD(body=tuple(body), head=tuple(head), name=name)

    def head_variables(self) -> set[Var]:
        result: set[Var] = set()
        for atom in self.head:
            result |= atom.variables()
        return result

    def frontier(self) -> set[Var]:
        """Variables shared by body and head (the universally
        quantified ones that matter)."""
        return self.body_variables() & self.head_variables()

    def existentials(self) -> set[Var]:
        """Head-only variables — implicitly ∃-quantified."""
        return self.head_variables() - self.body_variables()

    @property
    def is_full(self) -> bool:
        """A *full* tgd has no existential variables; full tgds always
        chase-terminate and compose within first-order logic."""
        return not self.existentials()

    def head_relations(self) -> set[str]:
        return {atom.relation for atom in self.head}

    def is_source_to_target(
        self, source_relations: Iterable[str], target_relations: Iterable[str]
    ) -> bool:
        source = set(source_relations)
        target = set(target_relations)
        return self.body_relations() <= source and self.head_relations() <= target

    def __str__(self) -> str:
        body = " & ".join(str(a) for a in self.body)
        head = " & ".join(str(a) for a in self.head)
        label = f"[{self.name}] " if self.name else ""
        existentials = self.existentials()
        prefix = (
            "∃" + ",".join(sorted(v.name for v in existentials)) + " "
            if existentials
            else ""
        )
        return f"{label}{body} -> {prefix}{head}"


@dataclass(frozen=True)
class EGD(Dependency):
    """``body → left = right`` (e.g. key constraints as dependencies)."""

    equalities: tuple[Equality, ...] = ()
    name: str = ""

    @staticmethod
    def of(
        body: Sequence[Atom], equalities: Sequence[Equality], name: str = ""
    ) -> "EGD":
        return EGD(body=tuple(body), equalities=tuple(equalities), name=name)

    def __str__(self) -> str:
        body = " & ".join(str(a) for a in self.body)
        eqs = " & ".join(str(e) for e in self.equalities)
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{body} -> {eqs}"


def key_egd(relation: str, key: Sequence[str], attributes: Sequence[str]) -> EGD:
    """The egd encoding "``key`` is a key of ``relation``" over the given
    full attribute list: two tuples agreeing on the key agree everywhere."""
    first_args = []
    second_args = []
    equalities = []
    for attribute in attributes:
        if attribute in key:
            shared = Var(f"k_{attribute}")
            first_args.append((attribute, shared))
            second_args.append((attribute, shared))
        else:
            left = Var(f"a_{attribute}")
            right = Var(f"b_{attribute}")
            first_args.append((attribute, left))
            second_args.append((attribute, right))
            equalities.append(Equality(left, right))
    return EGD(
        body=(
            Atom(relation, tuple(first_args)),
            Atom(relation, tuple(second_args)),
        ),
        equalities=tuple(equalities),
        name=f"key:{relation}({','.join(key)})",
    )


def inclusion_tgd(
    source: str,
    source_attributes: Sequence[str],
    target: str,
    target_attributes: Sequence[str],
    target_all_attributes: Optional[Sequence[str]] = None,
) -> TGD:
    """The tgd encoding an inclusion dependency.  Non-shared target
    attributes become existentials."""
    shared = {
        t_attr: Var(f"x{i}")
        for i, t_attr in enumerate(target_attributes)
    }
    body_args = tuple(
        (s_attr, shared[t_attr])
        for s_attr, t_attr in zip(source_attributes, target_attributes)
    )
    head_args = []
    for attribute in target_all_attributes or target_attributes:
        if attribute in shared:
            head_args.append((attribute, shared[attribute]))
        else:
            head_args.append((attribute, Var(f"e_{attribute}")))
    return TGD(
        body=(Atom(source, body_args),),
        head=(Atom(target, tuple(head_args)),),
        name=f"incl:{source}→{target}",
    )
