"""Deterministic synthetic data generation for benchmark workloads.

The paper's scenarios run over enterprise data we do not have; the
generator produces schema-conforming instances (keys unique, foreign
keys resolvable, types respected) from a seed, so every benchmark run
sees the same data.
"""

from __future__ import annotations

import datetime
import random
from typing import Optional

from repro.errors import SchemaError
from repro.instances.database import Instance
from repro.metamodel.constraints import InclusionDependency
from repro.metamodel.elements import Attribute, Entity
from repro.metamodel.schema import Schema
from repro.metamodel.types import ParametricType, base_primitive

_WORDS = (
    "alpha bravo charlie delta echo foxtrot golf hotel india juliet kilo "
    "lima mike november oscar papa quebec romeo sierra tango uniform "
    "victor whiskey xray yankee zulu"
).split()


class InstanceGenerator:
    """Generates instances of a schema with a fixed random seed."""

    def __init__(self, schema: Schema, seed: int = 0):
        self.schema = schema
        self._rng = random.Random(seed)
        self._sequence = 0
        # For FKs that cover key attributes we must sample target rows
        # without replacement or the generated keys would collide.
        self._used_fk_targets: dict[tuple, set[int]] = {}

    # ------------------------------------------------------------------
    def generate(
        self,
        rows_per_entity: int = 100,
        per_entity: Optional[dict[str, int]] = None,
    ) -> Instance:
        """A fresh instance with ``rows_per_entity`` rows per concrete
        entity (override per entity via ``per_entity``).

        Entities are filled in foreign-key dependency order so that FK
        values can always point at existing target rows.  Entities with
        inheritance get a mix of the concrete types in the hierarchy.
        """
        per_entity = per_entity or {}
        instance = Instance(self.schema)
        for entity in self._fk_order():
            if entity.parent is not None:
                continue  # subtypes are emitted via their root's extent
            count = per_entity.get(entity.name, rows_per_entity)
            concrete = [entity] if not entity.is_abstract else []
            concrete += [d for d in entity.descendants() if not d.is_abstract]
            if not concrete:
                raise SchemaError(f"no concrete type under {entity.name!r}")
            has_hierarchy = bool(entity.children())
            for _ in range(count):
                chosen = self._rng.choice(concrete) if has_hierarchy else entity
                row = self._make_row(chosen, instance)
                if has_hierarchy:
                    instance.insert_object(chosen.name, **row)
                else:
                    instance.insert(entity.name, row)
        return instance

    # ------------------------------------------------------------------
    def _fk_order(self) -> list[Entity]:
        """Entities sorted so FK targets come before FK sources."""
        names = list(self.schema.entities)
        depends: dict[str, set[str]] = {n: set() for n in names}
        for dep in self.schema.inclusion_dependencies():
            if dep.source in depends and dep.target in depends:
                if dep.source != dep.target:
                    depends[dep.source].add(dep.target)
        ordered: list[str] = []
        visiting: set[str] = set()

        def visit(name: str) -> None:
            if name in ordered:
                return
            if name in visiting:
                return  # cyclic FKs: fall back to insertion order
            visiting.add(name)
            for target in sorted(depends[name]):
                visit(target)
            visiting.discard(name)
            ordered.append(name)

        for name in names:
            visit(name)
        return [self.schema.entity(n) for n in ordered]

    def _make_row(self, entity: Entity, instance: Instance) -> dict[str, object]:
        row: dict[str, object] = {}
        key_attrs = set(entity.root().key)
        fk_values = self._fk_choices(entity, instance)
        for attr in entity.all_attributes():
            if attr.name in fk_values:
                row[attr.name] = fk_values[attr.name]
            elif attr.name in key_attrs:
                self._sequence += 1
                row[attr.name] = self._key_value(attr, self._sequence)
            elif attr.nullable and self._rng.random() < 0.1:
                row[attr.name] = None
            else:
                row[attr.name] = self._value(attr)
        return row

    def _fk_choices(
        self, entity: Entity, instance: Instance
    ) -> dict[str, object]:
        """Pick existing target values for this entity's FK columns."""
        choices: dict[str, object] = {}
        key_attrs = set(entity.root().key)
        for dep in self.schema.foreign_keys_of(entity.name):
            target_rows = instance.rows(dep.target)
            if dep.target in self.schema.entities:
                target_entity = self.schema.entity(dep.target)
                if target_entity.parent is not None or target_entity.children():
                    target_rows = instance.objects_of(dep.target)
            if not target_rows:
                continue
            covers_key = bool(key_attrs & set(dep.source_attributes))
            if covers_key:
                used = self._used_fk_targets.setdefault(
                    (entity.name, dep.source_attributes), set()
                )
                available = [
                    i for i in range(len(target_rows)) if i not in used
                ]
                if not available:
                    continue  # target exhausted; key falls back to sequence
                index = self._rng.choice(available)
                used.add(index)
                picked = target_rows[index]
            else:
                picked = self._rng.choice(target_rows)
            for src, tgt in zip(dep.source_attributes, dep.target_attributes):
                choices[src] = picked.get(tgt)
        return choices

    def _key_value(self, attr: Attribute, sequence: int) -> object:
        base = base_primitive(attr.data_type).name
        if base in ("int", "bigint", "decimal", "float"):
            return sequence
        return f"k{sequence:06d}"

    def _value(self, attr: Attribute) -> object:
        data_type = attr.data_type
        base = base_primitive(data_type).name
        if base == "bool":
            return self._rng.random() < 0.5
        if base in ("int", "bigint"):
            return self._rng.randrange(0, 100000)
        if base in ("decimal", "float"):
            return round(self._rng.uniform(0, 10000), 2)
        if base in ("string", "text"):
            word = self._rng.choice(_WORDS) + "-" + self._rng.choice(_WORDS)
            if isinstance(data_type, ParametricType):
                return word[: data_type.params[0]]
            return word
        if base == "date":
            return datetime.date(2000, 1, 1) + datetime.timedelta(
                days=self._rng.randrange(0, 9000)
            )
        if base == "datetime":
            return datetime.datetime(2000, 1, 1) + datetime.timedelta(
                seconds=self._rng.randrange(0, 10**9)
            )
        if base == "binary":
            return bytes(self._rng.randrange(0, 256) for _ in range(8))
        return f"v{self._rng.randrange(0, 10**6)}"
