"""Instance validation against schemas and integrity constraints.

The paper (Section 2) requires reasoning such as "if the source
database satisfies the source integrity constraints then the target
database also satisfies the target integrity constraints"; the runtime
integrity service builds on this checker.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConstraintViolation, SchemaError
from repro.instances.database import TYPE_FIELD, Instance, Row
from repro.instances.labeled_null import is_null
from repro.metamodel.constraints import (
    Constraint,
    Covering,
    Disjointness,
    InclusionDependency,
    KeyConstraint,
    NotNull,
)
from repro.metamodel.schema import Schema
from repro.metamodel.types import conforms


def violations(instance: Instance, schema: Optional[Schema] = None) -> list[str]:
    """All validation failures of ``instance`` against ``schema``
    (types, nullability, and every declared integrity constraint).
    Returns human-readable messages; empty list means valid."""
    schema = schema or instance.schema
    if schema is None:
        raise SchemaError("validation requires a schema")
    messages: list[str] = []
    messages.extend(_type_violations(instance, schema))
    for constraint in schema.constraints:
        messages.extend(_constraint_violations(instance, schema, constraint))
    return messages


def validate_instance(instance: Instance, schema: Optional[Schema] = None) -> None:
    """Raise :class:`ConstraintViolation` on the first failure."""
    problems = violations(instance, schema)
    if problems:
        raise ConstraintViolation(None, problems[0])


def _entity_for_row(schema: Schema, relation: str, row: Row):
    type_name = row.get(TYPE_FIELD)
    if type_name is not None and type_name in schema.entities:
        return schema.entity(str(type_name))
    if relation in schema.entities:
        return schema.entity(relation)
    return None


def _type_violations(instance: Instance, schema: Schema) -> list[str]:
    messages: list[str] = []
    for relation, rows in instance.relations.items():
        for index, row in enumerate(rows):
            entity = _entity_for_row(schema, relation, row)
            if entity is None:
                messages.append(f"relation {relation!r} not declared in schema")
                break
            declared = {a.name: a for a in entity.all_attributes()}
            for name, value in row.items():
                if name == TYPE_FIELD:
                    continue
                attr = declared.get(name)
                if attr is None:
                    messages.append(
                        f"{relation}[{index}]: undeclared attribute {name!r}"
                    )
                    continue
                if value is None:
                    if not attr.nullable:
                        messages.append(
                            f"{relation}[{index}]: null in non-nullable "
                            f"{entity.name}.{name}"
                        )
                    continue
                if not conforms(value, attr.data_type):
                    messages.append(
                        f"{relation}[{index}]: value {value!r} does not conform "
                        f"to {entity.name}.{name}: {attr.data_type}"
                    )
            for attr in declared.values():
                if not attr.nullable and attr.name not in row:
                    messages.append(
                        f"{relation}[{index}]: missing required attribute "
                        f"{entity.name}.{attr.name}"
                    )
    return messages


def _constraint_violations(
    instance: Instance, schema: Schema, constraint: Constraint
) -> list[str]:
    if isinstance(constraint, KeyConstraint):
        return _key_violations(instance, schema, constraint)
    if isinstance(constraint, InclusionDependency):
        return _inclusion_violations(instance, schema, constraint)
    if isinstance(constraint, Disjointness):
        return _disjointness_violations(instance, schema, constraint)
    if isinstance(constraint, Covering):
        return _covering_violations(instance, schema, constraint)
    if isinstance(constraint, NotNull):
        return _not_null_violations(instance, constraint)
    return []


def _rows_of(instance: Instance, schema: Schema, entity_name: str) -> list[Row]:
    """Rows belonging to an entity, whether stored flat or in a typed
    root extent.  Works even when the instance is not schema-bound
    (e.g. freshly deserialized) by consulting ``schema`` directly."""
    if schema is not None and entity_name in schema.entities:
        entity = schema.entity(entity_name)
        if entity.parent is not None or entity.children():
            working = instance
            if working.schema is not schema:
                working = instance.copy()
                working.schema = schema
            return working.objects_of(entity_name)
    return instance.rows(entity_name)


def _key_violations(
    instance: Instance, schema: Schema, constraint: KeyConstraint
) -> list[str]:
    seen: dict[tuple, int] = {}
    messages: list[str] = []
    for row in _rows_of(instance, schema, constraint.entity):
        key = tuple(row.get(a) for a in constraint.attributes)
        if any(is_null(v) for v in key):
            continue  # null keys are checked by NotNull, not uniqueness
        seen[key] = seen.get(key, 0) + 1
    for key, count in seen.items():
        if count > 1:
            messages.append(
                f"key violation: {constraint.describe()} duplicated for {key!r}"
            )
    return messages


def _inclusion_violations(
    instance: Instance, schema: Schema, constraint: InclusionDependency
) -> list[str]:
    target_values = {
        tuple(row.get(a) for a in constraint.target_attributes)
        for row in _rows_of(instance, schema, constraint.target)
    }
    messages: list[str] = []
    for row in _rows_of(instance, schema, constraint.source):
        value = tuple(row.get(a) for a in constraint.source_attributes)
        if any(v is None for v in value):
            continue  # null FKs do not participate
        if value not in target_values:
            messages.append(
                f"inclusion violation: {constraint.describe()} misses {value!r}"
            )
    return messages


def _disjointness_violations(
    instance: Instance, schema: Schema, constraint: Disjointness
) -> list[str]:
    messages: list[str] = []
    for i, first in enumerate(constraint.entities):
        for second in constraint.entities[i + 1 :]:
            first_keys = _identity_set(instance, schema, first)
            second_keys = _identity_set(instance, schema, second)
            overlap = first_keys & second_keys
            if overlap:
                messages.append(
                    f"disjointness violation: {first} ∩ {second} ⊇ "
                    f"{sorted(overlap)[:3]!r}"
                )
    return messages


def _covering_violations(
    instance: Instance, schema: Schema, constraint: Covering
) -> list[str]:
    parent_ids = _identity_set(instance, schema, constraint.entity)
    covered: set = set()
    for name in constraint.covered_by:
        covered |= _identity_set(instance, schema, name)
    missing = parent_ids - covered
    if missing:
        return [
            f"covering violation: {constraint.describe()} misses "
            f"{sorted(missing)[:3]!r}"
        ]
    return []


def _identity_set(instance: Instance, schema: Schema, entity_name: str) -> set:
    """Key values (or whole rows) of an entity's extent, for overlap tests."""
    if schema is not None and entity_name in schema.entities:
        entity = schema.entity(entity_name)
        key = entity.root().key
        rows = _rows_of(instance, schema, entity_name)
        if key:
            return {tuple(row.get(k) for k in key) for row in rows}
        return {frozenset((k, v) for k, v in row.items() if k != TYPE_FIELD) for row in rows}
    return {frozenset(row.items()) for row in instance.rows(entity_name)}


def _not_null_violations(instance: Instance, constraint: NotNull) -> list[str]:
    messages = []
    for index, row in enumerate(instance.rows(constraint.entity)):
        if row.get(constraint.attribute) is None:
            messages.append(
                f"{constraint.entity}[{index}]: null in declared "
                f"not-null attribute {constraint.attribute}"
            )
    return messages
