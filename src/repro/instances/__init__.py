"""Database instances (states) of universal-metamodel schemas.

An :class:`~repro.instances.database.Instance` assigns to each entity a
set of tuples.  Instances may contain
:class:`~repro.instances.labeled_null.LabeledNull` values — the labeled
nulls of data-exchange universal instances (paper, Section 4) — and can
be validated against a schema's types and integrity constraints.
"""

from repro.instances.labeled_null import LabeledNull, NullFactory, is_null
from repro.instances.columnar import Column, ColumnBatch
from repro.instances.database import Instance, Row, freeze_row
from repro.instances.validation import validate_instance, violations
from repro.instances.generator import InstanceGenerator
from repro.instances.serialization import (
    dump_instance,
    instance_from_dict,
    instance_to_dict,
    load_instance,
)

__all__ = [
    "LabeledNull",
    "NullFactory",
    "is_null",
    "Column",
    "ColumnBatch",
    "Instance",
    "Row",
    "freeze_row",
    "validate_instance",
    "violations",
    "InstanceGenerator",
    "dump_instance",
    "instance_from_dict",
    "instance_to_dict",
    "load_instance",
]
