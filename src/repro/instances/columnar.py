"""Columnar batch storage for relation extents.

A :class:`ColumnBatch` is the column-oriented image of one relation's
row list: parallel Python-list columns in first-seen column order, a
per-column *presence* mask distinguishing "the row has no such key"
from "the key is present with value ``None``", a lazily computed null
bitmap (SQL ``NULL`` cells), and a lazily computed side table of the
labeled nulls (:class:`~repro.instances.labeled_null.LabeledNull`)
appearing in the column.  Labeled nulls are stored *inline* in the
value list — they are ordinary join-key-able values to the algebra —
while the side table gives bulk operators (and diagnostics) an O(1)
answer to "which cells of this column are labeled nulls?" without a
rescan.

Row dicts remain the source of truth: instances keep storing
``list[Row]`` and the chase / interpreted engine / persistent indexes
never see a batch.  :meth:`Instance.column_batch` materializes the
columnar image on demand and maintains it incrementally under the same
validation contract as the persistent (relation, attr) indexes (see
``docs/COLUMNAR.md`` for the layout and the compatibility contract).

Batches handed to the vectorized executor are **immutable by
convention**: operator stages build new value lists (or share existing
ones — sharing is safe precisely because nothing mutates them) and
fresh row dicts are built only once, at the plan boundary
(:meth:`ColumnBatch.to_rows`).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.instances.labeled_null import LabeledNull

Row = dict[str, object]


class Column:
    """One named column of a batch: a parallel value list plus masks.

    ``values[i]`` is the cell value, with ``None`` standing in for both
    SQL ``NULL`` and *absent* (row lacks the key); ``present`` is
    ``None`` when every row carries the key, else a bytearray of 0/1
    flags.  ``null_mask()`` and ``labels()`` are derived, cached views.
    """

    __slots__ = ("values", "present", "_null_mask", "_labels")

    def __init__(self, values: list, present: Optional[bytearray] = None):
        self.values = values
        self.present = present
        self._null_mask: Optional[bytearray] = None
        self._labels: Optional[dict[int, LabeledNull]] = None

    @property
    def full(self) -> bool:
        """True when every row carries this column's key."""
        return self.present is None

    def null_mask(self) -> bytearray:
        """Null bitmap: 1 where the cell is a *present* SQL ``NULL``
        (absent cells are not nulls — they are no cell at all)."""
        mask = self._null_mask
        if mask is None:
            present = self.present
            if present is None:
                mask = bytearray(v is None for v in self.values)
            else:
                mask = bytearray(
                    p and v is None for v, p in zip(self.values, present)
                )
            self._null_mask = mask
        return mask

    def labels(self) -> dict[int, LabeledNull]:
        """Side table of labeled nulls: row position → the null stored
        there.  Labeled nulls also sit inline in ``values`` (they join
        and group by label); this view exists so bulk consumers can
        find them without scanning."""
        table = self._labels
        if table is None:
            table = {
                i: v
                for i, v in enumerate(self.values)
                if isinstance(v, LabeledNull)
            }
            self._labels = table
        return table

    def _invalidate(self) -> None:
        self._null_mask = None
        self._labels = None

    def take(self, indices: Sequence[int]) -> "Column":
        values = self.values
        present = self.present
        if present is None:
            return Column([values[i] for i in indices])
        picked = bytearray(present[i] for i in indices)
        # Normalize: if every surviving row carries the key, the result
        # is a full column (downstream fast paths key off ``present``).
        if all(picked):
            picked = None
        return Column([values[i] for i in indices], picked)

    def compress(self, mask: Sequence) -> "Column":
        values = self.values
        present = self.present
        if present is None:
            return Column([v for v, keep in zip(values, mask) if keep])
        kept = [
            (v, p) for v, p, keep in zip(values, present, mask) if keep
        ]
        picked = bytearray(p for _, p in kept)
        if all(picked):
            picked = None
        return Column([v for v, _ in kept], picked)


class ColumnBatch:
    """A columnar snapshot of one row list.

    ``names`` fixes the column order (first-seen across the source
    rows — the same discovery order the row engines use), ``cols`` maps
    each name to its :class:`Column`, and ``nrows`` is the row count
    (``len(batch)`` — every column's value list has exactly this
    length).
    """

    __slots__ = ("nrows", "names", "cols")

    def __init__(
        self,
        names: tuple[str, ...],
        cols: dict[str, Column],
        nrows: int,
    ):
        self.names = names
        self.cols = cols
        self.nrows = nrows

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Sequence[Mapping[str, object]]) -> "ColumnBatch":
        """Build a batch from row dicts (heterogeneous shapes allowed)."""
        if not rows:
            return cls((), {}, 0)
        first = rows[0]
        names = tuple(first)
        # Fast path: homogeneous rows (same key set; order may differ).
        ncols = len(names)
        try:
            cols = {name: [r[name] for r in rows] for name in names}
        except KeyError:
            cols = None
        if cols is not None and all(len(r) == ncols for r in rows):
            return cls(
                names, {name: Column(values) for name, values in cols.items()},
                len(rows),
            )
        return cls._from_rows_generic(rows)

    @classmethod
    def from_homogeneous_rows(
        cls, rows: Sequence[Mapping[str, object]], names: tuple[str, ...]
    ) -> "ColumnBatch":
        """Build from rows known to all carry exactly ``names`` (the
        output of a shaped operator stage) — skips shape detection."""
        return cls(
            names,
            {name: Column([r[name] for r in rows]) for name in names},
            len(rows),
        )

    @classmethod
    def _from_rows_generic(
        cls, rows: Sequence[Mapping[str, object]]
    ) -> "ColumnBatch":
        names: dict[str, None] = {}
        for row in rows:
            for key in row:
                if key not in names:
                    names[key] = None
        nrows = len(rows)
        cols: dict[str, Column] = {}
        for name in names:
            values = []
            present = bytearray(nrows)
            absent = False
            append = values.append
            for i, row in enumerate(rows):
                try:
                    append(row[name])
                    present[i] = 1
                except KeyError:
                    append(None)
                    absent = True
            cols[name] = Column(values, present if absent else None)
        return cls(tuple(names), cols, nrows)

    @classmethod
    def empty(cls, names: tuple[str, ...] = ()) -> "ColumnBatch":
        return cls(names, {name: Column([]) for name in names}, 0)

    # ------------------------------------------------------------------
    # row-view boundary
    # ------------------------------------------------------------------
    def to_rows(self) -> list[Row]:
        """Fresh row dicts (batch column order; absent cells omitted).

        This is the row-view compatibility boundary: the dicts are
        newly built on every call, so callers may mutate them freely
        without aliasing batch storage."""
        names = self.names
        if not names:
            return [{} for _ in range(self.nrows)]
        cols = [self.cols[name] for name in names]
        if all(c.present is None for c in cols):
            value_lists = [c.values for c in cols]
            # Literal dict displays beat dict(zip(...)) by ~2x; narrow
            # batches dominate the workloads, so specialize them.
            if len(names) == 1:
                (n0,), (v0,) = names, value_lists
                return [{n0: a} for a in v0]
            if len(names) == 2:
                n0, n1 = names
                return [{n0: a, n1: b} for a, b in zip(*value_lists)]
            if len(names) == 3:
                n0, n1, n2 = names
                return [
                    {n0: a, n1: b, n2: c} for a, b, c in zip(*value_lists)
                ]
            if len(names) == 4:
                n0, n1, n2, n3 = names
                return [
                    {n0: a, n1: b, n2: c, n3: d}
                    for a, b, c, d in zip(*value_lists)
                ]
            return [
                dict(zip(names, cells)) for cells in zip(*value_lists)
            ]
        out: list[Row] = []
        append = out.append
        columns = [
            (name, c.values, c.present) for name, c in zip(names, cols)
        ]
        for i in range(self.nrows):
            row: Row = {}
            for name, values, present in columns:
                if present is None or present[i]:
                    row[name] = values[i]
            append(row)
        return out

    def row_at(self, i: int) -> Row:
        """One reconstructed row (diagnostics / error messages)."""
        row: Row = {}
        for name in self.names:
            col = self.cols[name]
            if col.present is None or col.present[i]:
                row[name] = col.values[i]
        return row

    # ------------------------------------------------------------------
    # bulk operations
    # ------------------------------------------------------------------
    @property
    def full(self) -> bool:
        """True when every column is fully present (homogeneous rows)."""
        return all(c.present is None for c in self.cols.values())

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        return ColumnBatch(
            self.names,
            {name: c.take(indices) for name, c in self.cols.items()},
            len(indices),
        )

    def compress(self, mask: Sequence) -> "ColumnBatch":
        cols = {name: c.compress(mask) for name, c in self.cols.items()}
        if cols:
            nrows = len(next(iter(cols.values())).values)
        else:
            nrows = sum(1 for keep in mask if keep)
        return ColumnBatch(self.names, cols, nrows)

    def __len__(self) -> int:
        return self.nrows

    def __repr__(self) -> str:
        return (
            f"<ColumnBatch rows={self.nrows} "
            f"cols=[{', '.join(self.names)}]>"
        )

    # ------------------------------------------------------------------
    # incremental maintenance (Instance-private contract)
    # ------------------------------------------------------------------
    def _extend_from_rows(self, rows: Iterable[Mapping[str, object]]) -> None:
        """Absorb appended source rows **in place**.

        Only :meth:`Instance.column_batch` calls this, under the same
        identity/epoch validation as the persistent indexes; operator
        stages never mutate batches."""
        tail = list(rows)
        if not tail:
            return
        old = self.nrows
        cols = self.cols
        known = set(cols)
        new_names: dict[str, None] = {}
        for row in tail:
            for key in row:
                if key not in known and key not in new_names:
                    new_names[key] = None
        for name, col in cols.items():
            values = col.values
            present = col.present
            absent = False
            append = values.append
            grown = bytearray(len(tail))
            for i, row in enumerate(tail):
                try:
                    append(row[name])
                    grown[i] = 1
                except KeyError:
                    append(None)
                    absent = True
            if present is not None:
                present.extend(grown)
            elif absent:
                col.present = bytearray([1]) * old + grown
            col._invalidate()
        for name in new_names:
            values = [None] * old
            present = bytearray(old)
            absent = old > 0
            append = values.append
            grown = bytearray(len(tail))
            for i, row in enumerate(tail):
                try:
                    append(row[name])
                    grown[i] = 1
                except KeyError:
                    append(None)
                    absent = True
            present.extend(grown)
            cols[name] = Column(values, present if absent else None)
        if new_names:
            self.names = self.names + tuple(new_names)
        self.nrows = old + len(tail)
