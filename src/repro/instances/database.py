"""In-memory database instances.

An :class:`Instance` is the concrete representation of a database state
``D`` in the paper's instance-level semantics: a finite set of named
relations, each a bag of rows (``dict`` from attribute name to value).

Entity sets with inheritance (ER/OO schemas) store each object in the
extent of its *root* entity, with the reserved column ``$type`` naming
the object's most specific type — exactly the information the ``IS OF``
predicate of Entity SQL (paper, Figure 2) needs.

Instances also maintain **persistent, incrementally extended indexes**
over their rows — per-(relation, attribute) value postings and
per-(relation, attribute-tuple) projection sets — consumed by the
homomorphism search and the semi-naive chase.  The maintenance contract
(see :meth:`Instance.mark_dirty`): appends through :meth:`insert` and
wholesale list replacement via ``relations[r] = [...]`` are detected
automatically; code that mutates stored row dicts *in place* must call
:meth:`Instance.mark_dirty` afterwards or the indexes go stale.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.errors import SchemaError
from repro.instances.columnar import ColumnBatch
from repro.instances.labeled_null import LabeledNull
from repro.metamodel.schema import Schema

#: Reserved column carrying an object's most-specific entity type.
TYPE_FIELD = "$type"

Row = dict[str, object]


def freeze_row(row: Mapping[str, object]) -> frozenset:
    """A hashable, order-insensitive image of a row (for set semantics)."""
    return frozenset(row.items())


class _IndexTag:
    """Private sentinel used to build index keys that cannot collide
    with user data: unlike the old string-tagged tuples, no genuine row
    value can ever equal a tuple whose first element is this object."""

    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self._name}>"


_NULL_TAG = _IndexTag("labeled-null")
_OPAQUE_TAG = _IndexTag("unhashable")


def null_key_label(key: object) -> Optional[int]:
    """The label behind a ``hashable_key(LabeledNull(l))`` image, or
    ``None`` for every other kind of key.  Lets provenance bookkeeping
    (the incremental runtime) recognise null-valued key components
    without re-deriving them from row values."""
    if isinstance(key, tuple) and len(key) == 2 and key[0] is _NULL_TAG:
        return key[1]  # type: ignore[return-value]
    return None


def hashable_key(value: object) -> object:
    """A hashable stand-in for an arbitrary row value.

    Labeled nulls and unhashable values are wrapped in tuples tagged
    with private sentinels, so a genuine tuple value such as
    ``("⊥", 3)`` can never collide with the key of ``LabeledNull(3)``.
    """
    if isinstance(value, LabeledNull):
        return (_NULL_TAG, value.label)
    try:
        hash(value)
    except TypeError:
        return (_OPAQUE_TAG, repr(value))
    return value


_NO_ROWS: list = []  # shared empty backing list for views of absent relations

#: Shared empty batch for absent relations (immutable by convention).
_EMPTY_BATCH = ColumnBatch((), {}, 0)


class RowsView(Sequence):
    """A read-only, live view of one relation's row list.

    Supports everything read-only callers need (iteration, ``len``,
    indexing, slicing, equality with plain lists) while preventing the
    aliasing bugs of handing out the internal list itself: mutations
    must go through the owning :class:`Instance`.
    """

    __slots__ = ("_rows",)

    def __init__(self, rows: list):
        self._rows = rows

    def __len__(self) -> int:
        return len(self._rows)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._rows[index])
        return self._rows[index]

    def __iter__(self):
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RowsView):
            return self._rows == other._rows
        if isinstance(other, (list, tuple)):
            return self._rows == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"RowsView({self._rows!r})"

    __hash__ = None  # type: ignore[assignment]


class _AttrIndex:
    """Postings index: value key → rows of one relation carrying it."""

    __slots__ = ("source", "seen", "epoch", "postings")

    def __init__(self, source: list, epoch: int):
        self.source = source
        self.seen = 0
        self.epoch = epoch
        self.postings: dict[object, list[Row]] = {}


class _ProjectionSet:
    """Membership index of one relation's rows projected onto an
    attribute tuple (rows lacking any of the attributes are skipped).
    ``members`` maps each projected tuple to its multiplicity so that
    :meth:`Instance.remove_rows` can retract one row without losing
    membership for surviving duplicates."""

    __slots__ = ("source", "seen", "epoch", "members")

    def __init__(self, source: list, epoch: int):
        self.source = source
        self.seen = 0
        self.epoch = epoch
        self.members: dict[tuple, int] = {}


class _BatchEntry:
    """Cached columnar image of one relation (see
    :meth:`Instance.column_batch`), validated exactly like
    :class:`_AttrIndex`: backing-list identity + dirty epoch + a
    ``seen`` watermark that lets appends extend the batch in place."""

    __slots__ = ("source", "seen", "epoch", "batch")

    def __init__(self, source: list, epoch: int):
        self.source = source
        self.seen = 0
        self.epoch = epoch
        self.batch = ColumnBatch((), {}, 0)


class _StatsEntry:
    """Cached :class:`~repro.observability.stats.RelationStats` for one
    relation (see :meth:`Instance.relation_stats`), validated exactly
    like :class:`_BatchEntry`: backing-list identity + dirty epoch + a
    ``seen`` watermark under which appends are absorbed in place while
    removals and epoch bumps force a rebuild."""

    __slots__ = ("source", "seen", "epoch", "stats")

    def __init__(self, source: list, epoch: int, stats):
        self.source = source
        self.seen = 0
        self.epoch = epoch
        self.stats = stats


class Instance:
    """A database state: named relations of rows.

    The optional ``schema`` enables typed insertion
    (:meth:`insert_object`) and validation; an instance can also live
    schema-free, which the logic layer uses for chase intermediates.
    """

    def __init__(self, schema: Optional[Schema] = None):
        self.schema = schema
        self.relations: dict[str, list[Row]] = {}
        # Persistent index caches.  Validated per access against the
        # backing list's identity and length plus ``_dirty_epoch``, so
        # appends extend incrementally while replacements, deletions and
        # declared in-place mutations trigger a rebuild.
        self._attr_indexes: dict[tuple[str, str], _AttrIndex] = {}
        self._projection_sets: dict[tuple[str, tuple[str, ...]], _ProjectionSet] = {}
        self._batches: dict[str, _BatchEntry] = {}
        self._relation_stats: dict[str, _StatsEntry] = {}
        self._dirty_epoch = 0
        # Index-maintenance counters.  Writers append interned event
        # names to ``_stat_events`` (a single ``list.append``, atomic
        # under the GIL, so concurrent shard workers never lose an
        # increment); reads fold the pending events into the totals
        # under ``_stats_lock``.  See the :attr:`index_stats` property.
        self._index_stats = {
            "hits": 0, "extends": 0, "rebuilds": 0, "removes": 0,
            "stats_hits": 0, "stats_extends": 0, "stats_rebuilds": 0,
        }
        self._stat_events: list[str] = []
        self._stats_lock = threading.Lock()

    def __getstate__(self):
        # Locks are neither picklable nor deepcopy-able; the copy gets
        # a fresh one (counter state itself transfers fine).
        state = self.__dict__.copy()
        del state["_stats_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()

    @property
    def index_stats(self) -> dict[str, int]:
        """Index maintenance counters (hits / extends / rebuilds /
        removes, plus the ``stats_*`` family for relation statistics).

        Safe to read while shard workers are mutating the instance's
        indexes: writers only ever append to an event list, and this
        property folds the backlog into the totals under a lock before
        returning them."""
        events = self._stat_events
        if events:
            with self._stats_lock:
                drained = len(events)
                totals = self._index_stats
                for name in events[:drained]:
                    totals[name] += 1
                del events[:drained]
        return self._index_stats

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def insert(self, relation: str, row: Mapping[str, object]) -> Row:
        """Insert ``row`` into ``relation`` (bag semantics; duplicates kept)."""
        stored = dict(row)
        self.relations.setdefault(relation, []).append(stored)
        return stored

    def insert_all(
        self, relation: str, rows: Iterable[Mapping[str, object]]
    ) -> None:
        for row in rows:
            self.insert(relation, row)

    def add(self, relation: str, **values: object) -> Row:
        """Keyword-argument convenience for :meth:`insert`."""
        return self.insert(relation, values)

    def insert_object(self, entity_name: str, **values: object) -> Row:
        """Insert an object of entity type ``entity_name`` into the
        extent of its inheritance root, tagging it with ``$type``.

        Requires a schema.  This is how ER/OO instances are built: the
        paper's Persons entity set holds Person, Employee and Customer
        objects side by side.
        """
        if self.schema is None:
            raise SchemaError("insert_object requires a schema-bound instance")
        entity = self.schema.entity(entity_name)
        if entity.is_abstract:
            raise SchemaError(f"entity {entity_name!r} is abstract")
        legal = set(entity.all_attribute_names())
        unknown = set(values) - legal
        if unknown:
            raise SchemaError(
                f"unknown attributes for {entity_name!r}: {sorted(unknown)}"
            )
        row: Row = {TYPE_FIELD: entity_name}
        row.update(values)
        return self.insert(entity.root().name, row)

    def delete(
        self, relation: str, predicate: Callable[[Row], bool]
    ) -> list[Row]:
        """Remove and return rows of ``relation`` satisfying ``predicate``.

        The relation key is dropped entirely when the deletion empties
        it, so absent and emptied relations are indistinguishable.
        """
        rows = self.relations.get(relation)
        if rows is None:
            return []
        removed = [r for r in rows if predicate(r)]
        kept = [r for r in rows if not predicate(r)]
        if kept:
            self.relations[relation] = kept
        else:
            self.relations.pop(relation, None)
        if removed:
            self.mark_dirty()
        return removed

    def remove_rows(self, relation: str, rows: Iterable[Row]) -> list[Row]:
        """Remove specific stored rows (matched by *identity*) while
        updating the persistent indexes **incrementally** instead of
        invalidating them.

        This is the deletion counterpart of the append-detection in
        :meth:`index_lookup` / :meth:`projection_member`: postings lists
        drop the dead rows, projection multiplicities are decremented,
        and each index's ``seen`` watermark is shifted by the number of
        dead rows it had already absorbed — so a delete batch costs work
        proportional to the batch, not to the relation.  The relation's
        backing list keeps its identity (mutated in place), which is
        what lets current index entries stay valid.
        """
        backing = self.relations.get(relation)
        if backing is None:
            return []
        dead = {id(row) for row in rows}
        if not dead:
            return []
        positions = {id(row): index for index, row in enumerate(backing)}
        removed = [row for row in backing if id(row) in dead]
        if not removed:
            return []
        backing[:] = [row for row in backing if id(row) not in dead]
        epoch = self._dirty_epoch
        for (indexed_relation, attribute), entry in self._attr_indexes.items():
            if (
                indexed_relation != relation
                or entry.source is not backing
                or entry.epoch != epoch
            ):
                continue
            absorbed = 0
            for row in removed:
                if positions[id(row)] >= entry.seen:
                    continue  # never indexed: nothing to retract
                absorbed += 1
                if attribute not in row:
                    continue
                key = hashable_key(row[attribute])
                posting = entry.postings.get(key)
                if posting is not None:
                    posting[:] = [r for r in posting if r is not row]
                    if not posting:
                        del entry.postings[key]
            entry.seen -= absorbed
        for (indexed_relation, attributes), entry in self._projection_sets.items():
            if (
                indexed_relation != relation
                or entry.source is not backing
                or entry.epoch != epoch
            ):
                continue
            absorbed = 0
            for row in removed:
                if positions[id(row)] >= entry.seen:
                    continue
                absorbed += 1
                try:
                    projected = tuple(
                        [hashable_key(row[a]) for a in attributes]
                    )
                except KeyError:
                    continue
                count = entry.members.get(projected, 0) - 1
                if count > 0:
                    entry.members[projected] = count
                else:
                    entry.members.pop(projected, None)
            entry.seen -= absorbed
        # Batches are positional (unlike the id-keyed indexes above), so
        # a removal cannot be absorbed incrementally: drop the cache.
        self._batches.pop(relation, None)
        # Statistics are pure aggregates: decrementing them under
        # removal would need the removed rows' full value profile, so
        # they rebuild on next read instead (same rule as the batches).
        self._relation_stats.pop(relation, None)
        self._stat_events.extend(["removes"] * len(removed))
        return removed

    def clear(self, relation: str) -> None:
        self.relations[relation] = []
        self.mark_dirty()

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def rows(self, relation: str) -> RowsView:
        """A read-only live view of ``relation``'s rows (compares equal
        to plain lists).  Copy with ``list(...)`` before storing
        elsewhere; mutate only through the instance's own methods."""
        return RowsView(self.relations.get(relation, _NO_ROWS))

    def objects_of(
        self,
        entity_name: str,
        strict: bool = False,
        schema: Optional[Schema] = None,
    ) -> list[Row]:
        """Rows whose ``$type`` is (a subtype of) ``entity_name``.

        ``strict=True`` restricts to exactly ``entity_name`` (the
        ``IS OF ONLY`` test of Entity SQL).  ``schema`` overrides the
        instance's bound schema for the is-a lookup — query evaluation
        threads its context schema through here rather than copying the
        whole instance just to rebind it.
        """
        schema = schema if schema is not None else self.schema
        if schema is None:
            raise SchemaError("objects_of requires a schema-bound instance")
        entity = schema.entity(entity_name)
        extent = self.rows(entity.root().name)
        if strict:
            return [r for r in extent if r.get(TYPE_FIELD) == entity_name]
        member_names = {entity.name} | {d.name for d in entity.descendants()}
        return [r for r in extent if r.get(TYPE_FIELD, entity.root().name) in member_names]

    def relation_names(self) -> list[str]:
        return sorted(self.relations)

    def cardinality(self, relation: str) -> int:
        return len(self.relations.get(relation, _NO_ROWS))

    def total_rows(self) -> int:
        return sum(len(rows) for rows in self.relations.values())

    @property
    def is_empty(self) -> bool:
        return all(not rows for rows in self.relations.values())

    # ------------------------------------------------------------------
    # persistent indexes
    # ------------------------------------------------------------------
    def mark_dirty(self) -> None:
        """Invalidate all persistent indexes.

        Call after mutating stored row dicts in place (the chase's egd
        substitution does); appends via :meth:`insert` and wholesale
        relation-list replacement are detected without it.
        """
        self._dirty_epoch += 1

    def stats_epoch(self) -> tuple:
        """A hashable token identifying the current statistics state.

        The adaptive plan cache keys optimized plans by
        ``(query fingerprint, stats_epoch())``, so a cached join order
        is re-planned whenever the statistics that justified it may
        have moved: any append, delete or relation-list replacement
        changes the token (via row counts), as does :meth:`mark_dirty`
        (via ``_dirty_epoch``).  Same-length in-place row mutation
        without ``mark_dirty`` is invisible here, exactly as it is to
        the persistent-index contract.
        """
        return (
            self._dirty_epoch,
            tuple(sorted(
                (name, len(rows))
                for name, rows in self.relations.items()
            )),
        )

    def column_batch(self, relation: str) -> ColumnBatch:
        """The columnar image of ``relation``'s rows (see
        :mod:`repro.instances.columnar`), cached and incrementally
        extended under the persistent-index maintenance contract:
        appends are absorbed in place, while list replacement,
        :meth:`delete`, :meth:`remove_rows` and :meth:`mark_dirty`
        trigger a rebuild on next access.

        The returned batch is shared — callers must treat it as
        immutable (the vectorized executor copies at its output
        boundary, never in place)."""
        rows = self.relations.get(relation)
        if rows is None:
            return _EMPTY_BATCH
        entry = self._batches.get(relation)
        if (
            entry is None
            or entry.source is not rows
            or entry.epoch != self._dirty_epoch
            or entry.seen > len(rows)
        ):
            entry = _BatchEntry(rows, self._dirty_epoch)
            self._batches[relation] = entry
            self._stat_events.append("rebuilds")
        elif entry.seen < len(rows):
            self._stat_events.append("extends")
        else:
            self._stat_events.append("hits")
            return entry.batch
        if entry.seen == 0:
            entry.batch = ColumnBatch.from_rows(rows)
        else:
            entry.batch._extend_from_rows(rows[entry.seen:])
        entry.seen = len(rows)
        return entry.batch

    def relation_stats(self, relation: str):
        """Row-count / per-column statistics for ``relation`` (see
        :class:`repro.observability.stats.RelationStats`), cached and
        incrementally maintained under the persistent-index contract:
        appends since the last read are absorbed in place, while list
        replacement, :meth:`delete`, :meth:`remove_rows` and
        :meth:`mark_dirty` trigger a rebuild on next access
        (``stats_hits`` / ``stats_extends`` / ``stats_rebuilds`` in
        :attr:`index_stats` count which path each read took).

        The returned object is shared with the cache — treat it as
        read-only; it feeds the cardinality estimator behind EXPLAIN
        and the query log."""
        from repro.observability.stats import RelationStats

        rows = self.relations.get(relation)
        if rows is None:
            return RelationStats(relation)
        entry = self._relation_stats.get(relation)
        if (
            entry is None
            or entry.source is not rows
            or entry.epoch != self._dirty_epoch
            or entry.seen > len(rows)
        ):
            entry = _StatsEntry(
                rows, self._dirty_epoch, RelationStats(relation)
            )
            self._relation_stats[relation] = entry
            self._stat_events.append("stats_rebuilds")
        elif entry.seen < len(rows):
            self._stat_events.append("stats_extends")
        else:
            self._stat_events.append("stats_hits")
            return entry.stats
        entry.stats.absorb(rows[entry.seen:])
        entry.seen = len(rows)
        return entry.stats

    def _attr_entry(self, relation: str, attribute: str) -> Optional[_AttrIndex]:
        rows = self.relations.get(relation)
        if rows is None:
            return None
        key = (relation, attribute)
        entry = self._attr_indexes.get(key)
        if (
            entry is None
            or entry.source is not rows
            or entry.epoch != self._dirty_epoch
            or entry.seen > len(rows)
        ):
            entry = _AttrIndex(rows, self._dirty_epoch)
            self._attr_indexes[key] = entry
            self._stat_events.append("rebuilds")
        elif entry.seen < len(rows):
            self._stat_events.append("extends")
        else:
            self._stat_events.append("hits")
            return entry
        postings = entry.postings
        for row in rows[entry.seen:]:
            if attribute in row:
                postings.setdefault(
                    hashable_key(row[attribute]), []
                ).append(row)
        entry.seen = len(rows)
        return entry

    def index_lookup(
        self, relation: str, attribute: str, value: object
    ) -> Sequence[Row]:
        """Rows of ``relation`` whose ``attribute`` equals ``value``,
        served from the incrementally maintained postings index."""
        entry = self._attr_entry(relation, attribute)
        if entry is None:
            return _NO_ROWS
        return entry.postings.get(hashable_key(value), _NO_ROWS)

    def projection_entry(
        self, relation: str, attributes: tuple[str, ...]
    ) -> Optional[_ProjectionSet]:
        """The up-to-date projection index of ``relation`` onto
        ``attributes``, or ``None`` when the relation is absent.

        This is the bulk form of :meth:`projection_member`: callers
        probing many tuples in a tight loop (the sharded chase's
        compiled full-tgd lane) fetch the entry once and test
        ``values in entry.members`` directly.  The entry is a
        point-in-time view — rows appended after the call are only
        visible on the next fetch — and its ``members`` dict must not
        be mutated by callers.
        """
        rows = self.relations.get(relation)
        if rows is None:
            return None
        key = (relation, attributes)
        entry = self._projection_sets.get(key)
        if (
            entry is None
            or entry.source is not rows
            or entry.epoch != self._dirty_epoch
            or entry.seen > len(rows)
        ):
            entry = _ProjectionSet(rows, self._dirty_epoch)
            self._projection_sets[key] = entry
            self._stat_events.append("rebuilds")
        elif entry.seen < len(rows):
            self._stat_events.append("extends")
        else:
            self._stat_events.append("hits")
            return entry
        members = entry.members
        for row in rows[entry.seen:]:
            try:
                projected = tuple([hashable_key(row[a]) for a in attributes])
            except KeyError:
                continue  # row lacks one of the attributes: no match
            members[projected] = members.get(projected, 0) + 1
        entry.seen = len(rows)
        return entry

    def projection_member(
        self, relation: str, attributes: tuple[str, ...], values: tuple
    ) -> bool:
        """Is there a row of ``relation`` whose projection onto
        ``attributes`` equals ``values`` (already ``hashable_key``-mapped)?

        This is the frozen-row membership test the semi-naive chase uses
        in place of a per-trigger homomorphism search for full tgds.
        """
        entry = self.projection_entry(relation, attributes)
        if entry is None:
            return False
        return values in entry.members

    # ------------------------------------------------------------------
    # values
    # ------------------------------------------------------------------
    def active_domain(self) -> set[object]:
        """All constants appearing in the instance (labeled nulls excluded)."""
        domain: set[object] = set()
        for rows in self.relations.values():
            for row in rows:
                for key, value in row.items():
                    if key != TYPE_FIELD and not isinstance(value, LabeledNull):
                        if value is not None:
                            domain.add(value)
        return domain

    def nulls(self) -> set[LabeledNull]:
        """All labeled nulls appearing in the instance."""
        found: set[LabeledNull] = set()
        for rows in self.relations.values():
            for row in rows:
                for value in row.values():
                    if isinstance(value, LabeledNull):
                        found.add(value)
        return found

    def has_nulls(self) -> bool:
        return bool(self.nulls())

    def substitute(self, mapping: Mapping[LabeledNull, object]) -> "Instance":
        """A new instance with labeled nulls replaced per ``mapping``
        (used when egds equate nulls with constants or other nulls)."""
        result = Instance(self.schema)
        for relation, rows in self.relations.items():
            for row in rows:
                result.insert(
                    relation,
                    {
                        k: mapping.get(v, v) if isinstance(v, LabeledNull) else v
                        for k, v in row.items()
                    },
                )
        return result

    def without_null_rows(self) -> "Instance":
        """Drop rows containing labeled nulls — the 'certain part' used
        when returning answers to users (nulls may not be returned)."""
        result = Instance(self.schema)
        for relation, rows in self.relations.items():
            result.relations[relation] = [
                dict(row)
                for row in rows
                if not any(isinstance(v, LabeledNull) for v in row.values())
            ]
        return result

    # ------------------------------------------------------------------
    # comparison & copies
    # ------------------------------------------------------------------
    def copy(self) -> "Instance":
        result = Instance(self.schema)
        for relation, rows in self.relations.items():
            result.relations[relation] = [dict(row) for row in rows]
        return result

    def as_sets(self) -> dict[str, set[frozenset]]:
        """Set-semantics image: relation name → set of frozen rows."""
        return {
            relation: {freeze_row(row) for row in rows}
            for relation, rows in self.relations.items()
            if rows
        }

    def set_equal(self, other: "Instance") -> bool:
        """Equality under set semantics (duplicates and order ignored)."""
        return self.as_sets() == other.as_sets()

    def contains_instance(self, other: "Instance") -> bool:
        """True if every row of ``other`` appears here (set semantics)."""
        mine = self.as_sets()
        for relation, rows in other.as_sets().items():
            if not rows <= mine.get(relation, set()):
                return False
        return True

    def union(self, other: "Instance") -> "Instance":
        result = self.copy()
        for relation, rows in other.relations.items():
            result.insert_all(relation, rows)
        return result

    def deduplicated(self) -> "Instance":
        """A copy with exact duplicate rows removed per relation."""
        result = Instance(self.schema)
        for relation, rows in self.relations.items():
            seen: set[frozenset] = set()
            for row in rows:
                frozen = freeze_row(row)
                if frozen not in seen:
                    seen.add(frozen)
                    result.insert(relation, row)
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self.set_equal(other)

    def __hash__(self) -> int:  # pragma: no cover - instances are mutable
        raise TypeError("Instance is unhashable")

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}:{len(rows)}" for name, rows in sorted(self.relations.items())
        )
        return f"<Instance {parts or 'empty'}>"

    def __iter__(self) -> Iterator[tuple[str, Row]]:
        for relation in sorted(self.relations):
            for row in self.relations[relation]:
                yield relation, row

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------
    def show(self, relation: Optional[str] = None) -> str:
        """ASCII tables for one or all relations (examples print these)."""
        names = [relation] if relation else self.relation_names()
        blocks = []
        for name in names:
            rows = self.rows(name)
            columns: list[str] = []
            for row in rows:
                for key in row:
                    if key not in columns:
                        columns.append(key)
            header = " | ".join(columns)
            lines = [f"{name} ({len(rows)} rows)", header, "-" * max(len(header), 1)]
            for row in rows:
                lines.append(
                    " | ".join(str(row.get(c, "")) for c in columns)
                )
            blocks.append("\n".join(lines))
        return "\n\n".join(blocks)
