"""In-memory database instances.

An :class:`Instance` is the concrete representation of a database state
``D`` in the paper's instance-level semantics: a finite set of named
relations, each a bag of rows (``dict`` from attribute name to value).

Entity sets with inheritance (ER/OO schemas) store each object in the
extent of its *root* entity, with the reserved column ``$type`` naming
the object's most specific type — exactly the information the ``IS OF``
predicate of Entity SQL (paper, Figure 2) needs.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Optional

from repro.errors import SchemaError
from repro.instances.labeled_null import LabeledNull
from repro.metamodel.schema import Schema

#: Reserved column carrying an object's most-specific entity type.
TYPE_FIELD = "$type"

Row = dict[str, object]


def freeze_row(row: Mapping[str, object]) -> frozenset:
    """A hashable, order-insensitive image of a row (for set semantics)."""
    return frozenset(row.items())


class Instance:
    """A database state: named relations of rows.

    The optional ``schema`` enables typed insertion
    (:meth:`insert_object`) and validation; an instance can also live
    schema-free, which the logic layer uses for chase intermediates.
    """

    def __init__(self, schema: Optional[Schema] = None):
        self.schema = schema
        self.relations: dict[str, list[Row]] = {}

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def insert(self, relation: str, row: Mapping[str, object]) -> Row:
        """Insert ``row`` into ``relation`` (bag semantics; duplicates kept)."""
        stored = dict(row)
        self.relations.setdefault(relation, []).append(stored)
        return stored

    def insert_all(
        self, relation: str, rows: Iterable[Mapping[str, object]]
    ) -> None:
        for row in rows:
            self.insert(relation, row)

    def add(self, relation: str, **values: object) -> Row:
        """Keyword-argument convenience for :meth:`insert`."""
        return self.insert(relation, values)

    def insert_object(self, entity_name: str, **values: object) -> Row:
        """Insert an object of entity type ``entity_name`` into the
        extent of its inheritance root, tagging it with ``$type``.

        Requires a schema.  This is how ER/OO instances are built: the
        paper's Persons entity set holds Person, Employee and Customer
        objects side by side.
        """
        if self.schema is None:
            raise SchemaError("insert_object requires a schema-bound instance")
        entity = self.schema.entity(entity_name)
        if entity.is_abstract:
            raise SchemaError(f"entity {entity_name!r} is abstract")
        legal = set(entity.all_attribute_names())
        unknown = set(values) - legal
        if unknown:
            raise SchemaError(
                f"unknown attributes for {entity_name!r}: {sorted(unknown)}"
            )
        row: Row = {TYPE_FIELD: entity_name}
        row.update(values)
        return self.insert(entity.root().name, row)

    def delete(
        self, relation: str, predicate: Callable[[Row], bool]
    ) -> list[Row]:
        """Remove and return rows of ``relation`` satisfying ``predicate``."""
        rows = self.relations.get(relation, [])
        removed = [r for r in rows if predicate(r)]
        self.relations[relation] = [r for r in rows if not predicate(r)]
        return removed

    def clear(self, relation: str) -> None:
        self.relations[relation] = []

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def rows(self, relation: str) -> list[Row]:
        return self.relations.get(relation, [])

    def objects_of(self, entity_name: str, strict: bool = False) -> list[Row]:
        """Rows whose ``$type`` is (a subtype of) ``entity_name``.

        ``strict=True`` restricts to exactly ``entity_name`` (the
        ``IS OF ONLY`` test of Entity SQL).
        """
        if self.schema is None:
            raise SchemaError("objects_of requires a schema-bound instance")
        entity = self.schema.entity(entity_name)
        extent = self.rows(entity.root().name)
        if strict:
            return [r for r in extent if r.get(TYPE_FIELD) == entity_name]
        member_names = {entity.name} | {d.name for d in entity.descendants()}
        return [r for r in extent if r.get(TYPE_FIELD, entity.root().name) in member_names]

    def relation_names(self) -> list[str]:
        return sorted(self.relations)

    def cardinality(self, relation: str) -> int:
        return len(self.rows(relation))

    def total_rows(self) -> int:
        return sum(len(rows) for rows in self.relations.values())

    @property
    def is_empty(self) -> bool:
        return all(not rows for rows in self.relations.values())

    # ------------------------------------------------------------------
    # values
    # ------------------------------------------------------------------
    def active_domain(self) -> set[object]:
        """All constants appearing in the instance (labeled nulls excluded)."""
        domain: set[object] = set()
        for rows in self.relations.values():
            for row in rows:
                for key, value in row.items():
                    if key != TYPE_FIELD and not isinstance(value, LabeledNull):
                        if value is not None:
                            domain.add(value)
        return domain

    def nulls(self) -> set[LabeledNull]:
        """All labeled nulls appearing in the instance."""
        found: set[LabeledNull] = set()
        for rows in self.relations.values():
            for row in rows:
                for value in row.values():
                    if isinstance(value, LabeledNull):
                        found.add(value)
        return found

    def has_nulls(self) -> bool:
        return bool(self.nulls())

    def substitute(self, mapping: Mapping[LabeledNull, object]) -> "Instance":
        """A new instance with labeled nulls replaced per ``mapping``
        (used when egds equate nulls with constants or other nulls)."""
        result = Instance(self.schema)
        for relation, rows in self.relations.items():
            for row in rows:
                result.insert(
                    relation,
                    {
                        k: mapping.get(v, v) if isinstance(v, LabeledNull) else v
                        for k, v in row.items()
                    },
                )
        return result

    def without_null_rows(self) -> "Instance":
        """Drop rows containing labeled nulls — the 'certain part' used
        when returning answers to users (nulls may not be returned)."""
        result = Instance(self.schema)
        for relation, rows in self.relations.items():
            result.relations[relation] = [
                dict(row)
                for row in rows
                if not any(isinstance(v, LabeledNull) for v in row.values())
            ]
        return result

    # ------------------------------------------------------------------
    # comparison & copies
    # ------------------------------------------------------------------
    def copy(self) -> "Instance":
        result = Instance(self.schema)
        for relation, rows in self.relations.items():
            result.relations[relation] = [dict(row) for row in rows]
        return result

    def as_sets(self) -> dict[str, set[frozenset]]:
        """Set-semantics image: relation name → set of frozen rows."""
        return {
            relation: {freeze_row(row) for row in rows}
            for relation, rows in self.relations.items()
            if rows
        }

    def set_equal(self, other: "Instance") -> bool:
        """Equality under set semantics (duplicates and order ignored)."""
        return self.as_sets() == other.as_sets()

    def contains_instance(self, other: "Instance") -> bool:
        """True if every row of ``other`` appears here (set semantics)."""
        mine = self.as_sets()
        for relation, rows in other.as_sets().items():
            if not rows <= mine.get(relation, set()):
                return False
        return True

    def union(self, other: "Instance") -> "Instance":
        result = self.copy()
        for relation, rows in other.relations.items():
            result.insert_all(relation, rows)
        return result

    def deduplicated(self) -> "Instance":
        """A copy with exact duplicate rows removed per relation."""
        result = Instance(self.schema)
        for relation, rows in self.relations.items():
            seen: set[frozenset] = set()
            for row in rows:
                frozen = freeze_row(row)
                if frozen not in seen:
                    seen.add(frozen)
                    result.insert(relation, row)
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self.set_equal(other)

    def __hash__(self) -> int:  # pragma: no cover - instances are mutable
        raise TypeError("Instance is unhashable")

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}:{len(rows)}" for name, rows in sorted(self.relations.items())
        )
        return f"<Instance {parts or 'empty'}>"

    def __iter__(self) -> Iterator[tuple[str, Row]]:
        for relation in sorted(self.relations):
            for row in self.relations[relation]:
                yield relation, row

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------
    def show(self, relation: Optional[str] = None) -> str:
        """ASCII tables for one or all relations (examples print these)."""
        names = [relation] if relation else self.relation_names()
        blocks = []
        for name in names:
            rows = self.rows(name)
            columns: list[str] = []
            for row in rows:
                for key in row:
                    if key not in columns:
                        columns.append(key)
            header = " | ".join(columns)
            lines = [f"{name} ({len(rows)} rows)", header, "-" * max(len(header), 1)]
            for row in rows:
                lines.append(
                    " | ".join(str(row.get(c, "")) for c in columns)
                )
            blocks.append("\n".join(lines))
        return "\n\n".join(blocks)
