"""JSON serialization of database instances.

Rounds-trips every value kind the engine produces, including labeled
nulls (as ``{"⊥": label}`` objects), dates/datetimes (ISO strings with
a type tag) and byte strings (hex with a type tag), so instances can be
stored next to schemas in the metadata repository and shipped to the
command-line tools.
"""

from __future__ import annotations

import datetime
import json
from typing import Union

from repro.errors import RepositoryError
from repro.instances.database import Instance
from repro.instances.labeled_null import LabeledNull
from repro.metamodel.schema import Schema


def _value_to_json(value: object) -> object:
    if isinstance(value, LabeledNull):
        return {"⊥": value.label, "hint": value.hint}
    if isinstance(value, datetime.datetime):
        return {"$type": "datetime", "value": value.isoformat()}
    if isinstance(value, datetime.date):
        return {"$type": "date", "value": value.isoformat()}
    if isinstance(value, bytes):
        return {"$type": "bytes", "value": value.hex()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise RepositoryError(f"unserializable value {value!r}")


def _value_from_json(value: object) -> object:
    if isinstance(value, dict):
        if "⊥" in value:
            return LabeledNull(int(value["⊥"]), value.get("hint", ""))
        tag = value.get("$type")
        if tag == "datetime":
            return datetime.datetime.fromisoformat(value["value"])
        if tag == "date":
            return datetime.date.fromisoformat(value["value"])
        if tag == "bytes":
            return bytes.fromhex(value["value"])
        raise RepositoryError(f"unknown value tag {value!r}")
    return value


def instance_to_dict(instance: Instance) -> dict:
    return {
        "schema": instance.schema.name if instance.schema else None,
        "relations": {
            relation: [
                {key: _value_to_json(v) for key, v in row.items()}
                for row in rows
            ]
            for relation, rows in instance.relations.items()
        },
    }


def instance_from_dict(data: dict, schema: Union[Schema, None] = None) -> Instance:
    instance = Instance(schema)
    for relation, rows in data.get("relations", {}).items():
        for row in rows:
            instance.insert(
                relation,
                {key: _value_from_json(v) for key, v in row.items()},
            )
    return instance


def dump_instance(instance: Instance, indent: int = 2) -> str:
    return json.dumps(instance_to_dict(instance), indent=indent,
                      ensure_ascii=False)


def load_instance(text: str, schema: Union[Schema, None] = None) -> Instance:
    return instance_from_dict(json.loads(text), schema)
