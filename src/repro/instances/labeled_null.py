"""Labeled nulls for universal instances.

Data exchange with non-full tgds produces target instances containing
*labeled nulls*: placeholders that "are needed to compute the answers
to queries but are not allowed to be returned as part of the answer"
(paper, Section 4).  Two labeled nulls are equal iff they carry the
same label; the chase may later *equate* nulls (via egds), which is
implemented by substitution rather than mutation.
"""

from __future__ import annotations

import itertools
from typing import Optional


class LabeledNull:
    """A distinct unknown value, optionally annotated with provenance.

    ``label`` is globally unique per :class:`NullFactory`; ``hint``
    records which Skolem function / tgd produced the null, which the
    provenance service surfaces during debugging.
    """

    __slots__ = ("label", "hint")

    def __init__(self, label: int, hint: str = ""):
        self.label = label
        self.hint = hint

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LabeledNull) and other.label == self.label

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(("⊥", self.label))

    def __repr__(self) -> str:
        suffix = f":{self.hint}" if self.hint else ""
        return f"⊥{self.label}{suffix}"

    def __lt__(self, other: object) -> bool:
        # Labeled nulls sort after all concrete values and among
        # themselves by label, so relations have a deterministic order.
        if isinstance(other, LabeledNull):
            return self.label < other.label
        return False

    def __gt__(self, other: object) -> bool:
        if isinstance(other, LabeledNull):
            return self.label > other.label
        return True


class NullFactory:
    """Mints fresh labeled nulls with unique labels."""

    def __init__(self, start: int = 0):
        self._counter = itertools.count(start)

    def fresh(self, hint: str = "") -> LabeledNull:
        return LabeledNull(next(self._counter), hint)

    def peek(self) -> int:
        """The label the next :meth:`fresh` call will carry, without
        consuming it."""
        value = next(self._counter)
        self._counter = itertools.count(value)
        return value

    def advance_to(self, label: int) -> None:
        """Ensure every future label is ``>= label``.  The sharded
        chase mints per-shard labels from strided sub-ranges and calls
        this afterwards so the shared factory never re-issues one."""
        if label > self.peek():
            self._counter = itertools.count(label)


def is_null(value: object) -> bool:
    """True for SQL ``NULL`` (Python ``None``) and labeled nulls alike."""
    return value is None or isinstance(value, LabeledNull)
