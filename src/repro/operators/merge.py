"""The Merge operator (paper, Section 6.3).

Merge "takes as input the two schemas to be merged and a mapping
between them that describes where the two schemas overlap.  It returns
a merged schema along with mappings between the merged schema and each
of the two input schemas."  The algorithm follows Pottinger &
Bernstein's correspondence-driven merge [82], adapted to the universal
metamodel:

* corresponding entities collapse into one merged entity (first
  input's name is preferred);
* corresponding attributes collapse, their types reconciled to the
  common supertype;
* non-corresponding elements are copied through; name collisions from
  unrelated elements are disambiguated with the owning schema's name;
* keys, foreign keys and hierarchy edges are carried over where their
  referenced elements survive;
* the output mappings are identity-style st-tgds from each input into
  the merged schema, so data from either side can be migrated in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MappingError
from repro.logic.dependencies import TGD
from repro.logic.formulas import Atom
from repro.logic.terms import Var
from repro.mappings.correspondence import CorrespondenceSet
from repro.mappings.mapping import Mapping
from repro.metamodel.constraints import (
    Covering,
    Disjointness,
    InclusionDependency,
    KeyConstraint,
    NotNull,
)
from repro.metamodel.elements import Attribute, Entity
from repro.metamodel.schema import Schema
from repro.metamodel.types import common_supertype
from repro.observability.instrument import instrumented


@dataclass
class MergeResult:
    """Merged schema plus embeddings of both inputs."""

    schema: Schema
    mapping_first: Mapping
    mapping_second: Mapping
    collisions_renamed: dict[str, str]

    def describe(self) -> str:
        lines = [self.schema.describe()]
        if self.collisions_renamed:
            lines.append("renamed collisions:")
            for old, new in sorted(self.collisions_renamed.items()):
                lines.append(f"  {old} → {new}")
        return "\n".join(lines)


@instrumented("op.merge", attrs=lambda first, second, correspondences, *a, **k: {
    "first.entities": len(first.entities),
    "second.entities": len(second.entities),
    "correspondences": len(correspondences),
})
def merge(
    first: Schema,
    second: Schema,
    correspondences: CorrespondenceSet,
    name: str = "",
) -> MergeResult:
    """Merge two schemas along the given correspondences."""
    if correspondences.source.name != first.name or (
        correspondences.target.name != second.name
    ):
        raise MappingError(
            "correspondence set endpoints do not match the schemas to merge"
        )
    merged = Schema(name or f"{first.name}+{second.name}", _merge_metamodel(first, second))
    collisions: dict[str, str] = {}

    entity_map_second: dict[str, str] = {}  # second entity → merged entity
    for s_entity, t_entity in correspondences.entity_pairs():
        entity_map_second[t_entity] = s_entity
    attribute_map_second: dict[str, tuple[str, str]] = {}
    for correspondence in correspondences.attribute_pairs():
        attribute_map_second[correspondence.target.path] = (
            correspondence.source.entity,
            correspondence.source.attribute,
        )

    # 1. Copy the first schema wholesale.
    first_to_merged: dict[str, tuple[str, dict[str, str]]] = {}
    for entity in first.entities.values():
        copy = entity.clone()
        merged.add_entity(copy)
        first_to_merged[entity.name] = (
            entity.name,
            {a.name: a.name for a in entity.attributes},
        )
    for entity in first.entities.values():
        if entity.parent is not None:
            merged.entities[entity.name].parent = merged.entities[entity.parent.name]

    # 2. Fold in the second schema.
    second_to_merged: dict[str, tuple[str, dict[str, str]]] = {}
    for entity in second.entities.values():
        target_name = entity_map_second.get(entity.name)
        if target_name is not None and target_name in merged.entities:
            merged_entity = merged.entities[target_name]
            attr_names: dict[str, str] = {}
            for attribute in entity.attributes:
                path = f"{entity.name}.{attribute.name}"
                corresponding = attribute_map_second.get(path)
                if corresponding is not None and corresponding[0] == target_name:
                    # Collapse onto the corresponding first-schema attribute.
                    existing = merged_entity.attribute(corresponding[1])
                    existing.data_type = common_supertype(
                        existing.data_type, attribute.data_type
                    )
                    existing.nullable = existing.nullable or attribute.nullable
                    attr_names[attribute.name] = corresponding[1]
                elif merged_entity.has_attribute(attribute.name):
                    if attribute_map_second.get(path) is None and not _same_shape(
                        merged_entity.attribute(attribute.name), attribute
                    ):
                        renamed = f"{attribute.name}_{second.name}"
                        merged_entity.add_attribute(
                            Attribute(renamed, attribute.data_type,
                                      attribute.nullable)
                        )
                        collisions[path] = f"{target_name}.{renamed}"
                        attr_names[attribute.name] = renamed
                    else:
                        # Same name, compatible shape: treat as implicit
                        # correspondence.
                        existing = merged_entity.attribute(attribute.name)
                        existing.data_type = common_supertype(
                            existing.data_type, attribute.data_type
                        )
                        attr_names[attribute.name] = attribute.name
                else:
                    merged_entity.add_attribute(attribute.clone())
                    attr_names[attribute.name] = attribute.name
            second_to_merged[entity.name] = (target_name, attr_names)
        else:
            # Non-corresponding entity: copy, renaming on collision.
            new_name = entity.name
            if new_name in merged.entities:
                new_name = f"{entity.name}_{second.name}"
                collisions[entity.name] = new_name
            copy = Entity(new_name, entity.is_abstract)
            copy.key = entity.key
            for attribute in entity.attributes:
                copy.add_attribute(attribute.clone())
            merged.add_entity(copy)
            second_to_merged[entity.name] = (
                new_name,
                {a.name: a.name for a in entity.attributes},
            )
    for entity in second.entities.values():
        if entity.parent is None:
            continue
        child = second_to_merged[entity.name][0]
        parent = second_to_merged[entity.parent.name][0]
        if merged.entities[child].parent is None:
            merged.entities[child].parent = merged.entities[parent]

    # 3. Constraints.
    for constraint in first.constraints:
        merged.add_constraint(constraint)
    for constraint in second.constraints:
        rewritten = _rewrite_constraint(constraint, second_to_merged)
        if rewritten is not None:
            merged.add_constraint(rewritten)

    mapping_first = _embedding(first, merged, first_to_merged, "merge_first")
    mapping_second = _embedding(second, merged, second_to_merged, "merge_second")
    return MergeResult(
        schema=merged,
        mapping_first=mapping_first,
        mapping_second=mapping_second,
        collisions_renamed=collisions,
    )


def _merge_metamodel(first: Schema, second: Schema) -> str:
    if first.metamodel == second.metamodel:
        return first.metamodel
    return "universal"


def _same_shape(a: Attribute, b: Attribute) -> bool:
    from repro.metamodel.types import type_compatibility

    return type_compatibility(a.data_type, b.data_type) >= 0.7


def _rewrite_constraint(constraint, renaming: dict[str, tuple[str, dict[str, str]]]):
    def entity_of(name: str):
        return renaming.get(name, (name, {}))[0]

    def attr_of(entity: str, attribute: str):
        return renaming.get(entity, (entity, {}))[1].get(attribute, attribute)

    if isinstance(constraint, KeyConstraint):
        return KeyConstraint(
            entity_of(constraint.entity),
            tuple(attr_of(constraint.entity, a) for a in constraint.attributes),
            constraint.is_primary,
        )
    if isinstance(constraint, InclusionDependency):
        return InclusionDependency(
            entity_of(constraint.source),
            tuple(attr_of(constraint.source, a) for a in constraint.source_attributes),
            entity_of(constraint.target),
            tuple(attr_of(constraint.target, a) for a in constraint.target_attributes),
        )
    if isinstance(constraint, Disjointness):
        return Disjointness(tuple(entity_of(e) for e in constraint.entities))
    if isinstance(constraint, Covering):
        return Covering(
            entity_of(constraint.entity),
            tuple(entity_of(e) for e in constraint.covered_by),
        )
    if isinstance(constraint, NotNull):
        return NotNull(
            entity_of(constraint.entity),
            attr_of(constraint.entity, constraint.attribute),
        )
    return None


def _embedding(
    source: Schema,
    merged: Schema,
    renaming: dict[str, tuple[str, dict[str, str]]],
    name: str,
) -> Mapping:
    """Identity-style st-tgds: each source entity populates its merged
    counterpart; merged attributes without a source become existential."""
    tgds: list[TGD] = []
    for entity in source.entities.values():
        merged_name, attr_names = renaming[entity.name]
        merged_entity = merged.entities[merged_name]
        body_args = tuple(
            (a.name, Var(f"x_{a.name}")) for a in entity.attributes
        )
        source_to_var = {
            attr_names[a.name]: Var(f"x_{a.name}") for a in entity.attributes
        }
        head_args = []
        for attribute in merged_entity.attributes:
            head_args.append(
                (
                    attribute.name,
                    source_to_var.get(attribute.name, Var(f"e_{attribute.name}")),
                )
            )
        tgds.append(
            TGD(
                body=(Atom(entity.name, body_args),),
                head=(Atom(merged_name, tuple(head_args)),),
                name=f"{name}_{entity.name}",
            )
        )
    return Mapping(source, merged, tgds, name=name)
