"""The TransGen operator (paper, Section 4).

TransGen "produces a transformation that is consistent with the mapping
constraints it takes as input".  Three constraint languages, three
compilation paths:

* **st-tgds / GLAV** → a chase-based *data-exchange program* computing
  a universal solution (optionally minimized to its core), whose
  query-answering semantics is certain answers — the Clio/[38][39]
  approach;
* **second-order tgds** (composition output) → direct execution with
  Skolem semantics;
* **bidirectional equality constraints over an inheritance hierarchy**
  (the Figure 2 / ADO.NET case) → a *query view* expressing the entity
  side as a function of the tables — the Figure 3 query — and an
  *update view* expressing the tables as a function of the entities,
  verified to **roundtrip**: update ∘ query = identity on the entity
  side ("the views must be lossless", Section 4).

The query-view generation algorithm reconstructs each concrete entity
type from its *fragment pattern*: the set of constraints whose type set
includes it.  A type's instances are the key-join of its fragments,
minus keys claimed by types with strictly richer patterns — equivalent
to Figure 3's left-outer-join + ``_from`` flags formulation, expressed
with joins and anti-joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.algebra import expressions as E
from repro.algebra import scalars as S
from repro.algebra.evaluator import evaluate
from repro.algebra.optimizer import optimize
from repro.errors import RoundTripError, TransformationError
from repro.instances.database import TYPE_FIELD, Instance
from repro.logic.chase import ChaseStats, chase
from repro.logic.core_computation import core_of
from repro.mappings.mapping import EqualityConstraint, Mapping
from repro.metamodel.elements import Entity
from repro.metamodel.schema import Schema


# ----------------------------------------------------------------------
# transformations
# ----------------------------------------------------------------------
class Transformation:
    """An executable function from instances of one schema to another.

    ``engine`` selects the query-execution engine for transformations
    that evaluate algebra (see :func:`repro.algebra.evaluate`);
    chase-based transformations accept and ignore it.
    """

    name: str = "transformation"

    def apply(
        self, instance: Instance, engine: Optional[str] = None
    ) -> Instance:
        raise NotImplementedError

    def __call__(self, instance: Instance) -> Instance:
        return self.apply(instance)


class AlgebraTransformation(Transformation):
    """A set of (output relation, algebra expression) rules evaluated
    against the input instance."""

    def __init__(
        self,
        rules: Sequence[tuple[str, E.RelExpr]],
        input_schema: Optional[Schema] = None,
        output_schema: Optional[Schema] = None,
        name: str = "view",
        engine: Optional[str] = None,
    ):
        self.rules = list(rules)
        self.input_schema = input_schema
        self.output_schema = output_schema
        self.name = name
        #: Default engine for :meth:`apply` (None → process default).
        self.engine = engine

    def apply(
        self, instance: Instance, engine: Optional[str] = None
    ) -> Instance:
        engine = engine if engine is not None else self.engine
        result = Instance(self.output_schema)
        for relation, expr in self.rules:
            rows = evaluate(expr, instance, self.input_schema, engine=engine)
            result.relations.setdefault(relation, [])
            result.insert_all(relation, self._normalize(rows))
        deduplicated = result.deduplicated()
        for relation, _ in self.rules:
            deduplicated.relations.setdefault(relation, [])
        return deduplicated

    def output_relations_touched_by(self, touched: set) -> set:
        """Output relations owning at least one rule that scans a
        relation in ``touched``."""
        hit = set()
        for relation, expr in self.rules:
            if scan_relations(expr, self.input_schema) & touched:
                hit.add(relation)
        return hit

    def apply_delta(
        self,
        instance: Instance,
        previous_output: Instance,
        touched: set,
        engine: Optional[str] = None,
    ) -> Instance:
        """Like :meth:`apply`, but re-evaluates only the output
        relations whose rules scan a relation in ``touched``; every
        other output relation is carried over from ``previous_output``
        unchanged.  Sound because each rule's output is a function of
        exactly the relations it scans."""
        engine = engine if engine is not None else self.engine
        recompute = self.output_relations_touched_by(touched)
        partial = Instance(self.output_schema)
        for relation, expr in self.rules:
            if relation not in recompute:
                continue
            rows = evaluate(expr, instance, self.input_schema, engine=engine)
            partial.relations.setdefault(relation, [])
            partial.insert_all(relation, self._normalize(rows))
        partial = partial.deduplicated()
        result = Instance(self.output_schema)
        for relation, _ in self.rules:
            if relation in result.relations:
                continue
            if relation in recompute:
                result.relations[relation] = list(partial.rows(relation))
            else:
                result.relations[relation] = [
                    dict(row) for row in previous_output.rows(relation)
                ]
        return result

    def _normalize(self, rows: list) -> list:
        """Typed extent rows (union branches pad each other's columns
        with nulls) are restricted to their ``$type``'s declared
        attributes, matching how entity instances are built."""
        if self.output_schema is None:
            return rows
        normalized = []
        for row in rows:
            type_name = row.get(TYPE_FIELD)
            if type_name is None or type_name not in self.output_schema.entities:
                normalized.append(row)
                continue
            entity = self.output_schema.entity(str(type_name))
            legal = set(entity.all_attribute_names()) | {TYPE_FIELD}
            normalized.append({k: v for k, v in row.items() if k in legal})
        return normalized

    def size(self) -> int:
        return sum(expr.size() for _, expr in self.rules)

    def describe(self) -> str:
        lines = [f"transformation {self.name}:"]
        for relation, expr in self.rules:
            lines.append(f"  {relation} := {expr!r}")
        return "\n".join(lines)


def scan_relations(expr: E.RelExpr, schema: Optional[Schema] = None) -> set:
    """The base relations an algebra expression reads: ``Scan``
    relations plus the root extents of ``EntityScan`` s (resolved
    through ``schema`` when it knows the entity)."""
    found: set = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, E.Scan):
            found.add(node.relation)
        elif isinstance(node, E.EntityScan):
            if schema is not None and node.entity in schema.entities:
                found.add(schema.entity(node.entity).root().name)
            else:
                found.add(node.entity)
        stack.extend(node.inputs())
    return found


def exchange_dependencies(
    mapping: Mapping, enforce_target_keys: bool = False
) -> list:
    """The chase dependency set of a tgd mapping's data exchange: the
    mapping's constraints plus, when ``enforce_target_keys``, the
    target's primary-key constraints as egds (the Section 4 interplay
    of mappings with target constraints).  Shared by
    :class:`ExchangeTransformation` and the incremental runtime
    (:mod:`repro.runtime.incremental`), which must chase with the
    *same* dependency list to keep provenance indexes aligned."""
    dependencies = list(mapping.constraints)
    if enforce_target_keys:
        from repro.logic.dependencies import key_egd
        from repro.metamodel.constraints import KeyConstraint

        for constraint in mapping.target.constraints:
            if isinstance(constraint, KeyConstraint) and constraint.is_primary:
                entity = mapping.target.entity(constraint.entity)
                dependencies.append(
                    key_egd(
                        constraint.entity,
                        list(constraint.attributes),
                        list(entity.all_attribute_names()),
                    )
                )
    return dependencies


class ExchangeTransformation(Transformation):
    """Chase-based data exchange for (SO-)tgd mappings: computes a
    universal solution over the target relations.

    Like all of data-exchange theory, this assumes the source and
    target signatures are **disjoint**: a relation name shared by both
    schemas would make the chased instance mix source rows into the
    "target" extent.  Rename one side (e.g.
    ``synthetic.perturbed_copy(..., distinct_entity_names=True)``)
    before exchanging.
    """

    def __init__(self, mapping: Mapping, compute_core: bool = False,
                 enforce_target_keys: bool = False, name: str = "exchange"):
        self.mapping = mapping
        self.compute_core = compute_core
        self.enforce_target_keys = enforce_target_keys
        self.name = name
        #: ChaseStats of the most recent :meth:`apply` (None for so-tgd
        #: execution, which bypasses the chase).
        self.last_chase_stats: Optional[ChaseStats] = None

    def _dependencies(self):
        return exchange_dependencies(self.mapping, self.enforce_target_keys)

    def apply(
        self, instance: Instance, engine: Optional[str] = None
    ) -> Instance:
        # ``engine`` is accepted for interface uniformity; the chase and
        # so-tgd execution do not run relational algebra.
        self.last_chase_stats = None
        if self.mapping.so_tgd is not None:
            from repro.logic.second_order import execute_so_tgd

            produced = execute_so_tgd(self.mapping.so_tgd, instance)
        else:
            result = chase(instance, self._dependencies())
            self.last_chase_stats = result.stats
            chased = result.instance
            produced = Instance()
            for relation in self.mapping.target.entities:
                if chased.rows(relation):
                    produced.relations[relation] = list(chased.rows(relation))
        if self.compute_core:
            produced = core_of(produced)
        produced.schema = self.mapping.target
        return produced


@dataclass
class TransformationPair:
    """Query view + update view for a bidirectional equality mapping.

    ``query_view``: entity side as a function of the table side
    (Figure 3); ``update_view``: table side as a function of the entity
    side.  :meth:`verify_roundtrip` checks losslessness.
    """

    query_view: AlgebraTransformation
    update_view: AlgebraTransformation
    mapping: Mapping

    def verify_roundtrip(self, entity_instance: Instance) -> None:
        """update ∘ query must be the identity on the entity side."""
        tables = self.update_view.apply(entity_instance)
        recovered = self.query_view.apply(tables)
        if not recovered.set_equal(_restrict(entity_instance,
                                             set(recovered.relations))):
            raise RoundTripError(
                "query(update(D)) ≠ D — generated views are lossy.\n"
                f"original: {entity_instance!r}\nrecovered: {recovered!r}"
            )

    def verify_constraints(self, entity_instance: Instance) -> bool:
        """The generated table state must satisfy the input mapping."""
        tables = self.update_view.apply(entity_instance)
        return self.mapping.holds_for(tables, entity_instance)


def _restrict(instance: Instance, relations: set[str]) -> Instance:
    result = Instance(instance.schema)
    for relation in relations:
        if instance.rows(relation):
            result.relations[relation] = [dict(r) for r in instance.rows(relation)]
    return result


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def transgen(
    mapping: Mapping,
    compute_core: bool = False,
    enforce_target_keys: bool = False,
):
    """Generate the transformation(s) implementing ``mapping``.

    Returns an :class:`ExchangeTransformation` for (SO-)tgd mappings and
    a :class:`TransformationPair` for equality mappings.
    ``enforce_target_keys`` adds the target schema's primary keys as
    egds to the exchange chase (tgd mappings only).
    """
    if mapping.equalities:
        return _views_from_equalities(mapping)
    return ExchangeTransformation(mapping, compute_core=compute_core,
                                  enforce_target_keys=enforce_target_keys,
                                  name=f"exchange_{mapping.name}")


# ----------------------------------------------------------------------
# fragment analysis for equality mappings
# ----------------------------------------------------------------------
@dataclass
class _Fragment:
    """One analyzed equality constraint."""

    constraint: EqualityConstraint
    table: str
    table_selection: dict[str, object]      # column → literal (e.g. discriminator)
    output_to_table: dict[str, str]         # output column → table column
    output_to_attr: dict[str, str]          # output column → entity attribute
    types: frozenset[str]                   # concrete entity types included
    root: str                               # hierarchy root entity

    def key_columns(self, root_key: Sequence[str]) -> list[str]:
        inverse = {attr: col for col, attr in self.output_to_attr.items()}
        missing = [k for k in root_key if k not in inverse]
        if missing:
            raise TransformationError(
                f"fragment {self.constraint.name!r} does not expose key "
                f"attributes {missing}"
            )
        return [inverse[k] for k in root_key]


def _views_from_equalities(mapping: Mapping) -> TransformationPair:
    entity_schema = mapping.target
    table_schema = mapping.source
    fragments: list[_Fragment] = []
    copies: list[EqualityConstraint] = []
    for constraint in mapping.equalities:
        fragment = _analyze(constraint, entity_schema)
        if fragment is None:
            copies.append(constraint)
        else:
            fragments.append(fragment)

    query_rules: list[tuple[str, E.RelExpr]] = []
    update_rules: list[tuple[str, E.RelExpr]] = []

    # Hierarchy fragments, grouped by root.
    by_root: dict[str, list[_Fragment]] = {}
    for fragment in fragments:
        by_root.setdefault(fragment.root, []).append(fragment)
    for root_name, root_fragments in sorted(by_root.items()):
        root = entity_schema.entity(root_name)
        query_rules.append(
            (root_name, _query_view_expr(root, root_fragments))
        )
        update_rules.extend(_update_view_rules(root, root_fragments,
                                               table_schema))

    # Plain copy constraints (no hierarchy): table side is the rule for
    # the entity side and vice versa.  Output columns beyond the target
    # relation's attributes (e.g. a constant the constraint pins, like
    # Figure 6's Country='US' on Local) are projected away.
    # A constraint yields a rule in a direction only when the *other*
    # side reduces to a single (selected/projected) relation — e.g. a
    # composed view constraint like Figure 6's "Students = <expression
    # over S′>" defines Students but is not updatable, so only one
    # direction materializes.
    for constraint in copies:
        try:
            out_relation, renames = _copy_targets(constraint, entity_schema)
        except TransformationError:
            out_relation = None
        if out_relation is not None:
            expr: E.RelExpr = constraint.source_expr
            if renames:
                expr = E.Rename(expr, renames)
            expr = _fit_to_relation(expr, entity_schema, out_relation)
            query_rules.append((out_relation, expr))
        try:
            table, table_renames = _copy_targets(constraint, table_schema,
                                                 side="source")
        except TransformationError:
            table = None
        if table is not None:
            back: E.RelExpr = constraint.target_expr
            if table_renames:
                back = E.Rename(back, table_renames)
            back = _fit_to_relation(back, table_schema, table)
            update_rules.append((table, back))
        if out_relation is None and table is None:
            raise TransformationError(
                f"constraint {constraint.name!r} defines no relation on "
                "either side; cannot compile it"
            )

    query_view = AlgebraTransformation(
        [(rel, optimize(expr)) for rel, expr in query_rules],
        input_schema=table_schema,
        output_schema=entity_schema,
        name=f"query_view_{mapping.name}",
    )
    update_view = AlgebraTransformation(
        [(rel, optimize(expr)) for rel, expr in update_rules],
        input_schema=entity_schema,
        output_schema=table_schema,
        name=f"update_view_{mapping.name}",
    )
    return TransformationPair(query_view=query_view, update_view=update_view,
                              mapping=mapping)


def _analyze(
    constraint: EqualityConstraint, entity_schema: Schema
) -> Optional[_Fragment]:
    """Decompose a constraint into a fragment; None for plain copies."""
    target_info = _entity_side_shape(constraint.target_expr, entity_schema)
    if target_info is None:
        return None
    root, types, output_to_attr = target_info
    source_info = _table_side_shape(constraint.source_expr)
    if source_info is None:
        raise TransformationError(
            f"constraint {constraint.name!r}: table side is not a "
            "selected/projected scan"
        )
    table, selection, output_to_table = source_info
    return _Fragment(
        constraint=constraint,
        table=table,
        table_selection=selection,
        output_to_table=output_to_table,
        output_to_attr=output_to_attr,
        types=frozenset(types),
        root=root,
    )


def _entity_side_shape(expr: E.RelExpr, schema: Schema):
    """Match π[(col, Col(attr))...](σ[type-pred]?(EntityScan(root)))."""
    output_to_attr: dict[str, str] = {}
    current = expr
    if isinstance(current, E.Distinct):
        current = current.input
    if not isinstance(current, E.Project):
        return None
    for name, scalar in current.outputs:
        if not isinstance(scalar, S.Col):
            return None
        output_to_attr[name] = scalar.name
    current = current.input
    predicate: Optional[S.Predicate] = None
    if isinstance(current, E.Select):
        predicate = current.predicate
        current = current.input
    if not isinstance(current, E.EntityScan):
        return None
    entity = schema.entity(current.entity)
    root = entity.root()
    if not entity.children() and entity.parent is None:
        return None  # flat entity: treat as a copy constraint
    types = _types_of_predicate(predicate, entity, schema, current.only)
    return root.name, types, output_to_attr


def _types_of_predicate(
    predicate: Optional[S.Predicate],
    scanned: Entity,
    schema: Schema,
    scan_only: bool,
) -> set[str]:
    scan_types = (
        {scanned.name}
        if scan_only
        else {
            e.name
            for e in [scanned] + scanned.descendants()
            if not e.is_abstract
        }
    )
    if predicate is None:
        return scan_types

    def of(p: S.Predicate) -> set[str]:
        if isinstance(p, S.IsOf):
            entity = schema.entity(p.entity)
            if p.only:
                return {p.entity} if not entity.is_abstract else set()
            return {
                e.name
                for e in [entity] + entity.descendants()
                if not e.is_abstract
            }
        if isinstance(p, S.Or):
            result: set[str] = set()
            for operand in p.operands:
                result |= of(operand)
            return result
        if isinstance(p, S.And):
            result = None
            for operand in p.operands:
                types = of(operand)
                result = types if result is None else result & types
            return result or set()
        raise TransformationError(
            f"unsupported type predicate {p!r} on the entity side"
        )

    return of(predicate) & scan_types


def _table_side_shape(expr: E.RelExpr):
    """Match π[(col, Col(c))...](σ[col=lit ∧ ...]?(Scan(table)))."""
    current = expr
    if isinstance(current, E.Distinct):
        current = current.input
    output_to_table: dict[str, str] = {}
    if isinstance(current, E.Project):
        for name, scalar in current.outputs:
            if not isinstance(scalar, S.Col):
                return None
            output_to_table[name] = scalar.name
        current = current.input
    selection: dict[str, object] = {}
    if isinstance(current, E.Select):
        for comparison in _conjuncts(current.predicate):
            if (
                isinstance(comparison, S.Comparison)
                and comparison.op == "="
                and isinstance(comparison.left, S.Col)
                and isinstance(comparison.right, S.Lit)
            ):
                selection[comparison.left.name] = comparison.right.value
            else:
                return None
        current = current.input
    if not isinstance(current, E.Scan):
        return None
    if not output_to_table:
        return None
    return current.relation, selection, output_to_table


def _conjuncts(predicate: S.Predicate) -> list[S.Predicate]:
    if isinstance(predicate, S.And):
        result = []
        for operand in predicate.operands:
            result.extend(_conjuncts(operand))
        return result
    return [predicate]


# ----------------------------------------------------------------------
# query view (Figure 3)
# ----------------------------------------------------------------------
def _query_view_expr(root: Entity, fragments: list[_Fragment]) -> E.RelExpr:
    """Reconstruct the polymorphic extent of ``root`` from fragments."""
    schema = root.schema
    concrete = [
        e for e in [root] + root.descendants() if not e.is_abstract
    ]
    root_key = list(root.key)
    branches: list[E.RelExpr] = []
    patterns: dict[str, frozenset[int]] = {}
    for entity in concrete:
        patterns[entity.name] = frozenset(
            i for i, f in enumerate(fragments) if entity.name in f.types
        )
    for entity in concrete:
        pattern = patterns[entity.name]
        if not pattern:
            continue  # type not representable in this mapping
        own = [fragments[i] for i in sorted(pattern)]
        expr = _join_fragments(own, root_key)
        key_cols = own[0].key_columns(root_key)
        # Anti-joins: remove keys claimed by types whose fragment
        # pattern could overlap this join (see module docstring).
        intersection_types: set[str] = set(own[0].types)
        for fragment in own[1:]:
            intersection_types &= fragment.types
        for other in intersection_types - {entity.name}:
            extra_indices = patterns.get(other, frozenset()) - pattern
            if not extra_indices:
                raise TransformationError(
                    f"types {entity.name!r} and {other!r} are "
                    "indistinguishable under these constraints"
                )
            excluder = fragments[min(extra_indices)]
            expr = _anti_join(expr, excluder, key_cols, root_key)
        # Rename output columns to entity attribute names.
        renames: dict[str, str] = {}
        for fragment in own:
            for column, attr in fragment.output_to_attr.items():
                if column != attr:
                    renames[column] = attr
        if renames:
            expr = E.Rename(expr, renames)
        attrs = list(entity.all_attribute_names())
        outputs: list[tuple[str, S.Scalar]] = [
            (TYPE_FIELD, S.Lit(entity.name))
        ]
        available = set()
        for fragment in own:
            available.update(fragment.output_to_attr.values())
        for attr in attrs:
            if attr in available:
                outputs.append((attr, S.Col(attr)))
            else:
                outputs.append((attr, S.Lit(None)))
        branches.append(E.Distinct(E.Project(expr, outputs)))
    if not branches:
        raise TransformationError(
            f"no representable concrete type under {root.name!r}"
        )
    union = branches[0]
    for branch in branches[1:]:
        union = E.UnionAll(union, branch)
    return union


def _join_fragments(
    fragments: list[_Fragment], root_key: list[str]
) -> E.RelExpr:
    base = fragments[0]
    expr: E.RelExpr = base.constraint.source_expr
    base_keys = base.key_columns(root_key)
    for fragment in fragments[1:]:
        other_keys = fragment.key_columns(root_key)
        expr = E.eq_join(
            expr,
            fragment.constraint.source_expr,
            list(zip(base_keys, other_keys)),
        )
    return expr


def _anti_join(
    expr: E.RelExpr,
    excluder: _Fragment,
    key_cols: list[str],
    root_key: list[str],
) -> E.RelExpr:
    """Keep rows of ``expr`` whose key is absent from the excluder."""
    excluder_keys = excluder.key_columns(root_key)
    excluded = E.project_names(excluder.constraint.source_expr, excluder_keys)
    if excluder_keys != key_cols:
        excluded = E.Rename(excluded, dict(zip(excluder_keys, key_cols)))
    surviving = E.Difference(
        E.Distinct(E.project_names(expr, key_cols)), E.Distinct(excluded)
    )
    return E.eq_join(expr, surviving, [(k, k) for k in key_cols])


# ----------------------------------------------------------------------
# update view
# ----------------------------------------------------------------------
def _update_view_rules(
    root: Entity, fragments: list[_Fragment], table_schema: Schema
) -> list[tuple[str, E.RelExpr]]:
    """Each fragment contributes its rows to its table; a table's full
    column set is assembled with nulls for columns no fragment covers
    in that branch, and selection literals (discriminators) restored."""
    by_table: dict[str, list[_Fragment]] = {}
    for fragment in fragments:
        by_table.setdefault(fragment.table, []).append(fragment)
    rules: list[tuple[str, E.RelExpr]] = []
    for table_name, table_fragments in sorted(by_table.items()):
        table_entity = table_schema.entity(table_name)
        table_columns = list(table_entity.all_attribute_names())
        branches: list[E.RelExpr] = []
        for fragment in table_fragments:
            # Entity-side rows for this fragment.
            expr = fragment.constraint.target_expr
            outputs: list[tuple[str, S.Scalar]] = []
            covered = {
                fragment.output_to_table[column]: column
                for column in fragment.output_to_table
            }
            for table_column in table_columns:
                if table_column in covered:
                    outputs.append((table_column, S.Col(covered[table_column])))
                elif table_column in fragment.table_selection:
                    outputs.append(
                        (table_column,
                         S.Lit(fragment.table_selection[table_column]))
                    )
                else:
                    outputs.append((table_column, S.Lit(None)))
            branches.append(E.Project(expr, outputs))
        union = branches[0]
        for branch in branches[1:]:
            union = E.UnionAll(union, branch)
        rules.append((table_name, E.Distinct(union)))
    return rules


def _copy_targets(
    constraint: EqualityConstraint, schema: Schema, side: str = "target"
) -> tuple[str, dict[str, str]]:
    """For a copy constraint, the output relation and the renames from
    output columns to that relation's attribute names."""
    expr = constraint.target_expr if side == "target" else constraint.source_expr
    current = expr
    renames: dict[str, str] = {}
    if isinstance(current, E.Distinct):
        current = current.input
    if isinstance(current, E.Project):
        for name, scalar in current.outputs:
            if isinstance(scalar, S.Col) and scalar.name != name:
                renames[name] = scalar.name
        current = current.input
    while isinstance(current, (E.Select, E.Extend)):
        current = current.inputs()[0]
    if isinstance(current, (E.Scan, E.EntityScan)):
        relation = (
            current.relation if isinstance(current, E.Scan) else current.entity
        )
        return relation, renames
    raise TransformationError(
        f"cannot determine output relation of {constraint.name!r}"
    )


def _fit_to_relation(
    expr: E.RelExpr, schema: Schema, relation: str
) -> E.RelExpr:
    """Project the expression onto the relation's attribute list when
    its (statically known) output columns are a strict superset."""
    from repro.algebra.optimizer import _output_names

    if relation not in schema.entities:
        return expr
    attrs = list(schema.entity(relation).all_attribute_names())
    outputs = _output_names(expr)
    if outputs is None:
        return expr
    if set(attrs) <= set(outputs) and set(outputs) != set(attrs):
        return E.project_names(expr, attrs)
    return expr
