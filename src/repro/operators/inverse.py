"""Invert and Inverse (paper, Sections 6.2 and 6.4).

``Invert`` is the syntactic role swap — the mapping is a relation, so
transposing costs nothing.  ``Inverse`` is the hard one: a mapping that
actually *recovers* the source from the target ("we need a
transformation that can actually produce an instance D from an
instance D′").  Fagin [37] showed exact inverses exist only for
mappings that lose nothing; Fagin et al. [41] introduced
*quasi-inverses* as the relaxation.

Implemented here:

* :func:`invert` — the syntactic swap;
* :func:`inverse` — for st-tgd mappings that are *lossless by
  construction* (each tgd full, no projection of body variables), the
  reversed tgds, verified by round-tripping the mapping's canonical
  instances; raises :class:`~repro.errors.InversionError` otherwise;
* :func:`quasi_inverse` — always constructible: reversed tgds in which
  the lost body variables become existentials, i.e. the inverse
  recovers the source up to those unknowns (they come back as labeled
  nulls);
* :func:`roundtrips` — the executable check ``m ∘ m⁻¹ ⊇ id`` on a
  given instance (exchange forward, exchange back, compare).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import InversionError
from repro.instances.database import Instance
from repro.logic.chase import chase
from repro.logic.dependencies import TGD
from repro.logic.homomorphism import instance_homomorphism
from repro.mappings.mapping import Mapping
from repro.observability.instrument import instrumented


@instrumented("op.invert", attrs=lambda mapping: {
    "mapping.constraints": mapping.constraint_count(),
})
def invert(mapping: Mapping) -> Mapping:
    """The syntactic Invert: transpose the relation."""
    return mapping.invert()


def _reversed_tgd(tgd: TGD) -> TGD:
    """Swap body and head.  Existentials of the original head become
    ordinary frontier variables of the reverse body; body variables not
    in the head become existentials of the reverse head — that is the
    information the inverse cannot recover."""
    return TGD(body=tgd.head, head=tgd.body, name=f"inv_{tgd.name}")


def _lost_information(tgd: TGD) -> set:
    """Variables the forward tgd drops (body-only) plus values it
    invents (existentials)."""
    return (tgd.body_variables() - tgd.head_variables()) | tgd.existentials()


@instrumented("op.inverse", attrs=lambda mapping, samples=None: {
    "mapping.constraints": mapping.constraint_count(),
})
def inverse(
    mapping: Mapping, samples: Optional[Sequence[Instance]] = None
) -> Mapping:
    """An exact inverse for lossless st-tgd mappings.

    Requirements checked statically: every tgd is full and projects no
    body variable away.  Then the reversed mapping is verified by
    round-tripping each sample instance (defaults to each tgd's frozen
    body); any failure — e.g. two tgds writing overlapping target data
    so the backward chase manufactures extra source rows — raises
    :class:`InversionError`.
    """
    if mapping.so_tgd is not None or mapping.equalities:
        raise InversionError(
            "inverse() supports st-tgd mappings; convert or use invert()"
        )
    for tgd in mapping.tgds:
        lost = _lost_information(tgd)
        if lost:
            raise InversionError(
                f"tgd {tgd} loses {sorted(v.name for v in lost)}; no exact "
                "inverse exists (use quasi_inverse)"
            )
    candidate = Mapping(
        mapping.target,
        mapping.source,
        [_reversed_tgd(t) for t in mapping.tgds],
        name=f"inverse_{mapping.name}",
    )
    for sample in samples if samples is not None else _canonical_samples(mapping):
        if not roundtrips(mapping, candidate, sample):
            raise InversionError(
                f"reversed mapping fails to round-trip {sample!r}"
            )
    return candidate


@instrumented("op.quasi_inverse", attrs=lambda mapping: {
    "mapping.constraints": mapping.constraint_count(),
})
def quasi_inverse(mapping: Mapping) -> Mapping:
    """The always-constructible relaxation: reversed tgds whose lost
    variables come back existentially (as labeled nulls at runtime)."""
    if mapping.so_tgd is not None or mapping.equalities:
        raise InversionError(
            "quasi_inverse() supports st-tgd mappings"
        )
    return Mapping(
        mapping.target,
        mapping.source,
        [_reversed_tgd(t) for t in mapping.tgds],
        name=f"quasi_inverse_{mapping.name}",
    )


def _canonical_samples(mapping: Mapping) -> list[Instance]:
    """One sample per tgd: its frozen body (variables as fresh
    constants), the canonical witness of that tgd firing."""
    samples = []
    for index, tgd in enumerate(mapping.tgds):
        query_like = Instance()
        for atom in tgd.body:
            row = {}
            for name, term in atom.args:
                from repro.logic.terms import Const, Var

                if isinstance(term, Const):
                    row[name] = term.value
                elif isinstance(term, Var):
                    row[name] = f"§{index}_{term.name}"
                else:
                    raise InversionError("second-order term in tgd body")
            query_like.insert(atom.relation, row)
        samples.append(query_like)
    return samples


def roundtrips(
    forward: Mapping, backward: Mapping, source_instance: Instance
) -> bool:
    """Exchange forward then backward; the recovery succeeds when the
    recovered source is homomorphically equivalent to the original
    (i.e. same information content; labeled nulls may stand in for
    invented values)."""
    target_relations = set(forward.target.entities)
    source_relations = set(forward.source.entities)

    forward_result = chase(source_instance, forward.tgds).instance
    target_instance = Instance()
    for relation in target_relations:
        if forward_result.rows(relation):
            target_instance.relations[relation] = list(forward_result.rows(relation))

    backward_result = chase(target_instance, backward.tgds).instance
    recovered = Instance()
    for relation in source_relations:
        if backward_result.rows(relation):
            recovered.relations[relation] = list(backward_result.rows(relation))

    original = Instance()
    for relation in source_relations:
        if source_instance.rows(relation):
            original.relations[relation] = list(source_instance.rows(relation))

    return (
        instance_homomorphism(original, recovered) is not None
        and instance_homomorphism(recovered, original) is not None
    )
