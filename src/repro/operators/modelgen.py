"""The ModelGen operator (paper, Section 3.2).

ModelGen "automatically translates a source schema expressed in one
metamodel into an equivalent target schema expressed in a different
metamodel, along with mapping constraints between the two schemas."
Following Atzeni & Torlone's rule-repertoire idea, translation is a
sequence of construct eliminations over the universal metamodel —
applying exactly the rules needed to remove constructs the target
metamodel lacks — and, per the paper's critique of the data-copy
approaches [7][81], it emits *declarative instance-level mapping
constraints* (the Figure 2 equality style), not just a schema.

Construct-elimination rules:

* **generalization** → tables, with three strategies (the "flexible
  mapping of inheritance hierarchies" of [19] / ADO.NET):
  - ``TPH`` (table per hierarchy): one table, discriminator column;
  - ``TPT`` (table per type): one table per type holding its own
    attributes, key-joined — Figure 2's shape;
  - ``TPC`` (table per concrete class): one table per concrete type
    holding all inherited attributes;
* **association** → join table keyed by both ends' keys;
* **containment** → child table carrying the parent's key as a foreign
  key;
* **reference** → foreign-key columns.

Enrichment rules run in the opposite direction (relational → ER/OO/
nested): foreign keys become associations, references or containments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.algebra import (
    Col,
    EntityScan,
    IsOf,
    Project,
    Scan,
    Select,
    eq,
    project_names,
)
from repro.algebra.scalars import Or
from repro.errors import SchemaError
from repro.mappings.mapping import EqualityConstraint, Mapping
from repro.metamodel.constraints import (
    Disjointness,
    InclusionDependency,
    KeyConstraint,
)
from repro.metamodel.elements import Attribute, Entity
from repro.metamodel.schema import Schema
from repro.metamodel.types import STRING
from repro.observability.instrument import instrumented


class InheritanceStrategy(enum.Enum):
    """How generalization hierarchies map to tables."""

    TPH = "table-per-hierarchy"
    TPT = "table-per-type"
    TPC = "table-per-concrete-class"


@dataclass
class ModelGenResult:
    """Derived schema plus the mapping between original and derived.

    ``mapping`` is oriented derived → original (source = derived flat
    schema, target = original), matching the paper's Figure 2 where the
    relational side is the mapping's source and the ER side its target;
    TransGen then produces the query view (entities from tables) and
    update view (tables from entities).
    """

    schema: Schema
    mapping: Mapping


@instrumented("op.modelgen", attrs=lambda schema, target_metamodel, *a, **k: {
    "schema.entities": len(schema.entities),
    "target.metamodel": target_metamodel,
})
def modelgen(
    schema: Schema,
    target_metamodel: str,
    strategy: InheritanceStrategy = InheritanceStrategy.TPT,
    name: str = "",
) -> ModelGenResult:
    """Translate ``schema`` into ``target_metamodel``."""
    if target_metamodel not in Schema.METAMODEL_CONSTRUCTS:
        raise SchemaError(f"unknown metamodel {target_metamodel!r}")
    allowed = Schema.METAMODEL_CONSTRUCTS[target_metamodel]
    derived = Schema(name or f"{schema.name}_{target_metamodel}", target_metamodel)
    constraints: list[EqualityConstraint] = []

    uses_generalization = any(
        e.parent is not None for e in schema.entities.values()
    )
    if uses_generalization and "generalization" not in allowed:
        _eliminate_generalization(schema, derived, strategy, constraints)
    else:
        _copy_entities(schema, derived, constraints,
                       keep_hierarchy="generalization" in allowed)

    if schema.associations:
        if "association" in allowed:
            for association in schema.associations.values():
                derived.add_association(_clone_association(association, derived))
        else:
            _eliminate_associations(schema, derived, constraints)

    if schema.containments:
        if "containment" in allowed:
            for containment in schema.containments.values():
                from repro.metamodel.elements import Containment

                derived.add_containment(
                    Containment(
                        containment.name,
                        derived.entity(containment.parent.name),
                        derived.entity(containment.child.name),
                        containment.cardinality,
                    )
                )
        else:
            _eliminate_containments(schema, derived)

    if schema.references:
        if "reference" in allowed:
            for reference in schema.references.values():
                from repro.metamodel.elements import Reference

                derived.add_reference(
                    Reference(
                        reference.name,
                        derived.entity(reference.owner.name),
                        derived.entity(reference.target.name),
                        reference.via_attributes,
                        reference.cardinality,
                    )
                )
        else:
            _eliminate_references(schema, derived)

    # Enrichment: expose foreign keys as navigable constructs when the
    # target metamodel supports them and the source was flat.
    if schema.metamodel == "relational":
        _enrich_from_foreign_keys(schema, derived, allowed)

    derived.check_metamodel()
    mapping = Mapping(
        derived, schema, constraints,
        name=f"modelgen_{schema.name}_{target_metamodel}",
    )
    return ModelGenResult(schema=derived, mapping=mapping)


# ----------------------------------------------------------------------
# plain copies
# ----------------------------------------------------------------------
def _copy_entities(
    schema: Schema,
    derived: Schema,
    constraints: list[EqualityConstraint],
    keep_hierarchy: bool,
) -> None:
    for entity in schema.entities.values():
        derived.add_entity(entity.clone())
    if keep_hierarchy:
        for entity in schema.entities.values():
            if entity.parent is not None:
                derived.entities[entity.name].parent = derived.entities[
                    entity.parent.name
                ]
    for constraint in schema.constraints:
        derived.add_constraint(constraint)
    hierarchical = {
        e.name for e in schema.entities.values()
        if e.parent is not None or e.children()
    }
    for entity in schema.entities.values():
        if entity.name in hierarchical and not keep_hierarchy:
            continue  # handled by the generalization rule
        columns = list(entity.all_attribute_names())
        source_scan = (
            EntityScan(entity.name, only=True)
            if entity.name in hierarchical
            else Scan(entity.name)
        )
        target_scan = (
            EntityScan(entity.name, only=True)
            if entity.name in hierarchical and keep_hierarchy
            else Scan(entity.name)
        )
        constraints.append(
            EqualityConstraint(
                source_expr=project_names(target_scan, columns),
                target_expr=project_names(source_scan, columns),
                name=f"copy_{entity.name}",
            )
        )


def _clone_association(association, derived: Schema):
    from repro.metamodel.elements import Association, AssociationEnd

    return Association(
        association.name,
        AssociationEnd(
            association.source.role,
            derived.entity(association.source.entity.name),
            association.source.cardinality,
        ),
        AssociationEnd(
            association.target.role,
            derived.entity(association.target.entity.name),
            association.target.cardinality,
        ),
    )


# ----------------------------------------------------------------------
# generalization elimination
# ----------------------------------------------------------------------
def _eliminate_generalization(
    schema: Schema,
    derived: Schema,
    strategy: InheritanceStrategy,
    constraints: list[EqualityConstraint],
) -> None:
    roots = [e for e in schema.root_entities()]
    flat_entities = [e for e in roots if not e.children()]
    hierarchy_roots = [e for e in roots if e.children()]

    for entity in flat_entities:
        copy = entity.clone()
        derived.add_entity(copy)
        columns = list(entity.all_attribute_names())
        constraints.append(
            EqualityConstraint(
                source_expr=project_names(Scan(entity.name), columns),
                target_expr=project_names(Scan(entity.name), columns),
                name=f"copy_{entity.name}",
            )
        )
        for constraint in schema.constraints:
            if isinstance(constraint, KeyConstraint) and (
                constraint.entity == entity.name
            ):
                derived.add_constraint(constraint)

    for root in hierarchy_roots:
        if not root.key:
            raise SchemaError(
                f"hierarchy root {root.name!r} needs a key to map inheritance"
            )
        if strategy is InheritanceStrategy.TPH:
            _tph(root, derived, constraints)
        elif strategy is InheritanceStrategy.TPT:
            _tpt(root, derived, constraints)
        else:
            _tpc(root, derived, constraints)


def _hierarchy_members(root: Entity) -> list[Entity]:
    return [root] + root.descendants()


def _concrete_members(root: Entity) -> list[Entity]:
    return [e for e in _hierarchy_members(root) if not e.is_abstract]


def _tph(root: Entity, derived: Schema, constraints) -> None:
    """One wide table with a discriminator column."""
    table_name = f"{root.name}_all"
    table = Entity(table_name)
    discriminator = f"{root.name}_type"
    table.add_attribute(Attribute(discriminator, STRING))
    added: set[str] = {discriminator}
    for member in _hierarchy_members(root):
        for attribute in member.attributes:
            if attribute.name in added:
                continue
            clone = attribute.clone()
            # Attributes below the root are null for other types.
            clone.nullable = clone.nullable or member.name != root.name
            table.add_attribute(clone)
            added.add(attribute.name)
    table.key = root.key
    derived.add_entity(table)
    derived.add_constraint(KeyConstraint(table_name, root.key))
    for member in _concrete_members(root):
        columns = list(member.all_attribute_names())
        constraints.append(
            EqualityConstraint(
                source_expr=project_names(
                    Select(Scan(table_name),
                           eq(Col(discriminator), member.name)),
                    columns,
                ),
                target_expr=project_names(
                    Select(EntityScan(root.name), IsOf(member.name, only=True)),
                    columns,
                ),
                name=f"tph_{member.name}",
            )
        )


def _tpt(root: Entity, derived: Schema, constraints) -> None:
    """One table per type holding its own attributes plus the key."""
    key = list(root.key)
    for member in _hierarchy_members(root):
        table_name = member.name
        table = Entity(table_name)
        for key_attr in root.key:
            table.add_attribute(root.attribute(key_attr).clone())
        for attribute in member.attributes:
            if attribute.name not in root.key:
                table.add_attribute(attribute.clone())
        table.key = tuple(key)
        derived.add_entity(table)
        derived.add_constraint(KeyConstraint(table_name, tuple(key)))
        if member.parent is not None:
            derived.add_constraint(
                InclusionDependency(
                    table_name, tuple(key), member.parent.name, tuple(key)
                )
            )
        columns = key + [
            a.name for a in member.attributes if a.name not in root.key
        ]
        constraints.append(
            EqualityConstraint(
                source_expr=project_names(Scan(table_name), columns),
                target_expr=project_names(
                    Select(EntityScan(root.name), IsOf(member.name)), columns
                ),
                name=f"tpt_{member.name}",
            )
        )


def _tpc(root: Entity, derived: Schema, constraints) -> None:
    """One table per concrete class with all inherited attributes."""
    for member in _concrete_members(root):
        table_name = f"{member.name}_c"
        table = Entity(table_name)
        for attribute in member.all_attributes():
            table.add_attribute(attribute.clone())
        table.key = root.key
        derived.add_entity(table)
        derived.add_constraint(KeyConstraint(table_name, root.key))
        columns = list(member.all_attribute_names())
        constraints.append(
            EqualityConstraint(
                source_expr=project_names(Scan(table_name), columns),
                target_expr=project_names(
                    Select(EntityScan(root.name), IsOf(member.name, only=True)),
                    columns,
                ),
                name=f"tpc_{member.name}",
            )
        )
    siblings = [f"{m.name}_c" for m in _concrete_members(root)]
    if len(siblings) > 1:
        derived.add_constraint(Disjointness(tuple(siblings)))


# ----------------------------------------------------------------------
# other construct eliminations
# ----------------------------------------------------------------------
def _key_of(schema_entity: Entity) -> list[str]:
    key = list(schema_entity.root().key)
    if not key:
        raise SchemaError(
            f"entity {schema_entity.name!r} needs a key for this rule"
        )
    return key


def _eliminate_associations(schema: Schema, derived: Schema, constraints) -> None:
    """Every association becomes a join table over the two ends' keys.

    Instance convention: an association's extent is a relation named
    after it with columns ``<role>_<key>``; the join table uses the
    same columns, so the mapping constraint is a plain copy.
    """
    for association in schema.associations.values():
        table = Entity(association.name)
        columns: list[str] = []
        for end in association.ends():
            for key_attr in _key_of(end.entity):
                column = f"{end.role}_{key_attr}"
                attr_type = end.entity.root().attribute(key_attr).data_type
                table.add_attribute(Attribute(column, attr_type))
                columns.append(column)
        table.key = tuple(columns)
        derived.add_entity(table)
        derived.add_constraint(KeyConstraint(association.name, tuple(columns)))
        for end in association.ends():
            end_key = _key_of(end.entity)
            end_table = _table_for_entity(derived, end.entity)
            if end_table is not None:
                derived.add_constraint(
                    InclusionDependency(
                        association.name,
                        tuple(f"{end.role}_{k}" for k in end_key),
                        end_table,
                        tuple(end_key),
                    )
                )
        constraints.append(
            EqualityConstraint(
                source_expr=project_names(Scan(association.name), columns),
                target_expr=project_names(Scan(association.name), columns),
                name=f"assoc_{association.name}",
            )
        )


def _table_for_entity(derived: Schema, entity: Entity) -> str | None:
    """The derived table carrying an entity's key (depends on strategy)."""
    for candidate in (entity.name, f"{entity.name}_c", f"{entity.root().name}_all",
                      entity.root().name):
        if candidate in derived.entities:
            return candidate
    return None


def _eliminate_containments(schema: Schema, derived: Schema) -> None:
    """Child tables carry the parent key as FK columns named
    ``<parent>_<key>`` (the nested importer establishes the same
    convention on instances)."""
    for containment in schema.containments.values():
        parent_key = _key_of(containment.parent)
        child_name = containment.child.name
        child = derived.entities.get(child_name)
        if child is None:
            continue
        for key_attr in parent_key:
            column = f"{containment.parent.name}_{key_attr}"
            if not child.has_attribute(column):
                child.add_attribute(
                    Attribute(
                        column,
                        containment.parent.root().attribute(key_attr).data_type,
                    )
                )
        derived.add_constraint(
            InclusionDependency(
                child_name,
                tuple(f"{containment.parent.name}_{k}" for k in parent_key),
                containment.parent.name,
                tuple(parent_key),
            )
        )


def _eliminate_references(schema: Schema, derived: Schema) -> None:
    """Reference ``r`` on entity E targeting T becomes FK columns
    ``<r>_<key>`` on E's table."""
    for reference in schema.references.values():
        target_key = _key_of(reference.target)
        owner = derived.entities.get(reference.owner.name)
        if owner is None:
            continue
        columns = []
        for key_attr in target_key:
            column = f"{reference.name}_{key_attr}"
            if not owner.has_attribute(column):
                owner.add_attribute(
                    Attribute(
                        column,
                        reference.target.root().attribute(key_attr).data_type,
                        nullable=not reference.cardinality.is_required,
                    )
                )
            columns.append(column)
        target_table = _table_for_entity(derived, reference.target)
        if target_table is not None:
            derived.add_constraint(
                InclusionDependency(
                    reference.owner.name,
                    tuple(columns),
                    target_table,
                    tuple(target_key),
                )
            )


# ----------------------------------------------------------------------
# enrichment (relational → richer metamodels)
# ----------------------------------------------------------------------
def _enrich_from_foreign_keys(
    schema: Schema, derived: Schema, allowed: frozenset[str]
) -> None:
    from repro.metamodel.elements import (
        Association,
        AssociationEnd,
        Cardinality,
        Containment,
        Reference,
    )

    for dep in schema.inclusion_dependencies():
        if dep.source not in derived.entities or dep.target not in derived.entities:
            continue
        if "reference" in allowed:
            ref_name = f"ref_{dep.target}"
            if f"{dep.source}.{ref_name}" not in derived.references:
                derived.add_reference(
                    Reference(
                        ref_name,
                        derived.entity(dep.source),
                        derived.entity(dep.target),
                        dep.source_attributes,
                    )
                )
        elif "association" in allowed:
            assoc_name = f"{dep.source}_{dep.target}"
            if assoc_name not in derived.associations:
                derived.add_association(
                    Association(
                        assoc_name,
                        AssociationEnd(dep.source, derived.entity(dep.source),
                                       Cardinality(0, None)),
                        AssociationEnd(dep.target, derived.entity(dep.target),
                                       Cardinality(1, 1)),
                    )
                )
        elif "containment" in allowed:
            cont_name = f"{dep.target}_{dep.source}"
            if cont_name not in derived.containments:
                derived.add_containment(
                    Containment(
                        cont_name,
                        derived.entity(dep.target),
                        derived.entity(dep.source),
                    )
                )
