"""The model management operators (paper, Figure 1 and Sections 3–6).

* :mod:`repro.operators.match` — Match: propose correspondences;
* :mod:`repro.operators.modelgen` — ModelGen: translate a schema to
  another metamodel, with instance-level mapping constraints;
* :mod:`repro.operators.transgen` — TransGen: compile constraints into
  executable transformations (query views, update views, exchange
  programs), with the roundtripping check;
* :mod:`repro.operators.compose` — Compose: σ12 ∘ σ23, via second-order
  tgds for the dependency language and view unfolding for the equality
  language;
* :mod:`repro.operators.inverse` — Invert (syntactic) and Inverse /
  quasi-inverse (Fagin);
* :mod:`repro.operators.diff` — Extract and Diff (view complement);
* :mod:`repro.operators.merge` — Merge driven by correspondences.
"""

from repro.operators.compose import compose, unfold_scans
from repro.operators.inverse import invert, inverse, quasi_inverse
from repro.operators.diff import extract, diff
from repro.operators.merge import merge, MergeResult
from repro.operators.modelgen import modelgen, InheritanceStrategy
from repro.operators.transgen import transgen, Transformation, TransformationPair
from repro.operators.match import match, MatchConfig
from repro.operators.evolution import (
    AddColumn,
    AddEntity,
    Change,
    DropColumn,
    EvolutionResult,
    RenameColumn,
    RenameEntity,
    SplitByValue,
    evolve,
)

__all__ = [
    "AddColumn", "AddEntity", "Change", "DropColumn", "EvolutionResult",
    "RenameColumn", "RenameEntity", "SplitByValue", "evolve",
    "compose", "unfold_scans",
    "invert", "inverse", "quasi_inverse",
    "extract", "diff",
    "merge", "MergeResult",
    "modelgen", "InheritanceStrategy",
    "transgen", "Transformation", "TransformationPair",
    "match", "MatchConfig",
]
