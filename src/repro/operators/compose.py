"""The Compose operator.

Instance-level semantics (paper, Section 6.1): given map12 ⊆ D1 × D2
and map23 ⊆ D2 × D3, the composition is the set of pairs ⟨D1, D3⟩ such
that some D2 satisfies both.  Two concrete algorithms:

* **Dependency language** (st-tgds): the algorithm of Fagin, Kolaitis,
  Popa & Tan [40].  Skolemize both mappings, then replace each middle-
  schema atom in a σ23 implication by every possible σ12 origin — the
  step whose case product causes the proven exponential lower bound —
  resolve the resulting equalities, and (optionally) de-Skolemize back
  to first-order st-tgds when possible.  When it is not, the result is
  returned as a second-order tgd, exactly the outcome the paper uses to
  argue SO-tgds belong in the runtime.

* **Equality language** (Figure 6): when map23 *defines* each middle
  relation as a query over the third schema (view-definition form,
  detecting the paper's complementary-selection split of Addresses into
  Local/Foreign), composition is view unfolding: substitute those
  definitions into map12's target-side expressions.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.algebra import expressions as E
from repro.algebra import scalars as S
from repro.algebra.optimizer import optimize
from repro.errors import CompositionError, ExpressivenessError
from repro.logic.dependencies import TGD
from repro.logic.formulas import Atom, Equality
from repro.logic.second_order import (
    Implication,
    SecondOrderTGD,
    _resolve_conditions,
    deskolemize,
    skolemize_all,
)
from repro.logic.terms import Term, Var
from repro.mappings.mapping import (
    EqualityConstraint,
    Mapping,
    MappingLanguage,
)
from repro.observability.instrument import instrumented


@instrumented("op.compose", attrs=lambda map12, map23, *a, **k: {
    "map12.constraints": map12.constraint_count(),
    "map23.constraints": map23.constraint_count(),
})
def compose(
    map12: Mapping, map23: Mapping, prefer_first_order: bool = True
) -> Mapping:
    """Compose two mappings sharing a middle schema.

    Dispatches on constraint language; raises
    :class:`~repro.errors.CompositionError` when the schemas do not
    chain or neither algorithm applies.
    """
    if map12.target.name != map23.source.name:
        raise CompositionError(
            f"cannot compose: {map12.name} targets {map12.target.name!r} but "
            f"{map23.name} reads {map23.source.name!r}"
        )
    if map12.equalities or map23.equalities:
        return _compose_equalities(map12, map23)
    return _compose_tgds(map12, map23, prefer_first_order)


# ----------------------------------------------------------------------
# dependency-language composition (Fagin et al.)
# ----------------------------------------------------------------------
def _compose_tgds(
    map12: Mapping, map23: Mapping, prefer_first_order: bool
) -> Mapping:
    if map12.so_tgd is not None:
        sigma12 = map12.so_tgd
    else:
        sigma12 = skolemize_all(map12.tgds, name=map12.name)
    if map23.so_tgd is not None:
        sigma23 = map23.so_tgd
    else:
        sigma23 = skolemize_all(map23.tgds, name=map23.name)
    middle_relations = set(map12.target.entities)

    composed: list[Implication] = []
    counter = itertools.count()
    for implication in sigma23.implications:
        for resolved in _replace_middle_atoms(
            implication, sigma12, middle_relations, counter
        ):
            if resolved.head:  # vacuous implications are dropped
                composed.append(resolved)

    so_tgd = SecondOrderTGD(tuple(composed), name=f"{map12.name}∘{map23.name}")
    if prefer_first_order:
        try:
            tgds = deskolemize(so_tgd)
            return Mapping(
                map12.source, map23.target, tgds,
                name=f"{map12.name}∘{map23.name}",
            )
        except ExpressivenessError:
            pass
    return Mapping(
        map12.source, map23.target, so_tgd, name=f"{map12.name}∘{map23.name}"
    )


def _replace_middle_atoms(
    implication: Implication,
    sigma12: SecondOrderTGD,
    middle_relations: set[str],
    counter,
) -> list[Implication]:
    """Replace every middle-schema atom in ``implication``'s body by all
    possible σ12 origins (the exponential case product)."""
    middle_atoms = [a for a in implication.body if a.relation in middle_relations]
    other_atoms = [a for a in implication.body if a.relation not in middle_relations]

    # Origins of a middle atom: (implication, head-atom index) pairs
    # whose head atom has the same relation.
    origins: list[list[tuple[Implication, Atom]]] = []
    for atom in middle_atoms:
        candidates: list[tuple[Implication, Atom]] = []
        for source_implication in sigma12.implications:
            for head_atom in source_implication.head:
                if head_atom.relation == atom.relation:
                    candidates.append((source_implication, head_atom))
        if not candidates:
            # No σ12 rule ever produces this relation: the implication
            # body is unsatisfiable over σ12-generated middles, so it
            # contributes nothing (vacuously true).
            return []
        origins.append(candidates)

    results: list[Implication] = []
    for choice in itertools.product(*origins):
        body: list[Atom] = list(other_atoms)
        conditions: list[Equality] = list(implication.conditions)
        for atom, (source_implication, head_atom) in zip(middle_atoms, choice):
            renamed = _rename_apart(source_implication, next(counter))
            renamed_head_atom = _find_corresponding_head(
                renamed, source_implication, head_atom
            )
            body.extend(renamed.body)
            conditions.extend(renamed.conditions)
            # Equate the σ23 atom's terms with the σ12 head atom's terms.
            atom_args = atom.arg_map
            head_args = renamed_head_atom.arg_map
            shared = set(atom_args) & set(head_args)
            if set(atom_args) != set(head_args):
                missing = set(atom_args) ^ set(head_args)
                raise CompositionError(
                    f"attribute mismatch on {atom.relation!r}: {sorted(missing)}"
                )
            for attribute in sorted(shared):
                conditions.append(
                    Equality(atom_args[attribute], head_args[attribute])
                )
        candidate = Implication(
            body=tuple(body),
            head=implication.head,
            conditions=tuple(conditions),
            name=f"{implication.name}",
        )
        resolved = _resolve_conditions(candidate)
        if resolved is None:
            # Residual function-term conditions: keep them unresolved —
            # the SO-tgd language allows them.
            results.append(candidate)
        else:
            results.append(resolved)
    return results


def _rename_apart(implication: Implication, index: int) -> Implication:
    """Rename an implication's variables with a fresh suffix so distinct
    origin choices never share variables."""
    substitution: dict[Var, Term] = {
        var: Var(f"{var.name}~{index}") for var in implication.variables()
    }
    return implication.substitute(substitution)


def _find_corresponding_head(
    renamed: Implication, original: Implication, head_atom: Atom
) -> Atom:
    position = original.head.index(head_atom)
    return renamed.head[position]


# ----------------------------------------------------------------------
# equality-language composition (view unfolding, Figure 6)
# ----------------------------------------------------------------------
def unfold_scans(
    expr: E.RelExpr, replacements: dict[str, E.RelExpr]
) -> E.RelExpr:
    """Substitute each ``Scan(R)`` for ``R`` in ``replacements`` by the
    replacement expression (view unfolding)."""
    if isinstance(expr, E.Scan) and expr.relation in replacements:
        return replacements[expr.relation]
    if isinstance(expr, E.EntityScan) and expr.entity in replacements:
        return replacements[expr.entity]
    rebuilt = expr
    if isinstance(expr, E.Select):
        rebuilt = E.Select(unfold_scans(expr.input, replacements), expr.predicate)
    elif isinstance(expr, E.Project):
        rebuilt = E.Project(unfold_scans(expr.input, replacements), expr.outputs)
    elif isinstance(expr, E.Extend):
        rebuilt = E.Extend(
            unfold_scans(expr.input, replacements), expr.name, expr.scalar
        )
    elif isinstance(expr, E.Join):
        rebuilt = E.Join(
            unfold_scans(expr.left, replacements),
            unfold_scans(expr.right, replacements),
            expr.predicate,
            expr.kind,
            expr.right_prefix,
        )
    elif isinstance(expr, E.UnionAll):
        rebuilt = E.UnionAll(
            unfold_scans(expr.left, replacements),
            unfold_scans(expr.right, replacements),
        )
    elif isinstance(expr, E.Difference):
        rebuilt = E.Difference(
            unfold_scans(expr.left, replacements),
            unfold_scans(expr.right, replacements),
        )
    elif isinstance(expr, E.Distinct):
        rebuilt = E.Distinct(unfold_scans(expr.input, replacements))
    elif isinstance(expr, E.Rename):
        rebuilt = E.Rename(unfold_scans(expr.input, replacements), expr.mapping)
    elif isinstance(expr, E.Aggregate):
        rebuilt = E.Aggregate(
            unfold_scans(expr.input, replacements), expr.group_by, expr.aggregations
        )
    elif isinstance(expr, E.Sort):
        rebuilt = E.Sort(unfold_scans(expr.input, replacements), expr.keys)
    return rebuilt


def view_definitions(map23: Mapping) -> dict[str, E.RelExpr]:
    """Extract "middle relation R = expression over target" definitions
    from an equality mapping.

    Handles two constraint shapes:

    * a source side that is (a projection of) ``Scan(R)`` covering all
      of R's attributes — a direct definition;
    * the paper's split shape — several constraints whose source sides
      are complementary selections ``σ[c = v](R)`` / ``σ[c ≠ v](R)``;
      their target sides union into R's definition.
    """
    direct: dict[str, E.RelExpr] = {}
    partitions: dict[str, list[tuple[S.Predicate, E.RelExpr]]] = {}
    for constraint in map23.equalities:
        relation, selection = _source_shape(constraint.source_expr)
        if relation is None:
            raise CompositionError(
                f"constraint {constraint.name!r} is not in view-definition "
                "form; cannot unfold"
            )
        if selection is None:
            direct[relation] = constraint.target_expr
        else:
            partitions.setdefault(relation, []).append(
                (selection, constraint.target_expr)
            )
    for relation, pieces in partitions.items():
        if relation in direct:
            continue
        if not _is_complementary(pieces):
            raise CompositionError(
                f"selections on {relation!r} do not partition it; "
                "cannot reconstruct a definition"
            )
        union: Optional[E.RelExpr] = None
        for _, target_expr in pieces:
            union = target_expr if union is None else E.UnionAll(union, target_expr)
        direct[relation] = union
    return direct


def _source_shape(expr: E.RelExpr):
    """Classify a source expression: returns (relation, selection) where
    selection is None for plain (projected) scans."""
    current = expr
    while isinstance(current, (E.Project, E.Distinct)):
        current = current.inputs()[0]
    if isinstance(current, E.Scan):
        return current.relation, None
    if isinstance(current, E.Select) and isinstance(current.input, E.Scan):
        return current.input.relation, current.predicate
    return None, None


def _is_complementary(pieces: Sequence[tuple[S.Predicate, E.RelExpr]]) -> bool:
    """True for the paper's shape: exactly two selections, ``c = v`` and
    ``c ≠ v`` on the same column and literal."""
    if len(pieces) != 2:
        return False
    predicates = [p for p, _ in pieces]
    comparisons = [p for p in predicates if isinstance(p, S.Comparison)]
    if len(comparisons) != 2:
        return False
    eq_pred = next((p for p in comparisons if p.op == "="), None)
    ne_pred = next((p for p in comparisons if p.op == "!="), None)
    if eq_pred is None or ne_pred is None:
        return False
    return eq_pred.left == ne_pred.left and eq_pred.right == ne_pred.right


def rewrite_to_physical(
    map_st: Mapping, map_s_sp: Mapping, map_t_tp: Mapping
) -> Mapping:
    """The paper's §5 "Data exchange" bullet: "Suppose S and T are
    logical views of physical schemas SP and TP … to execute mapST on
    the physical databases, it may be more efficient to translate it
    into a transformation mapSP-TP from SP to TP."

    Both logical-to-physical mappings must be in view-definition form
    (each logical relation = a query over its physical schema); the
    rewrite unfolds those definitions into both sides of every mapST
    constraint, yielding a mapping that runs directly on the physical
    databases.
    """
    if map_s_sp.source.name != map_st.source.name:
        raise CompositionError(
            f"mapS-SP must define {map_st.source.name!r}, defines "
            f"{map_s_sp.source.name!r}"
        )
    if map_t_tp.source.name != map_st.target.name:
        raise CompositionError(
            f"mapT-TP must define {map_st.target.name!r}, defines "
            f"{map_t_tp.source.name!r}"
        )
    source_definitions = view_definitions(map_s_sp)
    target_definitions = view_definitions(map_t_tp)
    physical_constraints = [
        EqualityConstraint(
            source_expr=optimize(
                unfold_scans(c.source_expr, source_definitions)
            ),
            target_expr=optimize(
                unfold_scans(c.target_expr, target_definitions)
            ),
            name=f"phys_{c.name}",
        )
        for c in map_st.equalities
    ]
    if map_st.tgds or map_st.so_tgd is not None:
        raise CompositionError(
            "physical rewriting needs mapST in the equality language; "
            "compose with the logical-physical mappings instead"
        )
    return Mapping(
        map_s_sp.target,
        map_t_tp.target,
        physical_constraints,
        name=f"physical_{map_st.name}",
    )


def _compose_equalities(map12: Mapping, map23: Mapping) -> Mapping:
    if not map23.equalities:
        raise CompositionError(
            "equality-language composition needs map23 in equality form"
        )
    definitions = view_definitions(map23)
    composed: list[EqualityConstraint] = []
    for constraint in map12.equalities:
        composed.append(
            EqualityConstraint(
                source_expr=constraint.source_expr,
                target_expr=optimize(
                    unfold_scans(constraint.target_expr, definitions)
                ),
                name=constraint.name,
            )
        )
    if map12.tgds:
        raise CompositionError(
            "mixed tgd/equality mappings are not composable; convert first"
        )
    return Mapping(
        map12.source,
        map23.target,
        composed,
        name=f"{map12.name}∘{map23.name}",
    )
