"""Structured schema evolution: change scripts that generate both the
evolved schema and the evolution mapping.

The paper's §6.1 recipe starts with "express the change from S to S′
as a mapping mapS-S′" — and assumes the data architect writes that
mapping by hand.  This module automates the common cases: a
:class:`ChangeScript` is a list of change operations; :func:`evolve`
applies them to a schema and *derives* the evolution mapping in the
equality language, ready for the §6 operator pipeline (compose with
view mappings, migrate data via TransGen, Diff the new parts, …).

Change operations:

* :class:`AddColumn` — new (nullable or defaulted) attribute;
* :class:`DropColumn` — attribute removed (information loss is
  reported, since dependent views will break);
* :class:`RenameColumn` / :class:`RenameEntity`;
* :class:`AddEntity` — a brand-new entity (no constraint: it is what
  Diff will report as "new parts");
* :class:`SplitByValue` — the paper's Figure 6 change: partition an
  entity into two by a column's value, the discriminating constant
  dropped from the "matching" side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.algebra import (
    Col,
    Extend,
    Lit,
    Project,
    Scan,
    Select,
    eq,
    ne,
    project_names,
)
from repro.errors import SchemaError
from repro.mappings.mapping import EqualityConstraint, Mapping
from repro.metamodel.constraints import KeyConstraint
from repro.metamodel.elements import Attribute, Entity
from repro.metamodel.schema import Schema
from repro.metamodel.types import DataType
from repro.observability.instrument import instrumented


@dataclass(frozen=True)
class AddColumn:
    entity: str
    name: str
    data_type: DataType
    nullable: bool = True
    default: object = None


@dataclass(frozen=True)
class DropColumn:
    entity: str
    name: str


@dataclass(frozen=True)
class RenameColumn:
    entity: str
    old: str
    new: str


@dataclass(frozen=True)
class RenameEntity:
    old: str
    new: str


@dataclass(frozen=True)
class AddEntity:
    name: str
    attributes: tuple[tuple[str, DataType], ...]
    key: tuple[str, ...] = ()


@dataclass(frozen=True)
class SplitByValue:
    """Partition ``entity`` by ``column = value`` (Figure 6's shape).

    Rows matching the value go to ``match_name`` *without* the column
    (its value is implied); the rest go to ``rest_name`` keeping it.
    """

    entity: str
    column: str
    value: object
    match_name: str
    rest_name: str


Change = Union[AddColumn, DropColumn, RenameColumn, RenameEntity,
               AddEntity, SplitByValue]


@dataclass
class EvolutionResult:
    """Evolved schema, the derived mapping S → S′, and analyst notes
    (e.g. information-loss warnings for dropped columns)."""

    schema: Schema
    mapping: Mapping
    notes: list[str] = field(default_factory=list)


@instrumented("op.evolve", attrs=lambda schema, changes, name=None: {
    "schema.entities": len(schema.entities),
    "changes": len(changes),
})
def evolve(
    schema: Schema, changes: Sequence[Change], name: Optional[str] = None
) -> EvolutionResult:
    """Apply ``changes`` to ``schema``; return S′ and mapS-S′."""
    evolved = schema.clone(name or f"{schema.name}_v2")
    notes: list[str] = []
    # Track, per surviving original entity, how to express it over S′:
    # (new_relation, column renames old→new, added-constant columns).
    plans: dict[str, "_EntityPlan"] = {
        entity_name: _EntityPlan(entity_name)
        for entity_name in schema.entities
    }
    splits: list[SplitByValue] = []

    def plan_for(name: str) -> "_EntityPlan":
        """Resolve an entity reference by original *or* current name,
        so changes may refer to entities renamed earlier in the script."""
        if name in plans and plans[name].current == name:
            return plans[name]
        for plan in plans.values():
            if plan.current == name:
                return plan
        if name in plans:
            return plans[name]
        raise SchemaError(f"change references unknown entity {name!r}")

    for change in changes:
        if isinstance(change, AddColumn):
            entity = evolved.entity(plan_for(change.entity).current)
            entity.add_attribute(
                Attribute(change.name, change.data_type,
                          nullable=change.nullable, default=change.default)
            )
        elif isinstance(change, DropColumn):
            plan = plan_for(change.entity)
            entity = evolved.entity(plan.current)
            if change.name in entity.key:
                raise SchemaError(
                    f"cannot drop key attribute {change.name!r} of "
                    f"{change.entity!r}"
                )
            entity.attributes = [
                a for a in entity.attributes if a.name != change.name
            ]
            plan.dropped.add(change.name)
            notes.append(
                f"DropColumn {change.entity}.{change.name}: information "
                "loss — views reading it will break"
            )
        elif isinstance(change, RenameColumn):
            plan = plan_for(change.entity)
            entity = evolved.entity(plan.current)
            attribute = entity.attribute(change.old)
            attribute.name = change.new
            if change.old in entity.key:
                entity.key = tuple(
                    change.new if k == change.old else k for k in entity.key
                )
                evolved.constraints = [
                    KeyConstraint(entity.name, entity.key, c.is_primary)
                    if isinstance(c, KeyConstraint) and c.entity == entity.name
                    else c
                    for c in evolved.constraints
                ]
            plan.renames[change.old] = change.new
        elif isinstance(change, RenameEntity):
            plan = plan_for(change.old)
            entity = evolved.entities.pop(plan.current)
            entity.name = change.new
            evolved.entities[change.new] = entity
            evolved.constraints = [
                _rename_in_constraint(c, plan.current, change.new)
                for c in evolved.constraints
            ]
            plan.current = change.new
        elif isinstance(change, AddEntity):
            entity = Entity(change.name)
            for attr_name, data_type in change.attributes:
                entity.add_attribute(Attribute(attr_name, data_type))
            entity.key = change.key
            evolved.add_entity(entity)
            if change.key:
                evolved.add_constraint(KeyConstraint(change.name, change.key))
            notes.append(
                f"AddEntity {change.name}: new part of S′ (Diff will "
                "report it)"
            )
        elif isinstance(change, SplitByValue):
            _apply_split(evolved, plan_for(change.entity), change)
            splits.append(change)
        else:
            raise SchemaError(f"unknown change {change!r}")

    mapping = _derive_mapping(schema, evolved, plans, splits)
    return EvolutionResult(schema=evolved, mapping=mapping, notes=notes)


@dataclass
class _EntityPlan:
    original: str
    current: str = ""
    renames: dict[str, str] = field(default_factory=dict)
    dropped: set[str] = field(default_factory=set)
    split: Optional[SplitByValue] = None

    def __post_init__(self):
        if not self.current:
            self.current = self.original


def _rename_in_constraint(constraint, old: str, new: str):
    from repro.metamodel.constraints import (
        Covering,
        Disjointness,
        InclusionDependency,
        NotNull,
    )

    def swap(name: str) -> str:
        return new if name == old else name

    if isinstance(constraint, KeyConstraint):
        return KeyConstraint(swap(constraint.entity), constraint.attributes,
                             constraint.is_primary)
    if isinstance(constraint, InclusionDependency):
        return InclusionDependency(
            swap(constraint.source), constraint.source_attributes,
            swap(constraint.target), constraint.target_attributes,
        )
    if isinstance(constraint, Disjointness):
        return Disjointness(tuple(swap(e) for e in constraint.entities))
    if isinstance(constraint, Covering):
        return Covering(swap(constraint.entity),
                        tuple(swap(e) for e in constraint.covered_by))
    if isinstance(constraint, NotNull):
        return NotNull(swap(constraint.entity), constraint.attribute)
    return constraint


def _apply_split(evolved: Schema, plan: "_EntityPlan",
                 change: SplitByValue) -> None:
    entity = evolved.entities.pop(plan.current)
    match_entity = Entity(change.match_name)
    rest_entity = Entity(change.rest_name)
    for attribute in entity.attributes:
        if attribute.name != change.column:
            match_entity.add_attribute(attribute.clone())
        rest_entity.add_attribute(attribute.clone())
    match_entity.key = tuple(k for k in entity.key if k != change.column)
    rest_entity.key = entity.key
    evolved.add_entity(match_entity)
    evolved.add_entity(rest_entity)
    evolved.constraints = [
        c for c in evolved.constraints
        if not (isinstance(c, KeyConstraint) and c.entity == plan.current)
    ]
    if match_entity.key:
        evolved.add_constraint(KeyConstraint(change.match_name,
                                             match_entity.key))
    if rest_entity.key:
        evolved.add_constraint(KeyConstraint(change.rest_name,
                                             rest_entity.key))
    plan.split = change


def _derive_mapping(
    schema: Schema,
    evolved: Schema,
    plans: dict[str, "_EntityPlan"],
    splits: list[SplitByValue],
) -> Mapping:
    constraints: list[EqualityConstraint] = []
    for entity_name, plan in plans.items():
        original_entity = schema.entity(entity_name)
        if plan.split is not None:
            constraints.extend(_split_constraints(original_entity, plan))
            continue
        kept = [
            a.name for a in original_entity.attributes
            if a.name not in plan.dropped
        ]
        source_expr = project_names(Scan(entity_name), kept)
        target_outputs = [
            (old, Col(plan.renames.get(old, old))) for old in kept
        ]
        constraints.append(
            EqualityConstraint(
                source_expr=source_expr,
                target_expr=Project(Scan(plan.current), target_outputs),
                name=f"evolve_{entity_name}",
            )
        )
    return Mapping(schema, evolved, constraints,
                   name=f"map_{schema.name}_{evolved.name}")


def _split_constraints(original_entity: Entity,
                       plan: "_EntityPlan") -> list[EqualityConstraint]:
    change = plan.split
    assert change is not None
    columns = [a.name for a in original_entity.attributes]

    def renamed(column: str) -> str:
        return plan.renames.get(column, column)

    match_target = Project(
        Extend(Scan(change.match_name), renamed(change.column),
               Lit(change.value)),
        [(c, Col(renamed(c))) for c in columns],
    )
    rest_target = Project(
        Scan(change.rest_name), [(c, Col(renamed(c))) for c in columns]
    )
    return [
        EqualityConstraint(
            source_expr=project_names(
                Select(Scan(original_entity.name),
                       eq(Col(change.column), change.value)),
                columns,
            ),
            target_expr=match_target,
            name=f"split_{change.match_name}",
        ),
        EqualityConstraint(
            source_expr=project_names(
                Select(Scan(original_entity.name),
                       ne(Col(change.column), change.value)),
                columns,
            ),
            target_expr=rest_target,
            name=f"split_{change.rest_name}",
        ),
    ]
