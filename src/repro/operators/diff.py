"""Extract and Diff (paper, Section 6.2).

``Extract(S, map)`` returns the maximal sub-schema of ``S`` that can be
populated with data through ``map``, plus a mapping embedding it in
``S``.  ``Diff(S, map)`` is "essentially the complement of Extract":
the parts of ``S`` that do *not* participate in the mapping — Section
6.2 uses it to find the new parts of an evolved schema S′.

Participation is determined per attribute: an attribute of ``S``
participates when some constraint reads or writes it with a term that
carries information across the mapping (a frontier variable or a
constant), not a don't-care existential.  Keys are retained on both
sides so that Extract and Diff results can be re-joined losslessly —
the view-complement condition of Bancilhon & Spyratos [8]: together,
Extract and Diff cover the whole schema.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MappingError
from repro.logic.dependencies import TGD
from repro.logic.formulas import Atom
from repro.logic.terms import Const, Var
from repro.mappings.mapping import EqualityConstraint, Mapping
from repro.metamodel.constraints import (
    Covering,
    Disjointness,
    InclusionDependency,
    KeyConstraint,
    NotNull,
)
from repro.metamodel.elements import Attribute, Entity
from repro.metamodel.schema import Schema
from repro.observability.instrument import instrumented


@dataclass
class SchemaSlice:
    """Result of Extract or Diff: the sub-schema and its embedding."""

    schema: Schema
    mapping: Mapping  # identity-style mapping: slice → original
    participating: set[str]  # attribute paths retained


def participating_attributes(schema: Schema, mapping: Mapping) -> set[str]:
    """Attribute paths of ``schema`` that carry information through
    ``mapping`` (on whichever side ``schema`` appears)."""
    if mapping.source.name == schema.name:
        own_relations = set(mapping.source.entities)
    elif mapping.target.name == schema.name:
        own_relations = set(mapping.target.entities)
    else:
        raise MappingError(
            f"schema {schema.name!r} is not an endpoint of {mapping.name!r}"
        )
    participating: set[str] = set()
    for tgd in mapping.tgds:
        frontier = tgd.frontier()
        for atom in tgd.body + tgd.head:
            if atom.relation not in own_relations:
                continue
            for attribute, term in atom.args:
                carries = isinstance(term, Const) or (
                    isinstance(term, Var) and term in frontier
                )
                if carries:
                    participating.add(f"{atom.relation}.{attribute}")
    for constraint in mapping.equalities:
        expr = (
            constraint.source_expr
            if mapping.source.name == schema.name
            else constraint.target_expr
        )
        participating |= _expression_attributes(expr, schema)
    if mapping.so_tgd is not None:
        for implication in mapping.so_tgd.implications:
            for atom in implication.body + implication.head:
                if atom.relation in own_relations:
                    for attribute, term in atom.args:
                        participating.add(f"{atom.relation}.{attribute}")
    return participating


def _expression_attributes(expr, schema: Schema) -> set[str]:
    """Attributes an algebra expression reads, resolved bottom-up from
    its scans (column provenance tracking)."""
    from repro.algebra import expressions as E
    from repro.algebra import scalars as S

    result: set[str] = set()

    def walk(node) -> dict[str, set[str]]:
        """Returns visible column → set of attribute paths."""
        if isinstance(node, E.Scan) or isinstance(node, E.EntityScan):
            relation = node.relation if isinstance(node, E.Scan) else node.entity
            if relation not in schema.entities:
                return {}
            entity = schema.entity(relation)
            return {
                a: {f"{relation}.{a}"} for a in entity.all_attribute_names()
            }
        if isinstance(node, E.Values):
            return {}
        children = node.inputs()
        if isinstance(node, E.Join):
            left = walk(node.left)
            right = walk(node.right)
            merged = dict(left)
            for column, paths in right.items():
                merged.setdefault(column, set()).update(paths)
            for column in node.predicate.columns():
                for paths in (left.get(column), right.get(column)):
                    if paths:
                        result.update(paths)
            return merged
        if isinstance(node, E.UnionAll) or isinstance(node, E.Difference):
            left = walk(children[0])
            right = walk(children[1])
            merged = dict(left)
            for column, paths in right.items():
                merged.setdefault(column, set()).update(paths)
            return merged
        inner = walk(children[0])
        if isinstance(node, E.Select):
            for column in node.predicate.columns():
                result.update(inner.get(column, set()))
            return inner
        if isinstance(node, E.Project):
            out: dict[str, set[str]] = {}
            for name, scalar in node.outputs:
                used: set[str] = set()
                for column in scalar.columns():
                    used |= inner.get(column, set())
                out[name] = used
                result.update(used)
            return out
        if isinstance(node, E.Extend):
            extended = dict(inner)
            used: set[str] = set()
            for column in node.scalar.columns():
                used |= inner.get(column, set())
            extended[node.name] = used
            result.update(used)
            return extended
        if isinstance(node, E.Rename):
            return {
                node.mapping.get(column, column): paths
                for column, paths in inner.items()
            }
        return inner

    top = walk(expr)
    for paths in top.values():
        result.update(paths)
    return result


def _build_slice(
    schema: Schema, keep: set[str], mapping_name: str, slice_name: str
) -> SchemaSlice:
    """Construct the sub-schema containing exactly the ``keep``
    attributes (plus root keys of retained entities), and an identity
    tgd mapping back into the original schema."""
    sub = Schema(slice_name, schema.metamodel)
    kept_paths: set[str] = set()
    for entity in schema.entities.values():
        wanted = [
            a for a in entity.attributes
            if f"{entity.name}.{a.name}" in keep
        ]
        key_names = set(entity.root().key)
        keeps_entity = bool(wanted) or f"{entity.name}" in keep
        if not keeps_entity:
            continue
        copy = Entity(entity.name, entity.is_abstract)
        for attribute in entity.attributes:
            path = f"{entity.name}.{attribute.name}"
            if path in keep or attribute.name in key_names:
                copy.add_attribute(attribute.clone())
                kept_paths.add(path)
        copy.key = tuple(k for k in entity.key if copy.has_attribute(k))
        sub.add_entity(copy)
    for entity in schema.entities.values():
        if entity.name in sub.entities and entity.parent is not None:
            if entity.parent.name in sub.entities:
                sub.entities[entity.name].parent = sub.entities[entity.parent.name]
    for constraint in schema.constraints:
        if _constraint_applies(constraint, sub):
            sub.add_constraint(constraint)
    tgds = []
    for entity in sub.entities.values():
        shared = [
            (a.name, Var(f"x_{a.name}")) for a in entity.attributes
        ]
        original_entity = schema.entity(entity.name)
        head_args = []
        for attribute in original_entity.attributes:
            match = next(
                (term for name, term in shared if name == attribute.name), None
            )
            head_args.append(
                (attribute.name, match if match is not None
                 else Var(f"e_{attribute.name}"))
            )
        tgds.append(
            TGD(
                body=(Atom(entity.name, tuple(shared)),),
                head=(Atom(entity.name, tuple(head_args)),),
                name=f"embed_{entity.name}",
            )
        )
    embedding = Mapping(sub, schema, tgds, name=mapping_name)
    return SchemaSlice(schema=sub, mapping=embedding, participating=kept_paths)


def _constraint_applies(constraint, sub: Schema) -> bool:
    if isinstance(constraint, KeyConstraint):
        return constraint.entity in sub.entities and all(
            sub.entity(constraint.entity).has_attribute(a)
            for a in constraint.attributes
        )
    if isinstance(constraint, InclusionDependency):
        return (
            constraint.source in sub.entities
            and constraint.target in sub.entities
            and all(
                sub.entity(constraint.source).has_attribute(a)
                for a in constraint.source_attributes
            )
            and all(
                sub.entity(constraint.target).has_attribute(a)
                for a in constraint.target_attributes
            )
        )
    if isinstance(constraint, Disjointness):
        return all(e in sub.entities for e in constraint.entities)
    if isinstance(constraint, Covering):
        return constraint.entity in sub.entities and all(
            e in sub.entities for e in constraint.covered_by
        )
    if isinstance(constraint, NotNull):
        return constraint.entity in sub.entities and sub.entity(
            constraint.entity
        ).has_attribute(constraint.attribute)
    return False


@instrumented("op.extract", attrs=lambda schema, mapping: {
    "schema.entities": len(schema.entities),
    "mapping.constraints": mapping.constraint_count(),
})
def extract(schema: Schema, mapping: Mapping) -> SchemaSlice:
    """The sub-schema of ``schema`` populated through ``mapping``."""
    keep = participating_attributes(schema, mapping)
    return SchemaSlice(
        **vars(_build_slice(schema, keep, f"extract_{mapping.name}",
                            f"{schema.name}_extract"))
    )


@instrumented("op.diff", attrs=lambda schema, mapping: {
    "schema.entities": len(schema.entities),
    "mapping.constraints": mapping.constraint_count(),
})
def diff(schema: Schema, mapping: Mapping) -> SchemaSlice:
    """The complement: parts of ``schema`` the mapping does not cover.

    Root keys of entities that keep any attribute are retained (they
    glue Diff back onto Extract); an entity disappears entirely when
    everything except its key participates.
    """
    participating = participating_attributes(schema, mapping)
    complement: set[str] = set()
    for entity in schema.entities.values():
        for attribute in entity.attributes:
            path = f"{entity.name}.{attribute.name}"
            if path not in participating:
                if attribute.name in entity.root().key:
                    continue  # keys belong to both sides implicitly
                complement.add(path)
    return SchemaSlice(
        **vars(_build_slice(schema, complement, f"diff_{mapping.name}",
                            f"{schema.name}_diff"))
    )
