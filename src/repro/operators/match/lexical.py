"""Lexical matching: name-based similarity.

Combines three classic signals on tokenized identifiers:

* exact / prefix-abbreviation token matches ("Dept" vs "Department");
* trigram Dice coefficient on the raw names;
* normalized Levenshtein distance.

Tokenization splits camelCase, snake_case, digits and common
separators, so ``billingAddr`` and ``billing_address`` share tokens.
"""

from __future__ import annotations

import re
from functools import lru_cache

from repro.metamodel.schema import Schema
from repro.operators.match.base import Matcher, SimilarityMatrix

_SPLITTER = re.compile(
    r"[A-Z]+(?=[A-Z][a-z])|[A-Z]?[a-z]+|[A-Z]+|\d+"
)


@lru_cache(maxsize=65536)
def tokenize(identifier: str) -> tuple[str, ...]:
    """Split an identifier into lowercase tokens.

    >>> tokenize("billingAddr")
    ('billing', 'addr')
    >>> tokenize("CUSTOMER_ID2")
    ('customer', 'id', '2')
    """
    return tuple(t.lower() for t in _SPLITTER.findall(identifier))


def _trigrams(text: str) -> set[str]:
    padded = f"  {text.lower()} "
    return {padded[i : i + 3] for i in range(len(padded) - 2)}


def _dice(a: set, b: set) -> float:
    if not a or not b:
        return 0.0
    return 2 * len(a & b) / (len(a) + len(b))


@lru_cache(maxsize=65536)
def _levenshtein(a: str, b: str) -> int:
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, 1):
        current = [i]
        for j, cb in enumerate(b, 1):
            current.append(
                min(
                    previous[j] + 1,
                    current[j - 1] + 1,
                    previous[j - 1] + (ca != cb),
                )
            )
        previous = current
    return previous[-1]


def _token_similarity(a: tuple[str, ...], b: tuple[str, ...]) -> float:
    """Greedy best-pair token alignment with abbreviation awareness."""
    if not a or not b:
        return 0.0
    total = 0.0
    used: set[int] = set()
    for token_a in a:
        best, best_index = 0.0, -1
        for index, token_b in enumerate(b):
            if index in used:
                continue
            if token_a == token_b:
                score = 1.0
            elif token_a.startswith(token_b) or token_b.startswith(token_a):
                score = 0.85
            elif _is_abbreviation(token_a, token_b) or _is_abbreviation(
                token_b, token_a
            ):
                score = 0.75
            else:
                distance = _levenshtein(token_a, token_b)
                longest = max(len(token_a), len(token_b))
                score = max(0.0, 1.0 - distance / longest) * 0.7
            if score > best:
                best, best_index = score, index
        if best_index >= 0 and best > 0.3:
            used.add(best_index)
            total += best
    return total / max(len(a), len(b))


def _is_abbreviation(short: str, long: str) -> bool:
    """True when ``short`` plausibly abbreviates ``long``: either
    ``long`` with (some) vowels removed ("addr"/"address") or an
    in-order character selection sharing a 2-char prefix
    ("dept"/"department")."""
    if len(short) >= len(long) or len(short) < 2:
        return False
    if short[0] != long[0]:
        return False
    position = 0
    for ch in long:
        if position < len(short) and ch == short[position]:
            position += 1
        elif ch in "aeiou":
            continue
        else:
            break
    if position == len(short):
        return True
    if len(short) >= 3 and short[:2] == long[:2]:
        position = 0
        for ch in long:
            if position < len(short) and ch == short[position]:
                position += 1
        return position == len(short)
    return False


def name_similarity(a: str, b: str) -> float:
    """Overall lexical similarity of two element names in [0, 1]."""
    if a == b:
        return 1.0
    if a.lower() == b.lower():
        return 0.98
    tokens = _token_similarity(tokenize(a), tokenize(b))
    trigram = _dice(_trigrams(a), _trigrams(b))
    distance = _levenshtein(a.lower(), b.lower())
    edit = max(0.0, 1.0 - distance / max(len(a), len(b)))
    return max(tokens, 0.5 * trigram + 0.5 * edit)


class LexicalMatcher(Matcher):
    """Name similarity on the final path segment (attribute or entity
    name), with a small bonus when the owning entities also match."""

    name = "lexical"

    def __init__(self, floor: float = 0.05):
        self.floor = floor

    def similarity(self, source: Schema, target: Schema) -> SimilarityMatrix:
        matrix = SimilarityMatrix(source, target)
        entity_scores: dict[tuple[str, str], float] = {}
        for s_entity in source.entities:
            for t_entity in target.entities:
                score = name_similarity(s_entity, t_entity)
                entity_scores[(s_entity, t_entity)] = score
                if score > self.floor:
                    matrix.set(s_entity, t_entity, score)
        for s_path in self.attribute_paths(source):
            s_entity, s_attr = s_path.split(".", 1)
            for t_path in self.attribute_paths(target):
                t_entity, t_attr = t_path.split(".", 1)
                score = name_similarity(s_attr, t_attr)
                owner = entity_scores.get((s_entity, t_entity), 0.0)
                blended = 0.85 * score + 0.15 * owner
                if blended > self.floor:
                    matrix.set(s_path, t_path, blended)
        return matrix
