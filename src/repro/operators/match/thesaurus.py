"""Thesaurus matching: synonym-aware token comparison.

The built-in thesaurus covers the enterprise-data vocabulary the
paper's scenarios use; domain thesauri can be merged in — the paper
lists thesauri among the signals engineered-mapping matchers exploit.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.metamodel.schema import Schema
from repro.operators.match.base import Matcher, SimilarityMatrix
from repro.operators.match.lexical import tokenize

#: symmetric synonym groups; each token maps to its canonical form.
DEFAULT_THESAURUS: dict[str, str] = {}


def _register(*group: str) -> None:
    canonical = group[0]
    for word in group:
        DEFAULT_THESAURUS[word] = canonical


_register("customer", "client", "buyer", "purchaser")
_register("employee", "staff", "worker", "personnel", "empl")
_register("department", "dept", "division", "unit")
_register("salary", "pay", "wage", "compensation")
_register("address", "addr", "location")
_register("telephone", "phone", "tel")
_register("identifier", "id", "key", "code")
_register("name", "title", "label")
_register("order", "purchase")
_register("item", "article", "product", "goods")
_register("price", "cost", "amount")
_register("quantity", "qty", "count")
_register("city", "town", "municipality")
_register("country", "nation")
_register("date", "day", "when")
_register("created", "inserted", "added")
_register("updated", "modified", "changed")
_register("vendor", "supplier", "provider")
_register("invoice", "bill")
_register("manager", "supervisor", "boss")
_register("birth", "born", "birthdate")
_register("score", "rating", "grade")
_register("student", "pupil")


class ThesaurusMatcher(Matcher):
    name = "thesaurus"

    def __init__(self, thesaurus: Optional[Mapping[str, str]] = None):
        merged = dict(DEFAULT_THESAURUS)
        if thesaurus:
            merged.update(thesaurus)
        self.thesaurus = merged

    def _canonical(self, identifier: str) -> set[str]:
        return {
            self.thesaurus.get(token, token) for token in tokenize(identifier)
        }

    def _score(self, a: str, b: str) -> float:
        canon_a, canon_b = self._canonical(a), self._canonical(b)
        if not canon_a or not canon_b:
            return 0.0
        overlap = len(canon_a & canon_b)
        return overlap / max(len(canon_a), len(canon_b))

    def similarity(self, source: Schema, target: Schema) -> SimilarityMatrix:
        matrix = SimilarityMatrix(source, target)
        for s_entity in source.entities:
            for t_entity in target.entities:
                matrix.set(s_entity, t_entity, self._score(s_entity, t_entity))
        for s_path in self.attribute_paths(source):
            s_attr = s_path.split(".", 1)[1]
            for t_path in self.attribute_paths(target):
                t_attr = t_path.split(".", 1)[1]
                matrix.set(s_path, t_path, self._score(s_attr, t_attr))
        return matrix
