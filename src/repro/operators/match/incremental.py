"""Incremental schema matching (paper reference [18]: Bernstein,
Melnik & Churchill, "Incremental Schema Matching", VLDB 2006).

The interactive loop the paper's §3.1.1 sketches: the data architect
confirms or rejects candidates one at a time, and each decision
re-ranks the remaining candidates —

* a confirmed pair boosts *structurally adjacent* pairs (attributes of
  corresponding entities; entities of corresponding attributes; FK
  neighbours);
* the confirmed elements' other candidates are penalized (one-to-one
  tendency, but never fully removed — the paper warns against hiding
  viable candidates);
* a rejected pair is removed and its relatives mildly penalized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mappings.correspondence import Correspondence, CorrespondenceSet
from repro.metamodel.schema import ElementPath, Schema
from repro.operators.match.base import SimilarityMatrix
from repro.operators.match.combiner import MatchConfig, ensemble_similarity


@dataclass
class Decision:
    source_path: str
    target_path: str
    accepted: bool


class IncrementalMatcher:
    """A matching session: propose → decide → re-rank → repeat."""

    BOOST = 0.25
    PENALTY = 0.3

    def __init__(
        self,
        source: Schema,
        target: Schema,
        config: Optional[MatchConfig] = None,
    ):
        self.source = source
        self.target = target
        self.config = config or MatchConfig()
        self.matrix = ensemble_similarity(source, target, self.config)
        self.decisions: list[Decision] = []
        self._confirmed: set[tuple[str, str]] = set()
        self._rejected: set[tuple[str, str]] = set()

    # ------------------------------------------------------------------
    def candidates(self, source_path: str, k: Optional[int] = None) -> list[
        tuple[str, float]
    ]:
        """Current ranked candidates for one source element, decided
        pairs excluded."""
        k = k or self.config.top_k
        ranked = [
            (target_path, score)
            for target_path, score in self.matrix.best_for_source(
                source_path, k + len(self._rejected)
            )
            if (source_path, target_path) not in self._rejected
            and (source_path, target_path) not in self._confirmed
        ]
        return ranked[:k]

    def next_undecided(self) -> Optional[str]:
        """The source element with the most ambiguous candidate list
        (smallest gap between its top two candidates) — where the
        architect's attention is most valuable."""
        best_path, best_gap = None, None
        decided_sources = {s for s, _ in self._confirmed}
        for path_obj in self.source.all_element_paths():
            path = path_obj.path
            if path in decided_sources:
                continue
            ranked = self.candidates(path, k=2)
            if not ranked:
                continue
            gap = (
                ranked[0][1] - ranked[1][1] if len(ranked) > 1
                else ranked[0][1]
            )
            if best_gap is None or gap < best_gap:
                best_path, best_gap = path, gap
        return best_path

    # ------------------------------------------------------------------
    def accept(self, source_path: str, target_path: str) -> None:
        self.decisions.append(Decision(source_path, target_path, True))
        self._confirmed.add((source_path, target_path))
        self._boost_neighbours(source_path, target_path)
        self._penalize_competitors(source_path, target_path)

    def reject(self, source_path: str, target_path: str) -> None:
        self.decisions.append(Decision(source_path, target_path, False))
        self._rejected.add((source_path, target_path))
        self.matrix.set(source_path, target_path, 0.0)

    # ------------------------------------------------------------------
    def _neighbours(self, schema: Schema, path: str) -> set[str]:
        related: set[str] = set()
        if "." in path:
            entity_name, _ = path.split(".", 1)
            related.add(entity_name)
        else:
            entity_name = path
            if entity_name in schema.entities:
                for attribute in schema.entity(entity_name).attributes:
                    related.add(f"{entity_name}.{attribute.name}")
        if entity_name in schema.entities:
            for dep in schema.inclusion_dependencies():
                if dep.source == entity_name:
                    related.add(dep.target)
                if dep.target == entity_name:
                    related.add(dep.source)
        return related

    def _boost_neighbours(self, source_path: str, target_path: str) -> None:
        source_related = self._neighbours(self.source, source_path)
        target_related = self._neighbours(self.target, target_path)
        for s_path in source_related:
            for t_path in target_related:
                if ("." in s_path) != ("." in t_path):
                    continue
                current = self.matrix.get(s_path, t_path)
                if current > 0:
                    self.matrix.set(s_path, t_path,
                                    current + self.BOOST * (1 - current))

    def _penalize_competitors(self, source_path: str, target_path: str) -> None:
        for s_path, t_path, score in list(self.matrix.items()):
            competes = (
                (s_path == source_path and t_path != target_path)
                or (t_path == target_path and s_path != source_path)
            )
            if competes:
                self.matrix.set(s_path, t_path, score * (1 - self.PENALTY))

    # ------------------------------------------------------------------
    def result(self) -> CorrespondenceSet:
        """Confirmed correspondences plus remaining top-k candidates."""
        correspondences = CorrespondenceSet(self.source, self.target)
        for source_path, target_path in sorted(self._confirmed):
            correspondences.add(
                Correspondence(
                    ElementPath(self.source.name, source_path),
                    ElementPath(self.target.name, target_path),
                    confidence=1.0,
                )
            )
        decided_sources = {s for s, _ in self._confirmed}
        for path_obj in self.source.all_element_paths():
            path = path_obj.path
            if path in decided_sources:
                continue
            for target_path, score in self.candidates(path):
                if score < self.config.threshold:
                    continue
                if ("." in path) != ("." in target_path):
                    continue
                correspondences.add(
                    Correspondence(
                        ElementPath(self.source.name, path),
                        ElementPath(self.target.name, target_path),
                        confidence=round(min(score, 0.99), 4),
                    )
                )
        return correspondences
