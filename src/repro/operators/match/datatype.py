"""Datatype matching: attribute pairs scored by type compatibility.

On its own this is a weak signal (many attributes share a type), so the
ensemble gives it a small weight; it mainly *vetoes* lexically similar
pairs with irreconcilable types.
"""

from __future__ import annotations

from repro.metamodel.schema import Schema
from repro.metamodel.types import type_compatibility
from repro.operators.match.base import Matcher, SimilarityMatrix


class DatatypeMatcher(Matcher):
    name = "datatype"

    def similarity(self, source: Schema, target: Schema) -> SimilarityMatrix:
        matrix = SimilarityMatrix(source, target)
        source_attrs = [
            (f"{e.name}.{a.name}", a.data_type)
            for e in source.entities.values()
            for a in e.attributes
        ]
        target_attrs = [
            (f"{e.name}.{a.name}", a.data_type)
            for e in target.entities.values()
            for a in e.attributes
        ]
        for s_path, s_type in source_attrs:
            for t_path, t_type in target_attrs:
                matrix.set(s_path, t_path, type_compatibility(s_type, t_type))
        return matrix
