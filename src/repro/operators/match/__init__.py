"""The Match operator (paper, Section 3.1.1).

Schema matching proposes correspondences between two schemas.  The
paper surveys the algorithm families — "lexical analysis of element
names, schema structure, data types, value distributions, thesauri" —
and argues that for engineered mappings the matcher's job is to return
**all viable candidates per element (top-k)**, not one best guess.

This package implements one matcher per family plus an ensemble:

* :mod:`~repro.operators.match.lexical` — name tokenization, edit
  distance, trigram overlap;
* :mod:`~repro.operators.match.structural` — similarity flooding
  (Melnik, Garcia-Molina & Rahm), propagating similarity through the
  schema graphs;
* :mod:`~repro.operators.match.datatype` — type-compatibility scores;
* :mod:`~repro.operators.match.thesaurus` — synonym-aware token match;
* :mod:`~repro.operators.match.instance_based` — value-distribution
  comparison over sample instances;
* :mod:`~repro.operators.match.combiner` — weighted ensemble, top-k
  candidate sets, threshold and one-to-one selection.
"""

from repro.operators.match.base import Matcher, SimilarityMatrix
from repro.operators.match.lexical import LexicalMatcher, name_similarity, tokenize
from repro.operators.match.structural import SimilarityFlooding
from repro.operators.match.datatype import DatatypeMatcher
from repro.operators.match.thesaurus import ThesaurusMatcher, DEFAULT_THESAURUS
from repro.operators.match.instance_based import InstanceBasedMatcher
from repro.operators.match.combiner import MatchConfig, match, evaluate_against_truth
from repro.operators.match.incremental import IncrementalMatcher

__all__ = [
    "Matcher",
    "SimilarityMatrix",
    "LexicalMatcher",
    "name_similarity",
    "tokenize",
    "SimilarityFlooding",
    "DatatypeMatcher",
    "ThesaurusMatcher",
    "DEFAULT_THESAURUS",
    "InstanceBasedMatcher",
    "MatchConfig",
    "match",
    "evaluate_against_truth",
    "IncrementalMatcher",
]
