"""Matcher interface and the similarity matrix they produce."""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.metamodel.schema import ElementPath, Schema


class SimilarityMatrix:
    """Sparse similarity scores between element paths of two schemas.

    Scores live in [0, 1]; absent pairs are 0.  Matrices combine by
    weighted sum (:meth:`blend`) and normalize per source element.
    """

    def __init__(self, source: Schema, target: Schema):
        self.source = source
        self.target = target
        self._scores: dict[tuple[str, str], float] = {}

    def set(self, source_path: str, target_path: str, score: float) -> None:
        if score <= 0.0:
            self._scores.pop((source_path, target_path), None)
        else:
            self._scores[(source_path, target_path)] = min(1.0, score)

    def get(self, source_path: str, target_path: str) -> float:
        return self._scores.get((source_path, target_path), 0.0)

    def items(self) -> Iterator[tuple[str, str, float]]:
        for (source_path, target_path), score in self._scores.items():
            yield source_path, target_path, score

    def __len__(self) -> int:
        return len(self._scores)

    def blend(self, others: Iterable[tuple["SimilarityMatrix", float]]) -> "SimilarityMatrix":
        """Weighted combination of this matrix (weight folded in by the
        caller) with others; pairs missing from a matrix contribute 0."""
        result = SimilarityMatrix(self.source, self.target)
        keys: set[tuple[str, str]] = set(self._scores)
        weighted: list[tuple[SimilarityMatrix, float]] = list(others)
        for matrix, _ in weighted:
            keys |= set(matrix._scores)
        for key in keys:
            total = self._scores.get(key, 0.0)
            for matrix, weight in weighted:
                total += weight * matrix._scores.get(key, 0.0)
            if total > 0:
                result._scores[key] = min(1.0, total)
        return result

    def scale(self, factor: float) -> "SimilarityMatrix":
        result = SimilarityMatrix(self.source, self.target)
        for key, score in self._scores.items():
            result._scores[key] = score * factor
        return result

    def normalized(self) -> "SimilarityMatrix":
        """Divide by the global maximum so the best pair scores 1."""
        best = max(self._scores.values(), default=0.0)
        if best == 0:
            return self
        return self.scale(1.0 / best)

    def best_for_source(self, source_path: str, k: int = 1) -> list[tuple[str, float]]:
        candidates = [
            (target_path, score)
            for (s, target_path), score in self._scores.items()
            if s == source_path
        ]
        candidates.sort(key=lambda item: -item[1])
        return candidates[:k]


class Matcher:
    """Base class: produce a similarity matrix for a schema pair."""

    name: str = "matcher"

    def similarity(self, source: Schema, target: Schema) -> SimilarityMatrix:
        raise NotImplementedError

    @staticmethod
    def attribute_paths(schema: Schema) -> list[str]:
        return [
            str(p.path)
            for p in schema.all_element_paths()
            if not p.is_entity
        ]

    @staticmethod
    def entity_paths(schema: Schema) -> list[str]:
        return list(schema.entities)
