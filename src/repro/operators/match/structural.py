"""Similarity flooding (Melnik, Garcia-Molina & Rahm, ICDE 2002).

The structural matcher the paper's second author invented: build a
*pairwise connectivity graph* whose nodes are pairs of elements, one
from each schema, and whose edges connect pairs that are linked by the
same edge label in both schemas; then iteratively propagate similarity
along those edges until a fixpoint.

Schema graph edge labels used here:

* ``attr`` — entity → its attribute;
* ``isa`` — entity → its parent entity;
* ``fk`` — FK source entity → target entity;
* ``type`` — attribute → its (base) primitive type node;
* ``assoc`` / ``contains`` — association and containment ends.
"""

from __future__ import annotations

from repro.metamodel.schema import Schema
from repro.metamodel.types import base_primitive
from repro.operators.match.base import Matcher, SimilarityMatrix
from repro.operators.match.lexical import LexicalMatcher


def _schema_graph(schema: Schema) -> list[tuple[str, str, str]]:
    """(from_node, label, to_node) edges; type nodes are shared across
    schemas by name (``type:int``)."""
    edges: list[tuple[str, str, str]] = []
    for entity in schema.entities.values():
        for attribute in entity.attributes:
            path = f"{entity.name}.{attribute.name}"
            edges.append((entity.name, "attr", path))
            edges.append(
                (path, "type", f"type:{base_primitive(attribute.data_type).name}")
            )
        if entity.parent is not None:
            edges.append((entity.name, "isa", entity.parent.name))
    for dep in schema.inclusion_dependencies():
        edges.append((dep.source, "fk", dep.target))
    for association in schema.associations.values():
        edges.append(
            (association.source.entity.name, "assoc",
             association.target.entity.name)
        )
    for containment in schema.containments.values():
        edges.append((containment.parent.name, "contains",
                      containment.child.name))
    return edges


class SimilarityFlooding(Matcher):
    """Fixpoint similarity propagation over the pairwise connectivity
    graph, seeded by a lexical matcher."""

    name = "similarity-flooding"

    def __init__(
        self,
        iterations: int = 20,
        epsilon: float = 1e-4,
        seed_matcher: Matcher | None = None,
    ):
        self.iterations = iterations
        self.epsilon = epsilon
        self.seed_matcher = seed_matcher or LexicalMatcher()

    def similarity(self, source: Schema, target: Schema) -> SimilarityMatrix:
        seed = self.seed_matcher.similarity(source, target)
        source_edges = _schema_graph(source)
        target_edges = _schema_graph(target)

        # Pairwise connectivity graph: for same-labelled edges
        # (a --L--> b) and (a' --L--> b'), pair (a, a') feeds (b, b')
        # and vice versa.
        propagation: dict[tuple[str, str], list[tuple[str, str]]] = {}

        def add_edge(from_pair, to_pair) -> None:
            propagation.setdefault(from_pair, []).append(to_pair)

        by_label_target: dict[str, list[tuple[str, str]]] = {}
        for from_node, label, to_node in target_edges:
            by_label_target.setdefault(label, []).append((from_node, to_node))
        for s_from, label, s_to in source_edges:
            for t_from, t_to in by_label_target.get(label, []):
                add_edge((s_from, t_from), (s_to, t_to))
                add_edge((s_to, t_to), (s_from, t_from))

        # Fanout-weighted coefficients (the 1/outdegree of the PCG).
        weights: dict[tuple[tuple[str, str], tuple[str, str]], float] = {}
        for from_pair, neighbours in propagation.items():
            coefficient = 1.0 / len(neighbours)
            for to_pair in neighbours:
                weights[(from_pair, to_pair)] = coefficient

        # Initial σ⁰: seed scores for element pairs, 1.0 for shared type
        # nodes (they are identical constants).
        sigma: dict[tuple[str, str], float] = {}
        pairs = set(propagation)
        for neighbours in propagation.values():
            pairs.update(neighbours)
        for pair in pairs:
            s_node, t_node = pair
            if s_node.startswith("type:") or t_node.startswith("type:"):
                sigma[pair] = 1.0 if s_node == t_node else 0.0
            else:
                sigma[pair] = seed.get(s_node, t_node)

        for _ in range(self.iterations):
            updated: dict[tuple[str, str], float] = {}
            for pair in pairs:
                incoming = 0.0
                for neighbour in propagation.get(pair, []):
                    incoming += sigma.get(neighbour, 0.0) * weights[
                        (neighbour, pair)
                    ]
                updated[pair] = sigma[pair] + incoming
            best = max(updated.values(), default=1.0)
            if best > 0:
                for pair in updated:
                    updated[pair] /= best
            delta = max(
                abs(updated[pair] - sigma[pair]) for pair in pairs
            ) if pairs else 0.0
            sigma = updated
            if delta < self.epsilon:
                break

        matrix = SimilarityMatrix(source, target)
        for (s_node, t_node), score in sigma.items():
            if s_node.startswith("type:") or t_node.startswith("type:"):
                continue
            if score > 0.01:
                matrix.set(s_node, t_node, score)
        # Elements disconnected in the PCG keep their seed score.
        for s_path, t_path, score in seed.items():
            if matrix.get(s_path, t_path) == 0.0:
                matrix.set(s_path, t_path, score * 0.5)
        return matrix
