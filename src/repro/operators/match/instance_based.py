"""Instance-based matching: compare value distributions.

Given sample instances of both schemas, attributes are profiled —
numeric attributes by range/mean/spread, string attributes by length,
character classes and value overlap — and profile similarity feeds the
ensemble.  This is the paper's "value distributions" signal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.instances.database import TYPE_FIELD, Instance
from repro.instances.labeled_null import is_null
from repro.metamodel.schema import Schema
from repro.operators.match.base import Matcher, SimilarityMatrix


@dataclass
class _Profile:
    kind: str  # "numeric", "string", "other", "empty"
    count: int = 0
    mean: float = 0.0
    spread: float = 0.0
    min_value: float = 0.0
    max_value: float = 0.0
    avg_length: float = 0.0
    digit_ratio: float = 0.0
    sample: frozenset = frozenset()


def _profile(values: list) -> _Profile:
    values = [v for v in values if not is_null(v)]
    if not values:
        return _Profile(kind="empty")
    numeric = [v for v in values if isinstance(v, (int, float))
               and not isinstance(v, bool)]
    if len(numeric) >= 0.9 * len(values):
        mean = sum(numeric) / len(numeric)
        variance = sum((v - mean) ** 2 for v in numeric) / len(numeric)
        return _Profile(
            kind="numeric",
            count=len(numeric),
            mean=mean,
            spread=math.sqrt(variance),
            min_value=min(numeric),
            max_value=max(numeric),
            sample=frozenset(list(map(str, numeric))[:50]),
        )
    strings = [str(v) for v in values]
    total_chars = sum(len(s) for s in strings) or 1
    digits = sum(ch.isdigit() for s in strings for ch in s)
    return _Profile(
        kind="string",
        count=len(strings),
        avg_length=total_chars / len(strings),
        digit_ratio=digits / total_chars,
        sample=frozenset(strings[:50]),
    )


def _profile_similarity(a: _Profile, b: _Profile) -> float:
    if a.kind == "empty" or b.kind == "empty":
        return 0.0
    if a.kind != b.kind:
        return 0.05
    overlap = 0.0
    if a.sample and b.sample:
        overlap = len(a.sample & b.sample) / min(len(a.sample), len(b.sample))
    if a.kind == "numeric":
        span = max(a.max_value, b.max_value) - min(a.min_value, b.min_value)
        if span <= 0:
            range_score = 1.0
        else:
            intersection = min(a.max_value, b.max_value) - max(
                a.min_value, b.min_value
            )
            range_score = max(0.0, intersection / span)
        return min(1.0, 0.4 * range_score + 0.6 * overlap + 0.1)
    length_score = 1.0 - min(
        1.0, abs(a.avg_length - b.avg_length) / max(a.avg_length, b.avg_length, 1.0)
    )
    digit_score = 1.0 - abs(a.digit_ratio - b.digit_ratio)
    return min(1.0, 0.3 * length_score + 0.2 * digit_score + 0.5 * overlap)


class InstanceBasedMatcher(Matcher):
    name = "instance-based"

    def __init__(self, source_instance: Instance, target_instance: Instance):
        self.source_instance = source_instance
        self.target_instance = target_instance

    def _profiles(self, schema: Schema, instance: Instance) -> dict[str, _Profile]:
        profiles: dict[str, _Profile] = {}
        for entity in schema.entities.values():
            if entity.parent is not None or entity.children():
                rows = instance.objects_of(entity.name) if instance.schema else []
            else:
                rows = instance.rows(entity.name)
            for attribute in entity.attributes:
                values = [row.get(attribute.name) for row in rows]
                profiles[f"{entity.name}.{attribute.name}"] = _profile(values)
        return profiles

    def similarity(self, source: Schema, target: Schema) -> SimilarityMatrix:
        matrix = SimilarityMatrix(source, target)
        source_profiles = self._profiles(source, self.source_instance)
        target_profiles = self._profiles(target, self.target_instance)
        for s_path, s_profile in source_profiles.items():
            for t_path, t_profile in target_profiles.items():
                score = _profile_similarity(s_profile, t_profile)
                if score > 0.05:
                    matrix.set(s_path, t_path, score)
        return matrix
