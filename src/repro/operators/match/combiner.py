"""The match ensemble and the Match operator's entry point.

Combines the per-family matchers by weighted average and produces a
:class:`~repro.mappings.correspondence.CorrespondenceSet` retaining the
**top-k candidates per source element** — the deliverable the paper
argues is right for engineered mappings (Section 3.1.1) — rather than
only a one-to-one best guess.  :func:`evaluate_against_truth` computes
precision / recall / top-k hit rate for the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping as TMapping, Optional

from repro.instances.database import Instance
from repro.mappings.correspondence import Correspondence, CorrespondenceSet
from repro.metamodel.schema import ElementPath, Schema
from repro.operators.match.base import Matcher, SimilarityMatrix
from repro.operators.match.datatype import DatatypeMatcher
from repro.operators.match.instance_based import InstanceBasedMatcher
from repro.operators.match.lexical import LexicalMatcher
from repro.operators.match.structural import SimilarityFlooding
from repro.operators.match.thesaurus import ThesaurusMatcher
from repro.observability.instrument import instrumented


@dataclass
class MatchConfig:
    """Knobs for the ensemble.

    ``weights`` are per-matcher; matchers with weight 0 are skipped.
    ``top_k`` controls how many candidates to keep per source element;
    ``threshold`` prunes weak candidates.
    """

    weights: TMapping[str, float] = field(
        default_factory=lambda: {
            "lexical": 0.35,
            "similarity-flooding": 0.25,
            "thesaurus": 0.2,
            "datatype": 0.1,
            "instance-based": 0.1,
        }
    )
    top_k: int = 3
    threshold: float = 0.25
    flooding_iterations: int = 20
    thesaurus: Optional[TMapping[str, str]] = None
    source_instance: Optional[Instance] = None
    target_instance: Optional[Instance] = None


def _build_matchers(config: MatchConfig) -> list[tuple[Matcher, float]]:
    matchers: list[tuple[Matcher, float]] = []
    weights = dict(config.weights)
    if weights.get("lexical", 0) > 0:
        matchers.append((LexicalMatcher(), weights["lexical"]))
    if weights.get("similarity-flooding", 0) > 0:
        matchers.append(
            (
                SimilarityFlooding(iterations=config.flooding_iterations),
                weights["similarity-flooding"],
            )
        )
    if weights.get("thesaurus", 0) > 0:
        matchers.append((ThesaurusMatcher(config.thesaurus), weights["thesaurus"]))
    if weights.get("datatype", 0) > 0:
        matchers.append((DatatypeMatcher(), weights["datatype"]))
    if (
        weights.get("instance-based", 0) > 0
        and config.source_instance is not None
        and config.target_instance is not None
    ):
        matchers.append(
            (
                InstanceBasedMatcher(
                    config.source_instance, config.target_instance
                ),
                weights["instance-based"],
            )
        )
    if not matchers:
        raise ValueError("MatchConfig enables no matcher")
    return matchers


def ensemble_similarity(
    source: Schema, target: Schema, config: Optional[MatchConfig] = None
) -> SimilarityMatrix:
    """The weighted-average similarity matrix of the enabled matchers."""
    config = config or MatchConfig()
    matchers = _build_matchers(config)
    total_weight = sum(weight for _, weight in matchers)
    first_matcher, first_weight = matchers[0]
    combined = first_matcher.similarity(source, target).scale(
        first_weight / total_weight
    )
    rest = [
        (matcher.similarity(source, target), weight / total_weight)
        for matcher, weight in matchers[1:]
    ]
    return combined.blend(rest)


@instrumented("op.match", attrs=lambda source, target, config=None: {
    "source.elements": len(source.all_element_paths()),
    "target.elements": len(target.all_element_paths()),
})
def match(
    source: Schema,
    target: Schema,
    config: Optional[MatchConfig] = None,
) -> CorrespondenceSet:
    """The Match operator: propose top-k correspondence candidates."""
    config = config or MatchConfig()
    matrix = ensemble_similarity(source, target, config)
    correspondences = CorrespondenceSet(source, target)
    source_paths = [str(p.path) for p in source.all_element_paths()]
    for s_path in source_paths:
        for t_path, score in matrix.best_for_source(s_path, config.top_k):
            if score < config.threshold:
                continue
            # Entity elements only pair with entity elements, attributes
            # with attributes.
            if ("." in s_path) != ("." in t_path):
                continue
            correspondences.add(
                Correspondence(
                    ElementPath(source.name, s_path),
                    ElementPath(target.name, t_path),
                    confidence=round(score, 4),
                )
            )
    return correspondences


@dataclass
class MatchQuality:
    """Precision/recall of a correspondence set against ground truth."""

    precision: float
    recall: float
    f1: float
    top_k_hit_rate: float
    proposed: int
    truth_size: int

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f} "
            f"top-k hit={self.top_k_hit_rate:.3f} "
            f"({self.proposed} proposed / {self.truth_size} true)"
        )


def evaluate_against_truth(
    correspondences: CorrespondenceSet,
    truth: set[tuple[str, str]],
) -> MatchQuality:
    """Score proposals against ground-truth (source_path, target_path)
    pairs.

    * precision / recall / F1 over the full proposal set;
    * top-k hit rate: fraction of true pairs whose source element's
      candidate list contains the right target — the metric the paper's
      argument cares about ("ensure that a matcher returns all viable
      candidates").
    """
    proposed = {
        (c.source.path, c.target.path) for c in correspondences
    }
    true_positives = proposed & truth
    precision = len(true_positives) / len(proposed) if proposed else 0.0
    recall = len(true_positives) / len(truth) if truth else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    hits = 0
    truth_sources = {s for s, _ in truth}
    for source_path in truth_sources:
        wanted = {t for s, t in truth if s == source_path}
        candidates = {
            c.target.path
            for c in correspondences.for_source(source_path)
        }
        if candidates & wanted:
            hits += 1
    hit_rate = hits / len(truth_sources) if truth_sources else 1.0
    return MatchQuality(
        precision=precision,
        recall=recall,
        f1=f1,
        top_k_hit_rate=hit_rate,
        proposed=len(proposed),
        truth_size=len(truth),
    )
