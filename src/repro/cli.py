"""Command-line interface: ``python -m repro <command> ...``.

A thin shell over the engine for the artifacts the repository
serializes (schemas, mappings, instances as JSON; DDL as SQL text):

* ``describe SCHEMA.json`` — human-readable schema report;
* ``validate SCHEMA.json [--instance DATA.json]`` — well-formedness /
  integrity check;
* ``ddl SCHEMA.json`` / ``parse-ddl FILE.sql`` — DDL in both directions;
* ``dot SCHEMA.json`` — Graphviz rendering;
* ``match SOURCE.json TARGET.json [--top-k N]`` — correspondence
  candidates;
* ``modelgen SCHEMA.json METAMODEL [--strategy S]`` — schema
  translation (prints derived schema + mapping);
* ``exchange MAPPING.json DATA.json`` — run the mapping, print the
  target instance as JSON;
* ``sql MAPPING.json`` — the generated query view(s) as SQL;
* ``trace SCRIPT.py`` — run a Python script under engine tracing and
  print the span tree (``--out`` exports JSONL);
* ``metrics SCRIPT.py`` — run a script and print the collected engine
  metrics (``--json`` for a machine-readable snapshot).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ModelManagementError


def _load_json(path: str) -> dict:
    return json.loads(Path(path).read_text())


def _load_schema(path: str):
    from repro.metamodels.serialization import schema_from_dict

    return schema_from_dict(_load_json(path))


def _load_mapping(path: str):
    from repro.metamodels.serialization import mapping_from_dict

    return mapping_from_dict(_load_json(path))


def cmd_describe(args) -> int:
    print(_load_schema(args.schema).describe())
    return 0


def cmd_validate(args) -> int:
    from repro.instances.serialization import instance_from_dict
    from repro.instances.validation import violations
    from repro.metamodel.validation import schema_violations

    schema = _load_schema(args.schema)
    problems = schema_violations(schema)
    for problem in problems:
        print(f"schema: {problem}")
    if args.instance:
        instance = instance_from_dict(_load_json(args.instance), schema)
        for problem in violations(instance, schema):
            problems.append(problem)
            print(f"instance: {problem}")
    if not problems:
        print("ok")
    return 1 if problems else 0


def cmd_ddl(args) -> int:
    from repro.metamodels.relational import emit_ddl

    print(emit_ddl(_load_schema(args.schema)))
    return 0


def cmd_parse_ddl(args) -> int:
    from repro.metamodels.relational import parse_ddl
    from repro.metamodels.serialization import schema_to_dict

    schema = parse_ddl(Path(args.file).read_text(),
                       schema_name=args.name or Path(args.file).stem)
    print(json.dumps(schema_to_dict(schema), indent=2))
    return 0


def cmd_dot(args) -> int:
    from repro.metamodels.graphviz import schema_to_dot

    print(schema_to_dot(_load_schema(args.schema)))
    return 0


def cmd_match(args) -> int:
    from repro.operators.match import MatchConfig, match

    source = _load_schema(args.source)
    target = _load_schema(args.target)
    correspondences = match(
        source, target, MatchConfig(top_k=args.top_k, threshold=args.threshold)
    )
    print(correspondences.describe())
    return 0


def cmd_modelgen(args) -> int:
    from repro.metamodels.serialization import mapping_to_dict
    from repro.operators.modelgen import InheritanceStrategy, modelgen

    strategy = InheritanceStrategy[args.strategy.upper()]
    result = modelgen(_load_schema(args.schema), args.metamodel, strategy)
    print(result.schema.describe())
    print()
    print(result.mapping.describe())
    if args.out:
        Path(args.out).write_text(
            json.dumps(mapping_to_dict(result.mapping), indent=2,
                       default=str)
        )
        print(f"\nmapping written to {args.out}")
    return 0


def cmd_exchange(args) -> int:
    from repro.instances.serialization import (
        dump_instance,
        instance_from_dict,
    )
    from repro.runtime.executor import exchange

    mapping = _load_mapping(args.mapping)
    source = instance_from_dict(_load_json(args.data), mapping.source)
    result = exchange(mapping, source, compute_core=args.core)
    print(dump_instance(result))
    return 0


def cmd_sql(args) -> int:
    from repro.algebra.sql import to_sql
    from repro.operators.transgen import TransformationPair, transgen

    mapping = _load_mapping(args.mapping)
    views = transgen(mapping)
    if isinstance(views, TransformationPair):
        for relation, expr in views.query_view.rules:
            print(f"-- query view for {relation}")
            print(to_sql(expr))
            print()
    else:
        print("-- tgd mapping: executed by the chase, no view SQL")
        for tgd in mapping.tgds:
            print(f"-- {tgd}")
    return 0


def _run_script_observed(script: str, quiet: bool) -> None:
    """Execute ``script`` as ``__main__`` with observability enabled."""
    import contextlib
    import io
    import runpy

    import repro.observability as obs

    obs.reset()
    obs.enable()
    try:
        if quiet:
            with contextlib.redirect_stdout(io.StringIO()):
                runpy.run_path(script, run_name="__main__")
        else:
            runpy.run_path(script, run_name="__main__")
    finally:
        obs.disable()


def cmd_trace(args) -> int:
    from repro.observability import registry, tracer

    _run_script_observed(args.script, args.quiet)
    if not tracer.roots:
        print("(no spans recorded — does the script use the engine?)")
        return 1
    print(tracer.render(attributes=not args.no_attributes))
    if args.out:
        path = tracer.export_jsonl(args.out)
        print(f"\n{tracer.span_count()} spans exported to {path}")
    if args.metrics:
        print()
        print(registry.render())
    return 0


def cmd_metrics(args) -> int:
    from repro.observability import registry

    _run_script_observed(args.script, args.quiet)
    if args.json:
        print(json.dumps(registry.snapshot(), indent=2, default=str))
    else:
        print(registry.render())
    if args.out:
        path = registry.export_json(args.out)
        print(f"metrics written to {path}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="generic model management engine "
        "(Bernstein & Melnik, SIGMOD 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("describe", help="print a schema report")
    p.add_argument("schema")
    p.set_defaults(func=cmd_describe)

    p = sub.add_parser("validate", help="check schema / instance")
    p.add_argument("schema")
    p.add_argument("--instance")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("ddl", help="emit SQL DDL for a relational schema")
    p.add_argument("schema")
    p.set_defaults(func=cmd_ddl)

    p = sub.add_parser("parse-ddl", help="import CREATE TABLE statements")
    p.add_argument("file")
    p.add_argument("--name")
    p.set_defaults(func=cmd_parse_ddl)

    p = sub.add_parser("dot", help="Graphviz DOT rendering of a schema")
    p.add_argument("schema")
    p.set_defaults(func=cmd_dot)

    p = sub.add_parser("match", help="propose correspondence candidates")
    p.add_argument("source")
    p.add_argument("target")
    p.add_argument("--top-k", type=int, default=3)
    p.add_argument("--threshold", type=float, default=0.25)
    p.set_defaults(func=cmd_match)

    p = sub.add_parser("modelgen", help="translate to another metamodel")
    p.add_argument("schema")
    p.add_argument("metamodel",
                   choices=["relational", "er", "oo", "nested"])
    p.add_argument("--strategy", default="TPT",
                   choices=["TPH", "TPT", "TPC"])
    p.add_argument("--out", help="write the mapping JSON here")
    p.set_defaults(func=cmd_modelgen)

    p = sub.add_parser("exchange", help="run a mapping over data")
    p.add_argument("mapping")
    p.add_argument("data")
    p.add_argument("--core", action="store_true",
                   help="minimize the result to its core")
    p.set_defaults(func=cmd_exchange)

    p = sub.add_parser("sql", help="print generated query-view SQL")
    p.add_argument("mapping")
    p.set_defaults(func=cmd_sql)

    p = sub.add_parser("trace",
                       help="run a script under tracing, print span tree")
    p.add_argument("script", help="Python script executed as __main__")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the script's own stdout")
    p.add_argument("--out", help="export spans as JSONL here")
    p.add_argument("--metrics", action="store_true",
                   help="also print the metrics registry")
    p.add_argument("--no-attributes", action="store_true",
                   help="omit span attributes from the tree")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("metrics",
                       help="run a script, print collected engine metrics")
    p.add_argument("script", help="Python script executed as __main__")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the script's own stdout")
    p.add_argument("--json", action="store_true",
                   help="print a JSON snapshot instead of the summary")
    p.add_argument("--out", help="also write the JSON snapshot here")
    p.set_defaults(func=cmd_metrics)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ModelManagementError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
