"""Command-line interface: ``python -m repro <command> ...``.

A thin shell over the engine for the artifacts the repository
serializes (schemas, mappings, instances as JSON; DDL as SQL text):

* ``describe SCHEMA.json`` — human-readable schema report;
* ``validate SCHEMA.json [--instance DATA.json]`` — well-formedness /
  integrity check;
* ``ddl SCHEMA.json`` / ``parse-ddl FILE.sql`` — DDL in both directions;
* ``dot SCHEMA.json`` — Graphviz rendering;
* ``match SOURCE.json TARGET.json [--top-k N]`` — correspondence
  candidates;
* ``modelgen SCHEMA.json METAMODEL [--strategy S]`` — schema
  translation (prints derived schema + mapping);
* ``exchange MAPPING.json DATA.json`` — run the mapping, print the
  target instance as JSON;
* ``sql MAPPING.json`` — the generated query view(s) as SQL;
* ``explain MAPPING.json RELATION [--data DATA.json --analyze]`` —
  the annotated compiled plan for a target-relation query; with
  ``--analyze`` the plan runs and every node reports rows/calls/time;
  ``--no-opt`` shows the heuristic plan and ``--compare`` prints the
  heuristic and cost-based plans side by side with their costs;
* ``trace SCRIPT.py`` — run a Python script under engine tracing and
  print the span tree (``--out`` exports JSONL);
* ``metrics SCRIPT.py`` — run a script and print the collected engine
  metrics (``--format json`` for a machine-readable snapshot,
  ``--format prom`` for Prometheus text exposition);
* ``stats DATA.json`` — the per-relation statistics the cardinality
  estimator consumes (row counts, distincts, null fractions, min/max,
  most-common values);
* ``querylog SCRIPT.py`` — run a script with observability enabled and
  print the plan-fingerprinted query log (``--out`` exports JSONL);
* ``journal SCRIPT.py`` — run a script and print the engine event
  journal (chase rounds, backpressure, fallbacks, alerts; ``--out``
  exports JSONL);
* ``health [SCRIPT.py]`` — evaluate SLO health signals (optionally
  after running a script under observability) and exit nonzero when
  any signal breaches its threshold (``--threshold key=value``
  overrides; exit 0 healthy, 1 alerts, 2 usage error);
* ``top SCRIPT.py`` — run a script while rendering a live terminal
  dashboard (health line, busiest spans, engine counters, journal
  tail; ``--once`` prints a single frame after the script finishes);
* ``bench diff`` — compare freshly emitted ``BENCH_*.json`` against
  committed baselines (the regression watchdog's diff engine; see
  ``benchmarks/regression.py`` for the re-run-and-diff ``check`` mode).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.errors import ModelManagementError


def _load_json(path: str) -> dict:
    return json.loads(Path(path).read_text())


def _load_schema(path: str):
    from repro.metamodels.serialization import schema_from_dict

    return schema_from_dict(_load_json(path))


def _load_mapping(path: str):
    from repro.metamodels.serialization import mapping_from_dict

    return mapping_from_dict(_load_json(path))


def cmd_describe(args) -> int:
    print(_load_schema(args.schema).describe())
    return 0


def cmd_validate(args) -> int:
    from repro.instances.serialization import instance_from_dict
    from repro.instances.validation import violations
    from repro.metamodel.validation import schema_violations

    schema = _load_schema(args.schema)
    problems = schema_violations(schema)
    for problem in problems:
        print(f"schema: {problem}")
    if args.instance:
        instance = instance_from_dict(_load_json(args.instance), schema)
        for problem in violations(instance, schema):
            problems.append(problem)
            print(f"instance: {problem}")
    if not problems:
        print("ok")
    return 1 if problems else 0


def cmd_ddl(args) -> int:
    from repro.metamodels.relational import emit_ddl

    print(emit_ddl(_load_schema(args.schema)))
    return 0


def cmd_parse_ddl(args) -> int:
    from repro.metamodels.relational import parse_ddl
    from repro.metamodels.serialization import schema_to_dict

    schema = parse_ddl(Path(args.file).read_text(),
                       schema_name=args.name or Path(args.file).stem)
    print(json.dumps(schema_to_dict(schema), indent=2))
    return 0


def cmd_dot(args) -> int:
    from repro.metamodels.graphviz import schema_to_dot

    print(schema_to_dot(_load_schema(args.schema)))
    return 0


def cmd_match(args) -> int:
    from repro.operators.match import MatchConfig, match

    source = _load_schema(args.source)
    target = _load_schema(args.target)
    correspondences = match(
        source, target, MatchConfig(top_k=args.top_k, threshold=args.threshold)
    )
    print(correspondences.describe())
    return 0


def cmd_modelgen(args) -> int:
    from repro.metamodels.serialization import mapping_to_dict
    from repro.operators.modelgen import InheritanceStrategy, modelgen

    strategy = InheritanceStrategy[args.strategy.upper()]
    result = modelgen(_load_schema(args.schema), args.metamodel, strategy)
    print(result.schema.describe())
    print()
    print(result.mapping.describe())
    if args.out:
        Path(args.out).write_text(
            json.dumps(mapping_to_dict(result.mapping), indent=2,
                       default=str)
        )
        print(f"\nmapping written to {args.out}")
    return 0


def cmd_exchange(args) -> int:
    from repro.instances.serialization import (
        dump_instance,
        instance_from_dict,
    )
    from repro.runtime.executor import exchange

    if args.shards is not None:
        # The exchange path resolves shard counts from the environment
        # (chase(shards=None) → REPRO_CHASE_SHARDS), so the flag just
        # seeds it for this process.
        os.environ["REPRO_CHASE_SHARDS"] = str(args.shards)
    mapping = _load_mapping(args.mapping)
    source = instance_from_dict(_load_json(args.data), mapping.source)
    result = exchange(mapping, source, compute_core=args.core)
    print(dump_instance(result))
    return 0


def cmd_sql(args) -> int:
    from repro.algebra.sql import to_sql
    from repro.operators.transgen import TransformationPair, transgen

    mapping = _load_mapping(args.mapping)
    views = transgen(mapping)
    if isinstance(views, TransformationPair):
        for relation, expr in views.query_view.rules:
            print(f"-- query view for {relation}")
            print(to_sql(expr))
            print()
    else:
        print("-- tgd mapping: executed by the chase, no view SQL")
        for tgd in mapping.tgds:
            print(f"-- {tgd}")
    return 0


def _run_script_observed(script: str, quiet: bool) -> None:
    """Execute ``script`` as ``__main__`` with observability enabled."""
    import contextlib
    import io
    import runpy

    import repro.observability as obs

    obs.reset()
    obs.enable()
    try:
        if quiet:
            with contextlib.redirect_stdout(io.StringIO()):
                runpy.run_path(script, run_name="__main__")
        else:
            runpy.run_path(script, run_name="__main__")
    finally:
        obs.disable()


def cmd_explain(args) -> int:
    from repro.instances.database import Instance
    from repro.instances.serialization import instance_from_dict
    from repro.runtime.query_processor import QueryProcessor

    mapping = _load_mapping(args.mapping)
    if args.data:
        source = instance_from_dict(_load_json(args.data), mapping.source)
    else:
        if args.analyze:
            print("error: --analyze needs --data DATA.json", file=sys.stderr)
            return 2
        source = Instance(schema=mapping.source)
    processor = QueryProcessor(mapping, source, engine=args.engine)

    from repro.algebra.expressions import Scan

    query = Scan(args.relation)
    if args.compare:
        # Heuristic and cost-based plans for the same query, stacked —
        # the cost headers make the chosen-vs-heuristic delta explicit.
        heuristic = processor.explain(query, no_opt=True)
        cost_based = processor.explain(query, no_opt=False)
        if args.json:
            print(json.dumps(
                {"heuristic": heuristic.to_dict(),
                 "cost_based": cost_based.to_dict()},
                indent=2, default=str,
            ))
        else:
            print(f"-- target query: {args.relation}")
            print("-- heuristic plan (--no-opt)")
            print(heuristic.render())
            print()
            print("-- cost-based plan")
            print(cost_based.render())
        return 0
    if args.analyze:
        result = processor.explain_analyze(query, no_opt=args.no_opt)
    else:
        result = processor.explain(query, no_opt=args.no_opt)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, default=str))
    else:
        print(f"-- target query: {args.relation}")
        print(result.render())
    return 0


def cmd_trace(args) -> int:
    from repro.observability import registry, tracer

    _run_script_observed(args.script, args.quiet)
    if not tracer.roots:
        print("(no spans recorded — does the script use the engine?)")
        return 1
    print(tracer.render(attributes=not args.no_attributes))
    if args.rollup:
        from repro.observability.profile import (
            render_critical_path,
            render_rollup,
        )

        print("\nself-time rollup:")
        print(render_rollup())
        print()
        print(render_critical_path())
    if args.out:
        path = tracer.export_jsonl(args.out)
        print(f"\n{tracer.span_count()} spans exported to {path}")
    if args.chrome:
        from repro.observability.profile import export_chrome_trace

        path = export_chrome_trace(args.chrome)
        print(f"Chrome trace written to {path} "
              "(load in Perfetto / chrome://tracing)")
    if args.metrics:
        print()
        print(registry.render())
    return 0


def cmd_bench(args) -> int:
    from repro.observability.benchdiff import diff_dirs, diff_files

    if args.action != "diff":
        print(f"unknown bench action {args.action!r}", file=sys.stderr)
        return 2
    if args.baseline and args.fresh:
        reports = [diff_files(args.baseline, args.fresh)]
    elif args.fresh_dir:
        reports = diff_dirs(args.baseline_dir, args.fresh_dir)
    else:
        print("error: pass --baseline FILE --fresh FILE, or --fresh-dir DIR",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        for report in reports:
            print(report.render(verbose=args.verbose))
    regressions = sum(len(r.regressions) for r in reports)
    return 1 if regressions else 0


def cmd_metrics(args) -> int:
    from repro.observability import registry

    _run_script_observed(args.script, args.quiet)
    fmt = "json" if args.json and args.format == "text" else args.format
    if fmt == "json":
        print(json.dumps(registry.snapshot(), indent=2, default=str))
    elif fmt == "prom":
        sys.stdout.write(registry.render_prometheus())
    else:
        print(registry.render())
    if args.out:
        path = registry.export_json(args.out)
        print(f"metrics written to {path}", file=sys.stderr)
    return 0


def cmd_stats(args) -> int:
    from repro.instances.serialization import instance_from_dict

    schema = _load_schema(args.schema) if args.schema else None
    instance = instance_from_dict(_load_json(args.data), schema)
    relations = (
        [args.relation] if args.relation else instance.relation_names()
    )
    stats = [instance.relation_stats(name) for name in relations]
    if args.json:
        print(json.dumps(
            {s.relation: s.to_dict() for s in stats}, indent=2, default=str
        ))
    else:
        print("\n\n".join(s.render() for s in stats))
    return 0


def cmd_querylog(args) -> int:
    from repro.observability.querylog import QUERY_LOG

    QUERY_LOG.configure(capacity=args.capacity, slow_ms=args.slow_ms)
    _run_script_observed(args.script, args.quiet)
    if args.json:
        print(QUERY_LOG.export_jsonl())
    else:
        print(QUERY_LOG.render(limit=args.limit, slow_only=args.slow))
        from repro.algebra.plan_cache import (
            plan_cache_stats,
            vector_plan_cache_stats,
        )

        for label, stats in (
            ("row", plan_cache_stats()),
            ("vector", vector_plan_cache_stats()),
        ):
            if not (stats["hits"] or stats["misses"] or stats["reopts"]):
                continue
            reasons = stats["evictions_by_reason"]
            print(
                f"plan cache [{label}]: "
                f"{stats['hits']} hits / {stats['misses']} misses, "
                f"evictions lru={reasons['lru']} "
                f"epoch={reasons['epoch']} reopt={reasons['reopt']}, "
                f"re-optimizations={stats['reopts']}"
            )
    if args.out:
        Path(args.out).write_text(QUERY_LOG.export_jsonl() + "\n")
        print(f"{len(QUERY_LOG)} entries written to {args.out}",
              file=sys.stderr)
    return 0


def cmd_journal(args) -> int:
    from repro.observability.journal import JOURNAL

    if args.capacity:
        JOURNAL.configure(capacity=args.capacity)
    _run_script_observed(args.script, args.quiet)
    if args.json:
        print(
            "\n".join(
                json.dumps(e.to_dict(), default=str)
                for e in JOURNAL.events(kind=args.kind)
            )
        )
    else:
        events = JOURNAL.events(kind=args.kind)
        if not events:
            print("(journal empty)")
        else:
            print("\n".join(e.render() for e in events[-args.limit:]))
    if args.out:
        path = JOURNAL.export_jsonl(args.out)
        print(f"{len(JOURNAL)} events written to {path}", file=sys.stderr)
    return 0


def _parse_thresholds(items) -> dict:
    """``key=value`` CLI threshold overrides → {key: float}.  Raises
    ``ValueError`` on malformed input (the caller exits 2)."""
    overrides = {}
    for item in items or []:
        if "=" not in item:
            raise ValueError(f"expected key=value, got {item!r}")
        key, value = item.split("=", 1)
        overrides[key.strip()] = float(value)
    return overrides


def cmd_health(args) -> int:
    from repro.observability.health import MONITOR, HealthConfig

    try:
        config = HealthConfig().with_overrides(
            _parse_thresholds(args.threshold)
        )
    except (KeyError, ValueError) as exc:
        print(f"error: bad --threshold: {exc}", file=sys.stderr)
        return 2
    if args.script:
        _run_script_observed(args.script, args.quiet)
    report = MONITOR.evaluate(config)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, default=str))
    else:
        print(report.render())
    return 0 if report.ok else 1


def cmd_top(args) -> int:
    import contextlib
    import io
    import runpy
    import threading
    import time

    import repro.observability as obs
    from repro.observability.health import MONITOR
    from repro.observability.top import render_top

    obs.reset()
    obs.enable()
    failures: list[BaseException] = []

    def run_script() -> None:
        try:
            with contextlib.redirect_stdout(io.StringIO()):
                runpy.run_path(args.script, run_name="__main__")
        except BaseException as exc:  # noqa: BLE001 - reported below
            failures.append(exc)

    try:
        if args.once:
            run_script()
            MONITOR.check()
            print(render_top())
        else:
            worker = threading.Thread(
                target=run_script, name="repro-top-script", daemon=True
            )
            worker.start()
            frames = 0
            while worker.is_alive() and (
                args.frames is None or frames < args.frames
            ):
                time.sleep(args.interval)
                MONITOR.check()
                frame = render_top()
                # Home + clear-to-end keeps the refresh flicker-free.
                sys.stdout.write("\x1b[H\x1b[J" + frame + "\n")
                sys.stdout.flush()
                frames += 1
            worker.join()
            MONITOR.check()
            print(render_top())
    finally:
        obs.disable()
    if failures:
        print(f"script failed: {failures[0]!r}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="generic model management engine "
        "(Bernstein & Melnik, SIGMOD 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("describe", help="print a schema report")
    p.add_argument("schema")
    p.set_defaults(func=cmd_describe)

    p = sub.add_parser("validate", help="check schema / instance")
    p.add_argument("schema")
    p.add_argument("--instance")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("ddl", help="emit SQL DDL for a relational schema")
    p.add_argument("schema")
    p.set_defaults(func=cmd_ddl)

    p = sub.add_parser("parse-ddl", help="import CREATE TABLE statements")
    p.add_argument("file")
    p.add_argument("--name")
    p.set_defaults(func=cmd_parse_ddl)

    p = sub.add_parser("dot", help="Graphviz DOT rendering of a schema")
    p.add_argument("schema")
    p.set_defaults(func=cmd_dot)

    p = sub.add_parser("match", help="propose correspondence candidates")
    p.add_argument("source")
    p.add_argument("target")
    p.add_argument("--top-k", type=int, default=3)
    p.add_argument("--threshold", type=float, default=0.25)
    p.set_defaults(func=cmd_match)

    p = sub.add_parser("modelgen", help="translate to another metamodel")
    p.add_argument("schema")
    p.add_argument("metamodel",
                   choices=["relational", "er", "oo", "nested"])
    p.add_argument("--strategy", default="TPT",
                   choices=["TPH", "TPT", "TPC"])
    p.add_argument("--out", help="write the mapping JSON here")
    p.set_defaults(func=cmd_modelgen)

    p = sub.add_parser("exchange", help="run a mapping over data")
    p.add_argument("mapping")
    p.add_argument("data")
    p.add_argument("--core", action="store_true",
                   help="minimize the result to its core")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="run the chase across N hash shards "
                        "(1 forces sequential; default: "
                        "REPRO_CHASE_SHARDS or sequential)")
    p.set_defaults(func=cmd_exchange)

    p = sub.add_parser("sql", help="print generated query-view SQL")
    p.add_argument("mapping")
    p.set_defaults(func=cmd_sql)

    p = sub.add_parser(
        "explain",
        help="annotated compiled plan for a target-relation query "
        "(EXPLAIN; --analyze executes and adds per-node stats)",
    )
    p.add_argument("mapping")
    p.add_argument("relation", help="target relation/entity to query")
    p.add_argument("--data", help="source instance JSON "
                   "(required with --analyze)")
    p.add_argument("--analyze", action="store_true",
                   help="run the plan and annotate per-node rows/time")
    p.add_argument("--engine",
                   choices=["vectorized", "compiled", "interpreted"],
                   default=None,
                   help="which engine to explain (interpreted shows the "
                   "row compiler's view of the query; default: the "
                   "process default engine)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable plan/profile instead of the tree")
    p.add_argument("--no-opt", action="store_true", dest="no_opt",
                   help="skip the cost-based join-order phase and show "
                   "the heuristic plan")
    p.add_argument("--compare", action="store_true",
                   help="print the heuristic and cost-based plans for "
                   "the same query, with their estimated costs")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("trace",
                       help="run a script under tracing, print span tree")
    p.add_argument("script", help="Python script executed as __main__")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the script's own stdout")
    p.add_argument("--out", help="export spans as JSONL here")
    p.add_argument("--chrome",
                   help="export a Chrome/Perfetto trace JSON here")
    p.add_argument("--rollup", action="store_true",
                   help="print self-time rollup and critical path")
    p.add_argument("--metrics", action="store_true",
                   help="also print the metrics registry")
    p.add_argument("--no-attributes", action="store_true",
                   help="omit span attributes from the tree")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "bench",
        help="benchmark utilities: `bench diff` compares emitted "
        "BENCH_*.json against committed baselines",
    )
    p.add_argument("action", choices=["diff"])
    p.add_argument("--baseline", help="one baseline BENCH json")
    p.add_argument("--fresh", help="one freshly emitted BENCH json")
    p.add_argument("--fresh-dir", help="directory of fresh BENCH_*.json")
    p.add_argument("--baseline-dir", default=".",
                   help="committed baselines (default: cwd)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable findings")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="also list unchanged metrics")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("metrics",
                       help="run a script, print collected engine metrics")
    p.add_argument("script", help="Python script executed as __main__")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the script's own stdout")
    p.add_argument("--json", action="store_true",
                   help="print a JSON snapshot instead of the summary "
                   "(same as --format json)")
    p.add_argument("--format", choices=["text", "json", "prom"],
                   default="text",
                   help="output format (prom: Prometheus text exposition)")
    p.add_argument("--out", help="also write the JSON snapshot here")
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser(
        "stats",
        help="per-relation statistics of an instance (the cardinality "
        "estimator's inputs)",
    )
    p.add_argument("data", help="instance JSON")
    p.add_argument("--schema", help="schema JSON to bind while loading")
    p.add_argument("--relation", help="only this relation")
    p.add_argument("--json", action="store_true",
                   help="machine-readable statistics")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "querylog",
        help="run a script with observability on, print the "
        "plan-fingerprinted query log",
    )
    p.add_argument("script", help="Python script executed as __main__")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the script's own stdout")
    p.add_argument("--limit", type=int, default=20,
                   help="newest entries to show (default 20)")
    p.add_argument("--slow", action="store_true",
                   help="only entries over the slow threshold")
    p.add_argument("--slow-ms", type=float, default=None,
                   help="slow-query threshold in ms (default 100)")
    p.add_argument("--capacity", type=int, default=None,
                   help="ring-buffer capacity (default 256)")
    p.add_argument("--json", action="store_true",
                   help="print entries as JSON Lines")
    p.add_argument("--out", help="also export entries as JSONL here")
    p.set_defaults(func=cmd_querylog)

    p = sub.add_parser(
        "journal",
        help="run a script with observability on, print the engine "
        "event journal",
    )
    p.add_argument("script", help="Python script executed as __main__")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the script's own stdout")
    p.add_argument("--limit", type=int, default=50,
                   help="newest events to show (default 50)")
    p.add_argument("--kind", default=None,
                   help="only events of this kind (exact or dotted "
                   "prefix)")
    p.add_argument("--capacity", type=int, default=None,
                   help="ring capacity (default 512)")
    p.add_argument("--json", action="store_true",
                   help="print events as JSON Lines")
    p.add_argument("--out", help="also export events as JSONL here")
    p.set_defaults(func=cmd_journal)

    p = sub.add_parser(
        "health",
        help="evaluate SLO health signals; exit 1 on any breach "
        "(CI-friendly)",
    )
    p.add_argument("script", nargs="?", default=None,
                   help="optional script to run under observability "
                   "before evaluating")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the script's own stdout")
    p.add_argument("--threshold", action="append", metavar="KEY=VALUE",
                   help="override a threshold / min-sample knob "
                   "(repeatable); keys: shard_imbalance_max, "
                   "backpressure_ms_max, cache_eviction_rate_max, "
                   "divergence_rate_max, slow_query_rate_max, "
                   "min_shard_rounds, min_cache_lookups, "
                   "min_query_samples")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report")
    p.set_defaults(func=cmd_health)

    p = sub.add_parser(
        "top",
        help="run a script while rendering a live telemetry dashboard",
    )
    p.add_argument("script", help="Python script executed as __main__")
    p.add_argument("--interval", type=float, default=1.0,
                   help="seconds between frames (default 1.0)")
    p.add_argument("--frames", type=int, default=None,
                   help="stop after N live frames (default: until the "
                   "script finishes)")
    p.add_argument("--once", action="store_true",
                   help="run the script to completion, then print one "
                   "frame")
    p.set_defaults(func=cmd_top)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ModelManagementError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
