"""Fluent construction of universal-metamodel schemas.

The builder keeps examples and tests terse::

    schema = (
        SchemaBuilder("HRDB", metamodel="relational")
        .entity("HR", key=["Id"])
            .attribute("Id", INT)
            .attribute("Name", STRING)
        .entity("Empl", key=["Id"])
            .attribute("Id", INT)
            .attribute("Dept", STRING)
        .foreign_key("Empl", ["Id"], "HR", ["Id"])
        .build()
    )
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import SchemaError
from repro.metamodel.constraints import (
    Covering,
    Disjointness,
    InclusionDependency,
    KeyConstraint,
    NotNull,
)
from repro.metamodel.elements import (
    Association,
    AssociationEnd,
    Attribute,
    Cardinality,
    Containment,
    Entity,
    MANY,
    Reference,
    ZERO_OR_ONE,
)
from repro.metamodel.schema import Schema
from repro.metamodel.types import DataType


class SchemaBuilder:
    """Incrementally assemble a :class:`~repro.metamodel.schema.Schema`."""

    def __init__(self, name: str, metamodel: str = "universal"):
        self._schema = Schema(name, metamodel)
        self._current: Optional[Entity] = None
        self._pending_parents: dict[str, str] = {}

    # ------------------------------------------------------------------
    def entity(
        self,
        name: str,
        key: Sequence[str] = (),
        parent: Optional[str] = None,
        abstract: bool = False,
    ) -> "SchemaBuilder":
        """Start a new entity; subsequent :meth:`attribute` calls attach
        to it.  ``parent`` may name an entity defined later."""
        entity = Entity(name, is_abstract=abstract)
        entity.key = tuple(key)
        self._schema.add_entity(entity)
        if parent is not None:
            self._pending_parents[name] = parent
        self._current = entity
        return self

    def attribute(
        self,
        name: str,
        data_type: DataType,
        nullable: bool = False,
        default: object = None,
    ) -> "SchemaBuilder":
        if self._current is None:
            raise SchemaError("attribute() before any entity()")
        self._current.add_attribute(Attribute(name, data_type, nullable, default))
        return self

    def association(
        self,
        name: str,
        source: str,
        target: str,
        source_cardinality: Cardinality = MANY,
        target_cardinality: Cardinality = MANY,
        source_role: Optional[str] = None,
        target_role: Optional[str] = None,
    ) -> "SchemaBuilder":
        self._schema.add_association(
            Association(
                name,
                AssociationEnd(
                    source_role or source, self._schema.entity(source),
                    source_cardinality,
                ),
                AssociationEnd(
                    target_role or target, self._schema.entity(target),
                    target_cardinality,
                ),
            )
        )
        return self

    def containment(
        self,
        parent: str,
        child: str,
        cardinality: Cardinality = MANY,
        name: Optional[str] = None,
    ) -> "SchemaBuilder":
        self._schema.add_containment(
            Containment(
                name or f"{parent}_{child}",
                self._schema.entity(parent),
                self._schema.entity(child),
                cardinality,
            )
        )
        return self

    def reference(
        self,
        owner: str,
        name: str,
        target: str,
        via: Sequence[str] = (),
        cardinality: Cardinality = ZERO_OR_ONE,
    ) -> "SchemaBuilder":
        self._schema.add_reference(
            Reference(
                name,
                self._schema.entity(owner),
                self._schema.entity(target),
                tuple(via),
                cardinality,
            )
        )
        return self

    # ------------------------------------------------------------------
    # constraints
    # ------------------------------------------------------------------
    def foreign_key(
        self,
        source: str,
        source_attributes: Sequence[str],
        target: str,
        target_attributes: Sequence[str],
    ) -> "SchemaBuilder":
        self._schema.add_constraint(
            InclusionDependency(
                source, tuple(source_attributes), target, tuple(target_attributes)
            )
        )
        return self

    def unique(self, entity: str, attributes: Sequence[str]) -> "SchemaBuilder":
        self._schema.add_constraint(
            KeyConstraint(entity, tuple(attributes), is_primary=False)
        )
        return self

    def disjoint(self, *entities: str) -> "SchemaBuilder":
        self._schema.add_constraint(Disjointness(tuple(entities)))
        return self

    def covering(self, entity: str, *covered_by: str) -> "SchemaBuilder":
        self._schema.add_constraint(Covering(entity, tuple(covered_by)))
        return self

    def not_null(self, entity: str, attribute: str) -> "SchemaBuilder":
        self._schema.add_constraint(NotNull(entity, attribute))
        return self

    # ------------------------------------------------------------------
    def build(self) -> Schema:
        """Resolve deferred parents, register primary keys as
        constraints, check metamodel conformance, and return the schema."""
        for child_name, parent_name in self._pending_parents.items():
            child = self._schema.entity(child_name)
            child.parent = self._schema.entity(parent_name)
        for entity in self._schema.entities.values():
            list(entity.ancestry())  # raises on cycles
            if entity.key:
                for key_attr in entity.key:
                    entity.attribute(key_attr)  # raises if dangling
                self._schema.add_constraint(
                    KeyConstraint(entity.name, entity.key, is_primary=True)
                )
        self._schema.check_metamodel()
        return self._schema
