"""The :class:`Schema` container and element paths.

A schema is "an expression that defines a set of possible instances"
(paper, Section 2).  Here the expression is the collection of entities,
associations, containments, references and integrity constraints; the
set of possible instances is checked by
:mod:`repro.instances.validation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.errors import SchemaError
from repro.metamodel.constraints import (
    Constraint,
    Covering,
    Disjointness,
    InclusionDependency,
    KeyConstraint,
    NotNull,
)
from repro.metamodel.elements import (
    Association,
    Attribute,
    Containment,
    Element,
    Entity,
    Reference,
)


@dataclass(frozen=True)
class ElementPath:
    """A dotted path naming an element within a schema.

    ``"Person"`` names an entity, ``"Person.Name"`` one of its
    attributes.  Correspondences (:mod:`repro.mappings.correspondence`)
    are pairs of these.
    """

    schema: str
    path: str

    def __str__(self) -> str:
        return f"{self.schema}::{self.path}"

    @property
    def entity(self) -> str:
        return self.path.split(".", 1)[0]

    @property
    def attribute(self) -> Optional[str]:
        parts = self.path.split(".", 1)
        return parts[1] if len(parts) == 2 else None

    @property
    def is_entity(self) -> bool:
        return self.attribute is None


class Schema:
    """A named collection of elements in a given metamodel.

    ``metamodel`` is a tag (``"universal"``, ``"relational"``, ``"er"``,
    ``"nested"``, ``"oo"``) recording which construct subset the schema
    is allowed to use; :meth:`check_metamodel` enforces it and ModelGen
    uses it to pick elimination rules.
    """

    #: Constructs permitted per concrete metamodel.  The universal
    #: metamodel permits everything.
    METAMODEL_CONSTRUCTS: dict[str, frozenset[str]] = {
        "universal": frozenset(
            {"entity", "attribute", "association", "containment",
             "reference", "generalization"}
        ),
        "relational": frozenset({"entity", "attribute"}),
        "er": frozenset({"entity", "attribute", "association", "generalization"}),
        "nested": frozenset({"entity", "attribute", "containment"}),
        "oo": frozenset({"entity", "attribute", "reference", "generalization"}),
    }

    def __init__(self, name: str, metamodel: str = "universal"):
        if metamodel not in self.METAMODEL_CONSTRUCTS:
            raise SchemaError(f"unknown metamodel {metamodel!r}")
        self.name = name
        self.metamodel = metamodel
        self.entities: dict[str, Entity] = {}
        self.associations: dict[str, Association] = {}
        self.containments: dict[str, Containment] = {}
        self.references: dict[str, Reference] = {}
        self.constraints: list[Constraint] = []
        self.documentation: str = ""

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_entity(self, entity: Entity) -> Entity:
        if entity.name in self.entities:
            raise SchemaError(f"duplicate entity {entity.name!r} in {self.name!r}")
        entity.schema = self
        self.entities[entity.name] = entity
        return entity

    def add_association(self, association: Association) -> Association:
        if association.name in self.associations:
            raise SchemaError(f"duplicate association {association.name!r}")
        self.associations[association.name] = association
        return association

    def add_containment(self, containment: Containment) -> Containment:
        if containment.name in self.containments:
            raise SchemaError(f"duplicate containment {containment.name!r}")
        self.containments[containment.name] = containment
        return containment

    def add_reference(self, reference: Reference) -> Reference:
        if reference.path in self.references:
            raise SchemaError(f"duplicate reference {reference.path!r}")
        self.references[reference.path] = reference
        return reference

    def add_constraint(self, constraint: Constraint) -> Constraint:
        if constraint not in self.constraints:
            self.constraints.append(constraint)
        return constraint

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def entity(self, name: str) -> Entity:
        try:
            return self.entities[name]
        except KeyError:
            raise SchemaError(f"schema {self.name!r} has no entity {name!r}") from None

    def resolve(self, path: str) -> Element:
        """Resolve a dotted path to an entity or attribute element."""
        parts = path.split(".")
        entity = self.entity(parts[0])
        if len(parts) == 1:
            return entity
        if len(parts) == 2:
            return entity.attribute(parts[1])
        raise SchemaError(f"cannot resolve path {path!r}")

    def element_path(self, path: str) -> ElementPath:
        self.resolve(path)  # raises if invalid
        return ElementPath(self.name, path)

    def all_element_paths(self) -> list[ElementPath]:
        """All entity and attribute paths, entities first — the match
        operator iterates these."""
        paths: list[ElementPath] = []
        for entity in self.entities.values():
            paths.append(ElementPath(self.name, entity.name))
        for entity in self.entities.values():
            for attr in entity.attributes:
                paths.append(ElementPath(self.name, f"{entity.name}.{attr.name}"))
        return paths

    def root_entities(self) -> list[Entity]:
        return [e for e in self.entities.values() if e.parent is None]

    def keys_of(self, entity_name: str) -> list[KeyConstraint]:
        return [
            c
            for c in self.constraints
            if isinstance(c, KeyConstraint) and c.entity == entity_name
        ]

    def inclusion_dependencies(self) -> list[InclusionDependency]:
        return [c for c in self.constraints if isinstance(c, InclusionDependency)]

    def foreign_keys_of(self, entity_name: str) -> list[InclusionDependency]:
        return [
            c for c in self.inclusion_dependencies() if c.source == entity_name
        ]

    # ------------------------------------------------------------------
    # metamodel conformance
    # ------------------------------------------------------------------
    def constructs_used(self) -> set[str]:
        used = set()
        if self.entities:
            used.add("entity")
        if any(e.attributes for e in self.entities.values()):
            used.add("attribute")
        if any(e.parent is not None for e in self.entities.values()):
            used.add("generalization")
        if self.associations:
            used.add("association")
        if self.containments:
            used.add("containment")
        if self.references:
            used.add("reference")
        return used

    def check_metamodel(self) -> None:
        """Raise :class:`SchemaError` if the schema uses constructs its
        declared metamodel does not support."""
        allowed = self.METAMODEL_CONSTRUCTS[self.metamodel]
        illegal = self.constructs_used() - allowed
        if illegal:
            raise SchemaError(
                f"schema {self.name!r} ({self.metamodel}) uses unsupported "
                f"constructs: {sorted(illegal)}"
            )

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def clone(self, name: Optional[str] = None) -> "Schema":
        """Deep-copy the schema (shared nothing with the original)."""
        copy = Schema(name or self.name, self.metamodel)
        copy.documentation = self.documentation
        for entity in self.entities.values():
            copy.add_entity(entity.clone())
        for entity in self.entities.values():
            if entity.parent is not None:
                copy.entities[entity.name].parent = copy.entities[entity.parent.name]
        for assoc in self.associations.values():
            from repro.metamodel.elements import AssociationEnd

            copy.add_association(
                Association(
                    assoc.name,
                    AssociationEnd(
                        assoc.source.role,
                        copy.entities[assoc.source.entity.name],
                        assoc.source.cardinality,
                    ),
                    AssociationEnd(
                        assoc.target.role,
                        copy.entities[assoc.target.entity.name],
                        assoc.target.cardinality,
                    ),
                )
            )
        for cont in self.containments.values():
            copy.add_containment(
                Containment(
                    cont.name,
                    copy.entities[cont.parent.name],
                    copy.entities[cont.child.name],
                    cont.cardinality,
                )
            )
        for ref in self.references.values():
            copy.add_reference(
                Reference(
                    ref.name,
                    copy.entities[ref.owner.name],
                    copy.entities[ref.target.name],
                    ref.via_attributes,
                    ref.cardinality,
                )
            )
        copy.constraints = list(self.constraints)
        return copy

    def describe(self) -> str:
        """A human-readable one-schema report (used by examples/tools)."""
        lines = [f"schema {self.name} [{self.metamodel}]"]
        for entity in self.entities.values():
            flags = []
            if entity.parent is not None:
                flags.append(f"is-a {entity.parent.name}")
            if entity.is_abstract:
                flags.append("abstract")
            suffix = f"  ({', '.join(flags)})" if flags else ""
            lines.append(f"  entity {entity.name}{suffix}")
            for attr in entity.attributes:
                null = "?" if attr.nullable else ""
                key_mark = "*" if attr.name in entity.key else ""
                lines.append(f"    {key_mark}{attr.name}{null}: {attr.data_type}")
        for assoc in self.associations.values():
            lines.append(
                f"  association {assoc.name}: "
                f"{assoc.source.entity.name}[{assoc.source.cardinality}] -- "
                f"{assoc.target.entity.name}[{assoc.target.cardinality}]"
            )
        for cont in self.containments.values():
            lines.append(
                f"  containment {cont.name}: {cont.parent.name} contains "
                f"{cont.child.name}[{cont.cardinality}]"
            )
        for ref in self.references.values():
            lines.append(
                f"  reference {ref.path} -> {ref.target.name}"
            )
        for constraint in self.constraints:
            lines.append(f"  constraint {constraint.describe()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Schema {self.name} [{self.metamodel}] {len(self.entities)} entities>"

    def __contains__(self, path: str) -> bool:
        try:
            self.resolve(path)
        except SchemaError:
            return False
        return True

    def __iter__(self) -> Iterator[Entity]:
        return iter(self.entities.values())
