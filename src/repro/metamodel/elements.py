"""Schema elements of the universal metamodel.

The element kinds cover the constructs of the popular metamodels the
paper requires (Section 2): SQL tables, ER entity types with is-a
hierarchies, XSD complex types with containment (nesting), and OO
classes with references.  Following Atzeni & Torlone's "supermodel"
idea (cited in Section 3.2), each concrete metamodel uses a subset of
these constructs, and ModelGen works by eliminating the constructs a
target metamodel lacks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional, TYPE_CHECKING

from repro.errors import SchemaError
from repro.metamodel.types import DataType

if TYPE_CHECKING:
    from repro.metamodel.schema import Schema


class ElementKind(enum.Enum):
    """Discriminator for the universal metamodel's constructs."""

    ENTITY = "entity"
    ATTRIBUTE = "attribute"
    ASSOCIATION = "association"
    CONTAINMENT = "containment"
    REFERENCE = "reference"
    GENERALIZATION = "generalization"


@dataclass(frozen=True)
class Cardinality:
    """A (min, max) multiplicity; ``max=None`` means unbounded (``*``)."""

    min: int = 0
    max: Optional[int] = 1

    def __str__(self) -> str:
        upper = "*" if self.max is None else str(self.max)
        return f"{self.min}..{upper}"

    @property
    def is_many(self) -> bool:
        return self.max is None or self.max > 1

    @property
    def is_required(self) -> bool:
        return self.min >= 1


ONE = Cardinality(1, 1)
ZERO_OR_ONE = Cardinality(0, 1)
MANY = Cardinality(0, None)
ONE_OR_MORE = Cardinality(1, None)


class Element:
    """Common behaviour of named schema elements.

    Elements are identified within a schema by their *path* (e.g.
    ``"Person.Name"`` for an attribute); identity is by path within the
    owning schema, so elements are hashable and comparable without
    dragging in the whole object graph.
    """

    kind: ElementKind

    def __init__(self, name: str):
        if not name:
            raise SchemaError("element name must be non-empty")
        self.name = name
        self.documentation: str = ""
        self.annotations: dict[str, object] = {}

    @property
    def path(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.path}>"


class Attribute(Element):
    """A typed, possibly nullable attribute of an entity.

    SQL column, ER attribute, XSD simple element/attribute, OO field —
    all map to this construct.
    """

    kind = ElementKind.ATTRIBUTE

    def __init__(
        self,
        name: str,
        data_type: DataType,
        nullable: bool = False,
        default: object = None,
    ):
        super().__init__(name)
        self.data_type = data_type
        self.nullable = nullable
        self.default = default
        self.owner: Optional[Entity] = None

    @property
    def path(self) -> str:
        if self.owner is None:
            return self.name
        return f"{self.owner.path}.{self.name}"

    def clone(self) -> "Attribute":
        copy = Attribute(self.name, self.data_type, self.nullable, self.default)
        copy.documentation = self.documentation
        copy.annotations = dict(self.annotations)
        return copy


class Entity(Element):
    """A structured type with attributes: table, entity type, complex
    type or class, depending on the metamodel.

    ``parent`` implements is-a generalization (single inheritance, as in
    the paper's Figure 2 hierarchy); ``is_abstract`` marks entities that
    may not have direct instances.
    """

    kind = ElementKind.ENTITY

    def __init__(self, name: str, is_abstract: bool = False):
        super().__init__(name)
        self.attributes: list[Attribute] = []
        self.parent: Optional[Entity] = None
        self.is_abstract = is_abstract
        self.key: tuple[str, ...] = ()
        self.schema: Optional["Schema"] = None

    def add_attribute(self, attribute: Attribute) -> Attribute:
        if any(a.name == attribute.name for a in self.attributes):
            raise SchemaError(
                f"duplicate attribute {attribute.name!r} on entity {self.name!r}"
            )
        attribute.owner = self
        self.attributes.append(attribute)
        return attribute

    def attribute(self, name: str) -> Attribute:
        """The attribute named ``name``, searching inherited attributes too."""
        for entity in self.ancestry():
            for attr in entity.attributes:
                if attr.name == name:
                    return attr
        raise SchemaError(f"entity {self.name!r} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        try:
            self.attribute(name)
        except SchemaError:
            return False
        return True

    def own_attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def all_attributes(self) -> list[Attribute]:
        """Own and inherited attributes, root-most first."""
        result: list[Attribute] = []
        for entity in reversed(list(self.ancestry())):
            result.extend(entity.attributes)
        return result

    def all_attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.all_attributes())

    def ancestry(self) -> Iterator["Entity"]:
        """This entity, then its parent, up to the root."""
        current: Optional[Entity] = self
        seen: set[int] = set()
        while current is not None:
            if id(current) in seen:
                raise SchemaError(f"inheritance cycle at entity {current.name!r}")
            seen.add(id(current))
            yield current
            current = current.parent

    def root(self) -> "Entity":
        *_, last = self.ancestry()
        return last

    def is_subtype_of(self, other: "Entity") -> bool:
        """Reflexive subtype test along the is-a chain."""
        return any(e.name == other.name for e in self.ancestry())

    def children(self) -> list["Entity"]:
        """Direct subtypes within the owning schema."""
        if self.schema is None:
            return []
        return [
            e
            for e in self.schema.entities.values()
            if e.parent is not None and e.parent.name == self.name
        ]

    def descendants(self) -> list["Entity"]:
        """All strict subtypes, breadth-first."""
        result: list[Entity] = []
        frontier = self.children()
        while frontier:
            result.extend(frontier)
            frontier = [c for e in frontier for c in e.children()]
        return result

    def key_attributes(self) -> tuple[Attribute, ...]:
        root = self.root()
        return tuple(root.attribute(k) for k in root.key)

    def clone(self) -> "Entity":
        copy = Entity(self.name, self.is_abstract)
        copy.key = self.key
        copy.documentation = self.documentation
        copy.annotations = dict(self.annotations)
        for attr in self.attributes:
            copy.add_attribute(attr.clone())
        return copy


class AssociationEnd:
    """One end of an association: a role played by an entity."""

    def __init__(self, role: str, entity: Entity, cardinality: Cardinality = MANY):
        self.role = role
        self.entity = entity
        self.cardinality = cardinality

    def __repr__(self) -> str:
        return f"<End {self.role}:{self.entity.name}[{self.cardinality}]>"


class Association(Element):
    """A relationship between two entities (ER relationship, UML
    association).  ModelGen eliminates many-to-many associations into
    join tables when targeting the relational metamodel."""

    kind = ElementKind.ASSOCIATION

    def __init__(self, name: str, source: AssociationEnd, target: AssociationEnd):
        super().__init__(name)
        self.source = source
        self.target = target
        self.attributes: list[Attribute] = []

    @property
    def is_many_to_many(self) -> bool:
        return self.source.cardinality.is_many and self.target.cardinality.is_many

    def ends(self) -> tuple[AssociationEnd, AssociationEnd]:
        return (self.source, self.target)


class Containment(Element):
    """Parent-child nesting: XSD complex content, nested collections in
    OO.  Absent from the relational metamodel, so ModelGen flattens it
    by introducing keys and inclusion dependencies."""

    kind = ElementKind.CONTAINMENT

    def __init__(
        self,
        name: str,
        parent: Entity,
        child: Entity,
        cardinality: Cardinality = MANY,
    ):
        super().__init__(name)
        self.parent = parent
        self.child = child
        self.cardinality = cardinality


class Reference(Element):
    """A typed pointer attribute: OO object reference or SQL foreign key
    viewed as a navigable construct."""

    kind = ElementKind.REFERENCE

    def __init__(
        self,
        name: str,
        owner: Entity,
        target: Entity,
        via_attributes: tuple[str, ...] = (),
        cardinality: Cardinality = ZERO_OR_ONE,
    ):
        super().__init__(name)
        self.owner = owner
        self.target = target
        self.via_attributes = via_attributes
        self.cardinality = cardinality

    @property
    def path(self) -> str:
        return f"{self.owner.name}.{self.name}"
