"""Integrity constraints of the universal metamodel.

Section 2 of the paper calls the common integrity-constraint language a
design challenge of its own: it must cover the constraints of popular
metamodels, yet remain simple enough to reason about across mappings
(the runtime's cross-schema integrity service,
:mod:`repro.runtime.integrity`, does that reasoning).

The constraint kinds here cover what the supported metamodels need:

* :class:`KeyConstraint` — SQL primary/unique keys, ER keys, XSD keys;
* :class:`InclusionDependency` — foreign keys and, more generally, the
  containment of one projection in another;
* :class:`Disjointness` / :class:`Covering` — is-a hierarchy
  constraints (the paper's Section 5 example of a constraint that is
  *not* expressible relationally after a TPT mapping);
* :class:`NotNull` — attribute-level totality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Constraint:
    """Base class; subclasses are frozen dataclasses keyed by content."""

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class KeyConstraint(Constraint):
    """The attributes ``attributes`` uniquely identify tuples of ``entity``."""

    entity: str
    attributes: tuple[str, ...]
    is_primary: bool = True

    def describe(self) -> str:
        kind = "key" if self.is_primary else "unique"
        return f"{kind} {self.entity}({', '.join(self.attributes)})"


@dataclass(frozen=True)
class InclusionDependency(Constraint):
    """``π(source_attributes)(source) ⊆ π(target_attributes)(target)``.

    With ``target_attributes`` a key of ``target`` this is a foreign key.
    """

    source: str
    source_attributes: tuple[str, ...]
    target: str
    target_attributes: tuple[str, ...]

    def describe(self) -> str:
        return (
            f"{self.source}[{', '.join(self.source_attributes)}] ⊆ "
            f"{self.target}[{', '.join(self.target_attributes)}]"
        )


@dataclass(frozen=True)
class Disjointness(Constraint):
    """No instance belongs to more than one of ``entities`` (sibling
    subtypes in an is-a hierarchy, typically)."""

    entities: tuple[str, ...]

    def describe(self) -> str:
        return f"disjoint({', '.join(self.entities)})"


@dataclass(frozen=True)
class Covering(Constraint):
    """Every instance of ``entity`` belongs to at least one of
    ``covered_by`` (total specialization)."""

    entity: str
    covered_by: tuple[str, ...]

    def describe(self) -> str:
        return f"{self.entity} covered by ({', '.join(self.covered_by)})"


@dataclass(frozen=True)
class NotNull(Constraint):
    """``entity.attribute`` admits no nulls."""

    entity: str
    attribute: str

    def describe(self) -> str:
        return f"not null {self.entity}.{self.attribute}"


def foreign_key(
    source: str,
    source_attributes: Sequence[str],
    target: str,
    target_attributes: Sequence[str],
) -> InclusionDependency:
    """Convenience constructor for the FK-shaped inclusion dependency."""
    return InclusionDependency(
        source=source,
        source_attributes=tuple(source_attributes),
        target=target,
        target_attributes=tuple(target_attributes),
    )
