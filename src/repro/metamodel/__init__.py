"""Universal metamodel.

The paper (Section 2) argues a generic model management system needs "a
basis set of data type constructs that are common to many metamodels".
This package provides that basis set: a schema is a collection of
:class:`~repro.metamodel.elements.Entity` elements (which subsume SQL
tables, ER entity types, XML complex types and OO classes), their
:class:`~repro.metamodel.elements.Attribute` s, is-a generalizations,
associations, containments (nesting) and references, plus integrity
constraints (keys, inclusion dependencies, disjointness, covering).

Concrete metamodels (:mod:`repro.metamodels`) import/export to this
representation; the model management operators manipulate it directly.
"""

from repro.metamodel.types import (
    DataType,
    PrimitiveType,
    ParametricType,
    BOOL,
    INT,
    BIGINT,
    FLOAT,
    DECIMAL,
    STRING,
    TEXT,
    DATE,
    DATETIME,
    BINARY,
    ANY,
    varchar,
    decimal_type,
    common_supertype,
    type_compatibility,
)
from repro.metamodel.elements import (
    Element,
    Attribute,
    Entity,
    Association,
    AssociationEnd,
    Containment,
    Reference,
    Cardinality,
    ElementKind,
)
from repro.metamodel.schema import Schema, ElementPath
from repro.metamodel.constraints import (
    Constraint,
    KeyConstraint,
    InclusionDependency,
    Disjointness,
    Covering,
    NotNull,
)
from repro.metamodel.builder import SchemaBuilder
from repro.metamodel.validation import schema_violations, validate_schema

__all__ = [
    "DataType",
    "PrimitiveType",
    "ParametricType",
    "BOOL",
    "INT",
    "BIGINT",
    "FLOAT",
    "DECIMAL",
    "STRING",
    "TEXT",
    "DATE",
    "DATETIME",
    "BINARY",
    "ANY",
    "varchar",
    "decimal_type",
    "common_supertype",
    "type_compatibility",
    "Element",
    "Attribute",
    "Entity",
    "Association",
    "AssociationEnd",
    "Containment",
    "Reference",
    "Cardinality",
    "ElementKind",
    "Schema",
    "ElementPath",
    "Constraint",
    "KeyConstraint",
    "InclusionDependency",
    "Disjointness",
    "Covering",
    "NotNull",
    "SchemaBuilder",
    "schema_violations",
    "validate_schema",
]
