"""Type system for the universal metamodel.

A small lattice of primitive types shared by all supported metamodels
(SQL, ER, XSD-subset, OO), with parametric refinements (``varchar(n)``,
``decimal(p, s)``).  The lattice supports:

* *assignability* — can a value of type ``t`` be stored in a slot of
  type ``u`` without loss (used by instance validation and TransGen);
* *common supertype* — the join in the lattice (used by Merge when two
  corresponding attributes disagree on type);
* *compatibility scoring* — a similarity in ``[0, 1]`` (used by the
  datatype matcher in :mod:`repro.operators.match.datatype`).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional


@dataclass(frozen=True)
class DataType:
    """Base class for all universal-metamodel types."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PrimitiveType(DataType):
    """An unparameterized primitive type such as ``int`` or ``string``.

    ``widens_to`` names the primitive this one can be losslessly widened
    to (e.g. ``int`` widens to ``bigint``); it induces the subtyping
    chain used by :func:`is_assignable`.
    """

    widens_to: Optional[str] = None


@dataclass(frozen=True)
class ParametricType(DataType):
    """A primitive refined by size parameters, e.g. ``varchar(30)``.

    ``base`` is the underlying primitive's name; ``params`` are the
    integer parameters in declaration order.
    """

    base: str = ""
    params: tuple[int, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        inner = ", ".join(str(p) for p in self.params)
        return f"{self.base}({inner})"


BOOL = PrimitiveType("bool", widens_to="int")
INT = PrimitiveType("int", widens_to="bigint")
BIGINT = PrimitiveType("bigint", widens_to="decimal")
DECIMAL = PrimitiveType("decimal", widens_to="float")
FLOAT = PrimitiveType("float")
STRING = PrimitiveType("string", widens_to="text")
TEXT = PrimitiveType("text")
DATE = PrimitiveType("date", widens_to="datetime")
DATETIME = PrimitiveType("datetime")
BINARY = PrimitiveType("binary")
ANY = PrimitiveType("any")

_PRIMITIVES: dict[str, PrimitiveType] = {
    t.name: t
    for t in (
        BOOL,
        INT,
        BIGINT,
        DECIMAL,
        FLOAT,
        STRING,
        TEXT,
        DATE,
        DATETIME,
        BINARY,
        ANY,
    )
}

#: Type families used for compatibility scoring: types in the same family
#: are closely convertible, across families only via explicit functions.
_FAMILIES: dict[str, str] = {
    "bool": "numeric",
    "int": "numeric",
    "bigint": "numeric",
    "decimal": "numeric",
    "float": "numeric",
    "string": "textual",
    "text": "textual",
    "date": "temporal",
    "datetime": "temporal",
    "binary": "binary",
    "any": "any",
}

_PYTHON_REPRESENTATIONS: dict[str, tuple[type, ...]] = {
    "bool": (bool,),
    "int": (int,),
    "bigint": (int,),
    "decimal": (int, float, Fraction),
    "float": (int, float),
    "string": (str,),
    "text": (str,),
    "date": (datetime.date,),
    "datetime": (datetime.date, datetime.datetime),
    "binary": (bytes,),
}


def primitive(name: str) -> PrimitiveType:
    """Look up a primitive type by name, raising ``KeyError`` if unknown."""
    return _PRIMITIVES[name]


def varchar(length: int) -> ParametricType:
    """A length-limited string type, ``varchar(length)``."""
    return ParametricType(name=f"varchar({length})", base="string", params=(length,))


def decimal_type(precision: int, scale: int = 0) -> ParametricType:
    """A fixed-point numeric, ``decimal(precision, scale)``."""
    return ParametricType(
        name=f"decimal({precision},{scale})", base="decimal", params=(precision, scale)
    )


def base_primitive(t: DataType) -> PrimitiveType:
    """Strip parameters: the primitive underlying ``t``."""
    if isinstance(t, ParametricType):
        return _PRIMITIVES[t.base]
    if isinstance(t, PrimitiveType):
        return t
    raise TypeError(f"not a universal-metamodel type: {t!r}")


def _widening_chain(t: PrimitiveType) -> list[str]:
    chain = [t.name]
    current = t
    while current.widens_to is not None:
        chain.append(current.widens_to)
        current = _PRIMITIVES[current.widens_to]
    return chain


def is_assignable(source: DataType, target: DataType) -> bool:
    """True if any value of ``source`` can be stored as ``target`` losslessly.

    ``any`` accepts everything.  Parametric types are assignable when the
    base primitives are and the target's parameters are at least as wide.
    """
    src, tgt = base_primitive(source), base_primitive(target)
    if tgt.name == "any":
        return True
    if tgt.name not in _widening_chain(src):
        return False
    if isinstance(source, ParametricType) and isinstance(target, ParametricType):
        if source.base == target.base:
            return all(
                sp <= tp for sp, tp in zip(source.params, target.params)
            ) and len(source.params) == len(target.params)
    if isinstance(source, PrimitiveType) and isinstance(target, ParametricType):
        # An unbounded primitive cannot be promised to fit a bounded slot.
        return False
    return True


def common_supertype(a: DataType, b: DataType) -> DataType:
    """The least type both ``a`` and ``b`` are assignable to (``ANY`` worst case).

    Used by Merge to reconcile corresponding attributes of different types.
    """
    if is_assignable(a, b):
        return b
    if is_assignable(b, a):
        return a
    chain_a = _widening_chain(base_primitive(a))
    chain_b = set(_widening_chain(base_primitive(b)))
    for name in chain_a:
        if name in chain_b:
            return _PRIMITIVES[name]
    return ANY


def type_compatibility(a: DataType, b: DataType) -> float:
    """Similarity of two types in ``[0, 1]`` for the datatype matcher.

    1.0 for identical types, 0.9 for same primitive with different
    parameters, 0.7 when one widens to the other, 0.4 for same family,
    0.05 across families (nothing is flatly impossible with a cast).
    """
    if a == b:
        return 1.0
    pa, pb = base_primitive(a), base_primitive(b)
    if pa == pb:
        return 0.9
    if pb.name in _widening_chain(pa) or pa.name in _widening_chain(pb):
        return 0.7
    if _FAMILIES[pa.name] == _FAMILIES[pb.name]:
        return 0.4
    if "any" in (pa.name, pb.name):
        return 0.5
    return 0.05


def conforms(value: object, t: DataType) -> bool:
    """True if the Python ``value`` is a legal instance of type ``t``.

    ``None`` never conforms here — nullability is an attribute property
    checked separately by instance validation.  Labeled nulls (see
    :mod:`repro.instances.labeled_null`) conform to every type, since
    they stand for an unknown value.
    """
    from repro.instances.labeled_null import LabeledNull

    if isinstance(value, LabeledNull):
        return True
    base = base_primitive(t)
    if base.name == "any":
        return value is not None
    allowed = _PYTHON_REPRESENTATIONS[base.name]
    if not isinstance(value, allowed):
        return False
    if base.name in ("int", "bigint") and isinstance(value, bool):
        return False
    if isinstance(t, ParametricType):
        if t.base == "string" and isinstance(value, str):
            return len(value) <= t.params[0]
    return True
